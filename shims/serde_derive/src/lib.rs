//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal serde data model (`serde::Value`) and this
//! crate derives `serde::Serialize` / `serde::Deserialize` for it without
//! `syn`/`quote`: the item is parsed directly from the `proc_macro` token
//! stream and the impl is emitted as a string.
//!
//! Supported shapes (everything the workspace uses):
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently),
//! * enums with unit, newtype, tuple and struct variants
//!   (externally tagged, like real serde's default representation).
//!
//! Generic types are intentionally unsupported and fail with a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Skip one attribute (`#` or `#!` followed by a bracket group) starting at
/// `i`; returns the index just past it, or `i` if not at an attribute.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if let Some(TokenTree::Punct(p)) = toks.get(i) {
                    if p.as_char() == '!' {
                        i += 1;
                    }
                }
                i += 1; // the [...] group
            }
            _ => return i,
        }
    }
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, ...).
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advance past a type (or any token run) until a `,` at angle-bracket
/// depth 0; returns the index just past the comma (or `toks.len()`).
fn skip_until_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i);
        i = skip_vis(&toks, i);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            break;
        };
        out.push(name.to_string());
        i += 1; // name
        i += 1; // ':'
        i = skip_until_comma(&toks, i);
    }
    out
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut n = 0;
    while i < toks.len() {
        n += 1;
        i = skip_attrs(&toks, i);
        i = skip_vis(&toks, i);
        i = skip_until_comma(&toks, i);
    }
    n
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let kind = loop {
        i = skip_attrs(&toks, i);
        i = skip_vis(&toks, i);
        match toks.get(i) {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                i += 1; // e.g. `unsafe`? just skip unknown idents
            }
            Some(_) => i += 1,
            None => panic!("serde_derive shim: could not find `struct` or `enum`"),
        }
    };
    let Some(TokenTree::Ident(name)) = toks.get(i) else {
        panic!("serde_derive shim: missing item name");
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }
    if kind == "struct" {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                name,
                fields: Fields::Tuple(count_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
                name,
                fields: Fields::Unit,
            },
            other => panic!("serde_derive shim: unexpected struct body {other:?}"),
        }
    } else {
        let Some(TokenTree::Group(body)) = toks.get(i) else {
            panic!("serde_derive shim: missing enum body");
        };
        let toks: Vec<TokenTree> = body.stream().into_iter().collect();
        let mut variants = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            i = skip_attrs(&toks, i);
            let Some(TokenTree::Ident(vname)) = toks.get(i) else {
                break;
            };
            let vname = vname.to_string();
            i += 1;
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let f = Fields::Named(parse_named_fields(g.stream()));
                    i += 1;
                    f
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let f = Fields::Tuple(count_tuple_fields(g.stream()));
                    i += 1;
                    f
                }
                _ => Fields::Unit,
            };
            variants.push((vname, fields));
            i = skip_until_comma(&toks, i);
        }
        Item::Enum { name, variants }
    }
}

fn ser_named_fields(expr_prefix: &str, fields: &[String]) -> String {
    let mut s = String::from(
        "{ let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();",
    );
    for f in fields {
        s.push_str(&format!(
            "__obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value({expr_prefix}{f})));"
        ));
    }
    s.push_str("::serde::Value::Object(__obj) }");
    s
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let out = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(fs) => ser_named_fields("&self.", fs),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(","))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                            binds.join(","),
                            items.join(",")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(",");
                        let inner = ser_named_fields("", fs);
                        arms.push_str(&format!(
                            "{name}::{v}{{{binds}}} => ::serde::Value::Object(vec![(\"{v}\".to_string(), {inner})]),"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} }}"
            )
        }
    };
    out.parse()
        .expect("serde_derive shim: generated invalid Serialize impl")
}

fn de_named_fields(type_path: &str, src_expr: &str, fields: &[String]) -> String {
    let mut s = format!("{type_path} {{");
    for f in fields {
        s.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value({src_expr}.get_field(\"{f}\").ok_or_else(|| ::serde::DeError::missing_field(\"{type_path}\", \"{f}\"))?)?,"
        ));
    }
    s.push('}');
    s
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let out = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Named(fs) => format!("Ok({})", de_named_fields(name, "__v", fs)),
                Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                        .collect();
                    format!(
                        "{{ let __arr = __v.as_array().ok_or_else(|| ::serde::DeError::custom(\"expected array for tuple struct {name}\"))?;\
                         if __arr.len() != {n} {{ return Err(::serde::DeError::custom(\"wrong tuple arity for {name}\")); }}\
                         Ok({name}({})) }}",
                        items.join(",")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{ fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{v}\" => return Ok({name}::{v}),"));
                        // Also accept {"V": null} for robustness.
                        tagged_arms.push_str(&format!("\"{v}\" => return Ok({name}::{v}),"));
                    }
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{v}\" => return Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => {{ let __arr = __inner.as_array().ok_or_else(|| ::serde::DeError::custom(\"expected array for variant {v}\"))?;\
                             if __arr.len() != {n} {{ return Err(::serde::DeError::custom(\"wrong arity for variant {v}\")); }}\
                             return Ok({name}::{v}({})); }}",
                            items.join(",")
                        ));
                    }
                    Fields::Named(fs) => {
                        let ctor = de_named_fields(&format!("{name}::{v}"), "__inner", fs);
                        tagged_arms.push_str(&format!("\"{v}\" => return Ok({ctor}),"));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{ fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\
                 if let ::serde::Value::String(__s) = __v {{ match __s.as_str() {{ {unit_arms} _ => {{}} }} }}\
                 if let Some((__tag, __inner)) = __v.as_single_entry() {{ match __tag {{ {tagged_arms} _ => {{}} }} }}\
                 Err(::serde::DeError::custom(\"unknown variant for enum {name}\")) }} }}"
            )
        }
    };
    out.parse()
        .expect("serde_derive shim: generated invalid Deserialize impl")
}
