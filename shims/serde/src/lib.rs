//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of serde the workspace relies on, re-modelled around an owned
//! JSON-shaped [`Value`] tree:
//!
//! * [`Serialize`] — convert `&self` into a [`Value`];
//! * [`Deserialize`] — reconstruct `Self` from a `&Value`;
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   shim (externally-tagged enums, named/tuple structs);
//! * impls for the std types the workspace serializes (integers, floats,
//!   strings, `Vec`, `Box`, `Arc`, `Option`, small tuples).
//!
//! Text encoding/decoding lives in the `serde_json` shim, which re-exports
//! [`Value`] and adds parsing, printing and the `json!` macro.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;
use std::sync::Arc;

/// A JSON value: the data model every [`Serialize`]/[`Deserialize`] impl
/// goes through. Object entries preserve insertion order.
#[derive(Debug, Clone)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (integer or float, see [`Number`]).
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving integer-ness like `serde_json`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Float.
    F(f64),
}

impl Number {
    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// As `u64` if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(_) => None,
        }
    }

    /// As `i64` if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// Object field lookup.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `serde_json`-style `get`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.get_field(key)
    }

    /// The single `(key, value)` entry of a one-entry object (externally
    /// tagged enum representation).
    pub fn as_single_entry(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(entries) if entries.len() == 1 => {
                Some((entries[0].0.as_str(), &entries[0].1))
            }
            _ => None,
        }
    }

    /// As `f64` if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// As `u64` if this is an integral number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As `i64` if this is an integral number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As object entries.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// True if `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get_field(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => match n.as_i64() {
                        Some(v) => i64::try_from(*other).map(|o| v == o).unwrap_or(false),
                        None => false,
                    },
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
value_eq_int!(u8, u16, u32, i8, i16, i32, i64, usize);

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Error with a free-form message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// A required struct field was absent.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("missing field `{field}` while deserializing {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Convert a value of this type into the [`Value`] data model.
pub trait Serialize {
    /// Serialize `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Reconstruct a value of this type from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserialize from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom("expected bool"))
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::U(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::Number(Number::U(v as u64)) } else { Value::Number(Number::I(v)) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_i64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // serde_json serializes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(|s| s.to_string())
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|x| x.to_value()).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|x| x.to_value()).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

impl Serialize for Arc<str> {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for Arc<str> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(Arc::from)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::custom("expected array for tuple"))?;
                let expected = [$($n),+].len();
                if arr.len() != expected {
                    return Err(DeError::custom("wrong tuple arity"));
                }
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )+};
}
ser_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_eq() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::U(3))),
            ("b".into(), Value::String("x".into())),
        ]);
        assert_eq!(v["a"], 3);
        assert_eq!(v["b"], "x");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2].to_value()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }
}
