//! Offline stand-in for `rayon`.
//!
//! Provides `par_iter()` / `into_par_iter()` entry points and the iterator
//! adapters the workspace uses (`map`, `filter`, `collect`, `sum`,
//! rayon-style `reduce(identity, op)`, ...), executed **sequentially**.
//! Results are identical to rayon's; only wall-clock parallelism is lost,
//! which keeps the offline build dependency-free. Swap back to real rayon
//! by flipping the path dependency once a registry is available.

/// A "parallel" iterator: a thin sequential wrapper with rayon's method
/// surface.
pub struct ParSeq<I>(pub I);

impl<I: Iterator> ParSeq<I> {
    /// Map each item.
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParSeq<std::iter::Map<I, F>> {
        ParSeq(self.0.map(f))
    }

    /// Keep items satisfying the predicate.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParSeq<std::iter::Filter<I, F>> {
        ParSeq(self.0.filter(f))
    }

    /// Flat-map each item.
    pub fn flat_map<U: IntoIterator, F: FnMut(I::Item) -> U>(
        self,
        f: F,
    ) -> ParSeq<std::iter::FlatMap<I, U, F>> {
        ParSeq(self.0.flat_map(f))
    }

    /// Collect into any `FromIterator` container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Count the items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Run a side effect per item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Rayon-style reduce: fold from an identity with an associative op.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Maximum item (totally ordered items).
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    /// Minimum item (totally ordered items).
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }
}

/// Owning conversion, mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Convert into a "parallel" iterator.
    fn into_par_iter(self) -> ParSeq<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Item = T::Item;
    type Iter = T::IntoIter;
    fn into_par_iter(self) -> ParSeq<T::IntoIter> {
        ParSeq(self.into_iter())
    }
}

/// Borrowing conversion, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// Item type.
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterate by reference.
    fn par_iter(&'data self) -> ParSeq<Self::Iter>;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Item = <&'data C as IntoIterator>::Item;
    type Iter = <&'data C as IntoIterator>::IntoIter;
    fn par_iter(&'data self) -> ParSeq<Self::Iter> {
        ParSeq(self.into_iter())
    }
}

/// The usual glob import.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParSeq};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_sum_reduce() {
        let v = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let s: u32 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 10);
        let m = (0..5u64)
            .into_par_iter()
            .map(|x| x as f64)
            .reduce(|| 0.0, f64::max);
        assert!((m - 4.0).abs() < 1e-12);
    }
}
