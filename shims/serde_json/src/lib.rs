//! Offline stand-in for `serde_json`.
//!
//! Provides JSON text encoding/decoding over the `serde` shim's [`Value`]
//! tree: [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`from_value`] and the [`json!`] macro. Finite floats round-trip exactly
//! (Rust's shortest-round-trip float formatting); non-finite floats encode
//! as `null`, matching real serde_json.

pub use serde::{Number, Value};

use std::fmt;

/// Encoding/decoding error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// `serde_json`-compatible result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize any [`serde::Serialize`] type to its [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Deserialize any [`serde::Deserialize`] type from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T> {
    T::from_value(v).map_err(Into::into)
}

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(v: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable JSON text (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(v: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Into::into)
}

// ---------------------------------------------------------------- printing

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::U(v) => out.push_str(&v.to_string()),
        Number::I(v) => out.push_str(&v.to_string()),
        Number::F(v) => {
            if v.is_finite() {
                // Rust's shortest round-trip formatting; force a `.0` so the
                // value parses back as a float, matching serde_json.
                let s = v.to_string();
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ----------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Maximum container nesting, mirroring upstream `serde_json`'s default
/// recursion limit: a hostile `[[[[…` input must fail with an error, not
/// overflow the parser's stack.
const MAX_DEPTH: usize = 128;

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.nested(Parser::array),
            b'{' => self.nested(Parser::object),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            ))),
        }
    }

    /// Recurse into a container with the depth guard applied.
    fn nested(&mut self, inner: fn(&mut Parser<'a>) -> Result<Value>) -> Result<Value> {
        if self.depth >= MAX_DEPTH {
            return Err(Error::new(format!(
                "recursion limit exceeded at byte {}",
                self.pos
            )));
        }
        self.depth += 1;
        let v = inner(self);
        self.depth -= 1;
        v
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' but found {:?}",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let v = self.value()?;
            entries.push((key, v));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' but found {:?}",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair support.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape \\{}", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// ------------------------------------------------------------------ json!

/// Construct a [`Value`] from JSON-like syntax, mirroring `serde_json::json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::json_internal!(@array [] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::json_internal!(@object [] () $($tt)*) };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- arrays: accumulate parsed elements in [ ... ].
    (@array [$($elems:expr),*]) => {
        $crate::Value::Array(vec![$($elems),*])
    };
    (@array [$($elems:expr),*] { $($map:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!({ $($map)* })] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!([ $($arr)* ])] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] $value:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::to_value(&$value)] $($($rest)*)?)
    };

    // ---- objects: accumulate (key, value) pairs in [ ... ].
    (@object [$($pairs:expr),*] ()) => {
        $crate::Value::Object(vec![$($pairs),*])
    };
    (@object [$($pairs:expr),*] () $key:literal : { $($map:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@object [$($pairs,)* ($key.to_string(), $crate::json!({ $($map)* }))] () $($($rest)*)?)
    };
    (@object [$($pairs:expr),*] () $key:literal : [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@object [$($pairs,)* ($key.to_string(), $crate::json!([ $($arr)* ]))] () $($($rest)*)?)
    };
    (@object [$($pairs:expr),*] () $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@object [$($pairs,)* ($key.to_string(), $crate::Value::Null)] () $($($rest)*)?)
    };
    (@object [$($pairs:expr),*] () $key:literal : $value:expr , $($rest:tt)*) => {
        $crate::json_internal!(@object [$($pairs,)* ($key.to_string(), $crate::to_value(&$value))] () $($rest)*)
    };
    (@object [$($pairs:expr),*] () $key:literal : $value:expr) => {
        $crate::json_internal!(@object [$($pairs,)* ($key.to_string(), $crate::to_value(&$value))] ())
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_basic() {
        let v: Value = from_str("{\"a\": [1, 2.5, null, true, \"x\"]}").unwrap();
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
        assert_eq!(v["a"][0], 1);
        assert!((v["a"][1].as_f64().unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1, 1.0 / 3.0, 1e-300, 123456.789, -2.5e17] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x, back, "{s}");
        }
    }

    #[test]
    fn json_macro_shapes() {
        let flag = true;
        let v = json!({
            "a": 1,
            "nested": { "b": [1, 2, 3], "c": "s" },
            "cond": if flag { 1.5 } else { 2.5 },
            "end": null,
        });
        assert_eq!(v["a"], 1);
        assert_eq!(v["nested"]["b"].as_array().unwrap().len(), 3);
        assert_eq!(v["cond"], 1.5);
        assert!(v["end"].is_null());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({"x": [1, {"y": 2}], "z": "hi\nthere"});
        let s = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn escapes() {
        let s = "quote \" backslash \\ newline \n unicode \u{1F600}";
        let text = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
        let v: Value = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{1F600}");
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // Upstream serde_json fails at its recursion limit (128); a naive
        // recursive parser would blow the stack on this input.
        let deep = format!("{}{}", "[".repeat(10_000), "]".repeat(10_000));
        assert!(from_str::<Value>(&deep).is_err());
        let deep_obj = format!("{}1{}", "{\"k\":".repeat(10_000), "}".repeat(10_000));
        assert!(from_str::<Value>(&deep_obj).is_err());
        // Reasonable nesting still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(from_str::<Value>(&ok).is_ok());
    }
}
