//! Offline stand-in for `rand` 0.8.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the (small) slice of the `rand` API the workspace uses over a
//! xoshiro256++ generator:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_bool`, `gen_range`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`];
//! * [`distributions::Distribution`] / [`distributions::Standard`].
//!
//! Everything is deterministic given a seed. The streams do **not** match
//! upstream `rand` bit-for-bit (upstream StdRng is ChaCha12); within this
//! workspace only self-consistency matters, and every test seeds its RNGs.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`distributions::Standard`] distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over their range).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Bernoulli sample with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.gen::<f64>() < p
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R2>(&mut self, range: R2) -> T
    where
        T: distributions::uniform::SampleUniform,
        R2: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand small seeds into full generator state.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Raw generator state (for snapshot/restore support).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild from a previously captured [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions.
pub mod distributions {
    use super::Rng;

    /// A distribution that can be sampled with any RNG.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform `[0, 1)` for floats, uniform over
    /// the full range for integers.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Uniform range sampling.
    pub mod uniform {
        use super::super::RngCore;

        /// Types that can be drawn uniformly from a range.
        pub trait SampleUniform: Sized {
            /// Uniform sample from `[lo, hi)`; `hi` is exclusive iff
            /// `inclusive` is false.
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self;
        }

        macro_rules! uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        inclusive: bool,
                    ) -> Self {
                        let span = if inclusive {
                            (hi as i128 - lo as i128 + 1) as u128
                        } else {
                            assert!(hi > lo, "gen_range: empty range");
                            (hi as i128 - lo as i128) as u128
                        };
                        if span == 0 {
                            // Inclusive full-width range: any value works.
                            return rng.next_u64() as $t;
                        }
                        // Modulo bias is negligible for the spans used here.
                        let draw = ((rng.next_u64() as u128) % span) as i128;
                        (lo as i128 + draw) as $t
                    }
                }
            )*};
        }
        uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(
                        rng: &mut R,
                        lo: Self,
                        hi: Self,
                        _inclusive: bool,
                    ) -> Self {
                        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                        (lo as f64 + unit * (hi as f64 - lo as f64)) as $t
                    }
                }
            )*};
        }
        uniform_float!(f32, f64);

        /// Ranges accepted by `Rng::gen_range`.
        pub trait SampleRange<T> {
            /// Draw one uniform sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_between(rng, self.start, self.end, false)
            }
        }

        impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_between(rng, *self.start(), *self.end(), true)
            }
        }
    }
}

/// `rand::prelude` equivalent.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_f64_in_unit_interval_and_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..7);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&w));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(9);
        let _ = a.next_u64();
        let snap = a.state();
        let tail: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let mut b = StdRng::from_state(snap);
        let tail2: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(tail, tail2);
    }
}
