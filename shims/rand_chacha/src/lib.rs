//! Offline stand-in for `rand_chacha`.
//!
//! Implements a genuine ChaCha8 block function behind the `rand` shim's
//! [`RngCore`]/[`SeedableRng`] traits. Streams are deterministic given a
//! seed but are not bit-compatible with upstream `rand_chacha` (the
//! seed-expansion differs); the workspace only relies on determinism.

use rand::{RngCore, SeedableRng};

/// Re-export point mirroring `rand_chacha::rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

/// A ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key/nonce state words 4..=15 of the initial block.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block`.
    word: usize,
    /// Block counter.
    counter: u64,
}

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Construct from a 32-byte key.
    pub fn from_key(key: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[0] = 0x61707865; // "expa"
        state[1] = 0x3320646e; // "nd 3"
        state[2] = 0x79622d32; // "2-by"
        state[3] = 0x6b206574; // "te k"
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        // Words 12..=15 (counter + nonce) start at zero.
        let mut rng = ChaCha8Rng {
            state,
            block: [0; 16],
            word: 16,
            counter: 0,
        };
        rng.refill();
        rng
    }

    fn refill(&mut self) {
        let mut working = self.state;
        working[12] = self.counter as u32;
        working[13] = (self.counter >> 32) as u32;
        let input = working;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = working[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.word = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed into a key with SplitMix64, like upstream.
        let mut sm = seed;
        let mut key = [0u8; 32];
        for chunk in key.chunks_mut(8) {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        ChaCha8Rng::from_key(key)
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_interval_sampling() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }
}
