//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros the workspace's property
//! tests use — `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_oneof!`, `Just`, ranges, tuples, `collection::vec`, `prop_map`,
//! `prop_flat_map`, `ProptestConfig::with_cases` — with two deliberate
//! simplifications:
//!
//! * sampling is **deterministic** per test (seeded from the test's
//!   file/line), so failures reproduce without a persistence file;
//! * there is **no shrinking** — a failing case reports the panic directly.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each `proptest!` test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Test-runner plumbing.
pub mod test_runner {
    pub use super::ProptestConfig as Config;
    use super::*;

    /// The RNG driving strategy sampling.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Deterministic RNG for one test, seeded from its location.
        pub fn for_test(file: &str, line: u32) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in file.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h ^= line as u64;
            TestRng(StdRng::seed_from_u64(h))
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            self.0.gen()
        }

        /// Uniform `u64`.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

use test_runner::TestRng;

/// Strategies: composable random-value generators.
pub mod strategy {
    use super::TestRng;

    /// A generator of test values.
    pub trait Strategy {
        /// The value type generated.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// [`Strategy::prop_flat_map`] adapter.
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Object-safe strategy view, used by `prop_oneof!`.
    pub trait StrategyObj<V> {
        /// Draw one value.
        fn generate_obj(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> StrategyObj<S::Value> for S {
        fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<Box<dyn StrategyObj<V>>>,
    }

    impl<V> Union<V> {
        /// Union over the given arms (must be non-empty).
        pub fn new(arms: Vec<Box<dyn StrategyObj<V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[i].generate_obj(rng)
        }
    }

    /// Numbers drawable from ranges.
    pub trait RangeValue: Copy + PartialOrd {
        /// Uniform draw from `[lo, hi)` (`hi` inclusive iff `inclusive`).
        fn draw(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self;
    }

    macro_rules! range_int {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn draw(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                    let span = if inclusive {
                        hi as i128 - lo as i128 + 1
                    } else {
                        assert!(hi > lo, "empty range strategy");
                        hi as i128 - lo as i128
                    } as u128;
                    let draw = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + draw) as $t
                }
            }
        )*};
    }
    range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! range_float {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn draw(rng: &mut TestRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
                    (lo as f64 + rng.unit() * (hi as f64 - lo as f64)) as $t
                }
            }
        )*};
    }
    range_float!(f32, f64);

    impl<T: RangeValue> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::draw(rng, self.start, self.end, false)
        }
    }

    impl<T: RangeValue> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::draw(rng, *self.start(), *self.end(), true)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!(
        (0 A),
        (0 A, 1 B),
        (0 A, 1 B, 2 C),
        (0 A, 1 B, 2 C, 3 D),
        (0 A, 1 B, 2 C, 3 D, 4 E),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F6),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F6, 6 G)
    );
}

/// Collection strategies.
pub mod collection {
    use super::strategy::{RangeValue, Strategy};
    use super::TestRng;

    /// Lengths accepted by [`vec()`]: an exact `usize` or a `usize` range.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Exact(usize),
        /// Uniform in `[lo, hi)`.
        Range(usize, usize),
        /// Uniform in `[lo, hi]`.
        RangeInclusive(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Exact(n)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange::Range(r.start, r.end)
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange::RangeInclusive(*r.start(), *r.end())
        }
    }

    /// Strategy for `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec` equivalent.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = match self.size {
                SizeRange::Exact(n) => n,
                SizeRange::Range(lo, hi) => usize::draw(rng, lo, hi, false),
                SizeRange::RangeInclusive(lo, hi) => usize::draw(rng, lo, hi, true),
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob import.
pub mod prelude {
    pub use super::collection::vec as prop_vec;
    pub use super::strategy::{Just, Strategy, StrategyObj, Union};
    pub use super::test_runner::TestRng;
    pub use super::ProptestConfig;
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert inside a property test (panics; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when an assumption fails. The shim simply returns
/// from the case (it counts toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($arm) as Box<dyn $crate::strategy::StrategyObj<_>>),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };
    (@tests ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($p:pat in $s:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::for_test(file!(), line!());
                for __case in 0..__cfg.cases {
                    let ($($p,)+) = ($($crate::strategy::Strategy::generate(&($s), &mut __rng),)+);
                    { $body }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 1u32..5, y in -2.0f64..2.0, z in 0usize..=3) {
            prop_assert!((1..5).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(z <= 3);
        }

        #[test]
        fn combinators_compose(
            (n, v) in (1usize..4).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0u32..10, n))
            })
        ) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn oneof_picks_arms(x in prop_oneof![Just(1u32), Just(2u32), 5u32..7]) {
            prop_assert!([1u32, 2, 5, 6].contains(&x));
        }
    }
}
