//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock micro-benchmark harness exposing the subset of
//! criterion's API the workspace's benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups, `Bencher::iter`, [`Throughput`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Timing methodology
//! is simple (auto-calibrated batch size, median of `sample_size` samples)
//! but stable enough for relative comparisons like steps/sec vs shards.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement configuration and sink.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            target_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark (builder-style, like criterion).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Rough total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.target_time = d;
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(self, name, &mut f, None);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// Identifier for one parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Throughput annotation: turns ns/iter into elements- or bytes-per-second.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.text);
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(self.criterion, &full, &mut g, self.throughput);
        self
    }

    /// Benchmark without an input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchOrStr>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(self.criterion, &full, &mut f, self.throughput);
        self
    }

    /// Finish the group (report separator).
    pub fn finish(self) {}
}

/// Either a string or a [`BenchmarkId`], for `bench_function` in groups.
pub struct BenchOrStr(String);

impl From<&str> for BenchOrStr {
    fn from(s: &str) -> Self {
        BenchOrStr(s.to_string())
    }
}

impl From<String> for BenchOrStr {
    fn from(s: String) -> Self {
        BenchOrStr(s)
    }
}

impl From<BenchmarkId> for BenchOrStr {
    fn from(id: BenchmarkId) -> Self {
        BenchOrStr(id.text)
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; the shim always sets up per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// One setup per measured iteration.
    PerIteration,
    /// Small batches.
    SmallInput,
    /// Large batches.
    LargeInput,
}

/// Passed to the closure; call [`Bencher::iter`] with the code under test.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the last `iter` call.
    ns_per_iter: f64,
}

impl Bencher {
    /// Measure a closure: auto-calibrate a batch size, then time it.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: find a batch that takes >= ~1ms.
        let mut batch: u64 = 1;
        let batch_time = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let el = start.elapsed();
            if el >= Duration::from_millis(1) || batch >= 1 << 24 {
                break el;
            }
            batch *= 4;
        };
        let _ = batch_time;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.ns_per_iter = elapsed.as_nanos() as f64 / batch as f64;
    }

    /// Measure a closure whose input is built by an untimed setup closure:
    /// only `routine` is inside the timed section.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate the iteration count so total measured time >= ~1ms.
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            iters *= 4;
        }
    }
}

fn run_one(
    criterion: &Criterion,
    name: &str,
    f: &mut dyn FnMut(&mut Bencher),
    throughput: Option<Throughput>,
) {
    let mut samples = Vec::with_capacity(criterion.sample_size);
    let deadline = Instant::now() + criterion.target_time;
    for i in 0..criterion.sample_size {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        samples.push(b.ns_per_iter);
        if i >= 1 && Instant::now() > deadline {
            break; // keep total runtime bounded
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let median = samples[samples.len() / 2];
    let line = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 * 1e9 / median;
            format!(
                "{name:<50} {:>12} ns/iter {:>15} elem/s",
                fmt_num(median),
                fmt_num(per_sec)
            )
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 * 1e9 / median;
            format!(
                "{name:<50} {:>12} ns/iter {:>15} B/s",
                fmt_num(median),
                fmt_num(per_sec)
            )
        }
        None => format!("{name:<50} {:>12} ns/iter", fmt_num(median)),
    };
    println!("{line}");
}

fn fmt_num(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.3}e9", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Declare a benchmark group, mirroring criterion's two syntaxes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1u64 + 1));
    }
}
