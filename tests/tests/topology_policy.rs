//! Topology-policy differential tests (the auto-rebalancing acceptance
//! bar): the engine's lazy auto-rebalancing is the paper's LCP run on an
//! *induced* instance — shard count as machine count, per-tick
//! load-imbalance cost as the convex operating cost, migration cost as
//! `beta` — so the paper's guarantees must hold on it *measurably*:
//!
//! * **competitiveness** — on random skewed load traces, the online
//!   policy's (imbalance + switching) cost is within the LCP bound (3x)
//!   of the offline-optimal topology schedule, computed by brute force
//!   (exhaustive enumeration of every schedule) on small instances;
//! * **hysteresis** — on stationary loads the policy never flaps: a grow
//!   is never immediately followed by a shrink, and the plan settles.
//!
//! The heavy `#[ignore]`d variants run the same properties at raised case
//! counts for the nightly CI job (`cargo test -- --include-ignored`,
//! `RSDC_HEAVY_CASES` to scale).

use proptest::prelude::*;
use rsdc_core::prelude::*;
use rsdc_engine::{PowerConfig, PowerSpec, PriceSchedule, TopologyConfig, TopologyPolicy};
use rsdc_offline::{brute, dp};
use rsdc_tests::heavy_cases;

/// Drive the policy over a load trace (total events per tick), applying
/// every decision immediately (`cooldown = 0`), and return the shard
/// schedule — the LCP schedule of the induced instance.
fn run_policy(cfg: &TopologyConfig, loads: &[u64]) -> Vec<usize> {
    let mut policy = TopologyPolicy::new(cfg.clone(), cfg.min_shards).expect("valid config");
    let mut schedule = Vec::with_capacity(loads.len());
    for &events in loads {
        if let Some(target) = policy.observe(&[events], &[(0, 1)]) {
            let from = policy.status().shards;
            policy.record_applied(from, target, 0);
        }
        schedule.push(policy.target());
    }
    schedule
}

/// The induced paper instance for a config + trace: states are
/// `shards - min_shards`, costs come from the same `tick_cost` the policy
/// steps its bound tracker with, `beta` is the configured switching cost.
fn induced_instance(cfg: &TopologyConfig, loads: &[u64]) -> Instance {
    let m = (cfg.max_shards - cfg.min_shards) as u32;
    let costs: Vec<Cost> = loads
        .iter()
        .enumerate()
        .map(|(t, &e)| cfg.tick_cost(t as u64, e as f64))
        .collect();
    Instance::new(m, cfg.switch_cost, costs).expect("valid induced instance")
}

/// One differential case: policy schedule vs brute-force offline optimum.
fn check_lcp_bound(cfg: TopologyConfig, loads: &[u64]) {
    let schedule = run_policy(&cfg, loads);
    let inst = induced_instance(&cfg, loads);
    let xs = Schedule(
        schedule
            .iter()
            .map(|&s| (s - cfg.min_shards) as u32)
            .collect(),
    );
    let online = cost(&inst, &xs);
    let opt = brute::solve(&inst);
    // Sanity: the oracle agrees with the DP solver on the same instance.
    let opt_dp = dp::solve_cost_only(&inst);
    assert!(
        (opt.cost - opt_dp).abs() <= 1e-9 * (1.0 + opt.cost.abs()),
        "brute {} vs dp {}",
        opt.cost,
        opt_dp
    );
    assert!(
        online <= 3.0 * opt.cost + 1e-6 * (1.0 + opt.cost.abs()),
        "Theorem 2 violated on the induced instance: online {online} > 3 * {} \
         (cfg {cfg:?}, loads {loads:?}, schedule {schedule:?}, opt {:?})",
        opt.cost,
        opt.schedule,
    );
}

/// Strategy: a small config whose brute-force space stays enumerable.
fn small_config() -> impl Strategy<Value = TopologyConfig> {
    (1usize..3, 1usize..5, 0.5f64..24.0, 0.25f64..4.0).prop_map(|(min, extra, beta, theta)| {
        let mut cfg = TopologyConfig::new(min, min + extra);
        cfg.switch_cost = beta;
        cfg.shard_cost = theta;
        cfg.cooldown = 0;
        cfg
    })
}

/// Strategy: a priced small config — [`small_config`] plus a linear power
/// model, a serving capacity, and a square-wave price schedule. The
/// priced per-tick cost `events/s + price(t) * s * watts(events/(s*cap))`
/// is convex in `s` (the serial term is convex, the energy term is the
/// perspective of a convex watts curve), so Theorem 2's bound must keep
/// holding with time-varying prices.
fn priced_config() -> impl Strategy<Value = TopologyConfig> {
    (
        small_config(),
        0.0f64..2.0,  // cheap-window price
        2.0f64..8.0,  // expensive-window price
        1u64..4,      // window length in ticks
        2.0f64..64.0, // events one shard-machine serves per tick
        0.1f64..4.0,  // idle watts
        0.0f64..3.0,  // peak watts premium over idle
    )
        .prop_map(|(mut cfg, cheap, dear, period, capacity, idle, premium)| {
            let mut p = PowerConfig::new(PowerSpec::Linear {
                idle,
                peak: idle + premium,
            });
            p.capacity = capacity;
            p.price = PriceSchedule::Step {
                period,
                prices: vec![cheap, dear],
            };
            cfg.pricing = Some(p);
            cfg
        })
}

/// Strategy: a skewed load trace — lulls, plateaus and bursts, the shapes
/// that tempt an eager policy into flapping.
fn skewed_trace(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            Just(0u64),  // lull
            1u64..12,    // trickle
            20u64..120,  // plateau
            200u64..400, // burst
        ],
        len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random skewed traces: online (imbalance + switching) cost within
    /// the LCP competitive bound of the brute-force offline optimum.
    #[test]
    fn online_cost_within_lcp_bound_of_offline_optimum(
        cfg in small_config(),
        loads in skewed_trace(1..9),
    ) {
        check_lcp_bound(cfg, &loads);
    }

    /// Priced mode: the same differential with the induced instance in
    /// modeled watts and time-varying prices. The acceptance bar for the
    /// energy subsystem: pricing must not break the competitive bound.
    #[test]
    fn priced_online_cost_within_lcp_bound_of_offline_optimum(
        cfg in priced_config(),
        loads in skewed_trace(1..9),
    ) {
        check_lcp_bound(cfg, &loads);
    }

    /// Stationary loads: zero flapping — no grow is ever immediately
    /// followed by a shrink, anywhere in the run.
    #[test]
    fn stationary_load_never_flaps(
        cfg in small_config(),
        events in 0u64..400,
        ticks in 20usize..160,
    ) {
        let schedule = run_policy(&cfg, &vec![events; ticks]);
        for (t, w) in schedule.windows(3).enumerate() {
            let grew = w[1] > w[0];
            let shrank = w[2] < w[1];
            prop_assert!(
                !(grew && shrank),
                "flap at tick {t}: {} -> {} -> {}",
                w[0], w[1], w[2]
            );
        }
    }

    /// Stationary loads settle: the tail of a long run is constant (the
    /// bounds converge and pin the plan).
    #[test]
    fn stationary_load_settles(
        cfg in small_config(),
        events in 0u64..400,
    ) {
        let schedule = run_policy(&cfg, &vec![events; 400]);
        let tail = &schedule[schedule.len() - 40..];
        prop_assert!(
            tail.iter().all(|&s| s == tail[0]),
            "still moving after 360 ticks: {:?}",
            &schedule[schedule.len() - 60..]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(heavy_cases(192)))]

    /// Nightly-depth version of the differential (`--include-ignored`).
    #[test]
    #[ignore = "heavy: run via the nightly --include-ignored CI job"]
    fn online_cost_within_lcp_bound_of_offline_optimum_heavy(
        cfg in small_config(),
        loads in skewed_trace(1..10),
    ) {
        check_lcp_bound(cfg, &loads);
    }

    /// Nightly-depth priced differential (`--include-ignored`).
    #[test]
    #[ignore = "heavy: run via the nightly --include-ignored CI job"]
    fn priced_online_cost_within_lcp_bound_of_offline_optimum_heavy(
        cfg in priced_config(),
        loads in skewed_trace(1..10),
    ) {
        check_lcp_bound(cfg, &loads);
    }
}

/// The adversarial shape hysteresis exists for: load that oscillates just
/// hard enough to make an eager policy thrash. The LCP plan must change
/// topology at most a bounded number of times, not once per swing.
#[test]
fn oscillating_load_does_not_thrash() {
    let mut cfg = TopologyConfig::new(1, 8);
    cfg.switch_cost = 16.0;
    cfg.cooldown = 0;
    let loads: Vec<u64> = (0..300).map(|t| if t % 2 == 0 { 4 } else { 120 }).collect();
    let schedule = run_policy(&cfg, &loads);
    let changes = schedule.windows(2).filter(|w| w[0] != w[1]).count();
    // An eager argmin-follower would change ~300 times (the per-tick ideal
    // flips between 2 and 8 every tick); laziness caps it at the ramp.
    assert!(
        changes <= 10,
        "{changes} topology changes on a 300-tick square wave: {schedule:?}"
    );
    // And it must not sit at either extreme: the settled state serves the
    // time-average, not the last tick.
    let settled = *schedule.last().unwrap();
    assert!(
        (2..=8).contains(&settled),
        "settled at {settled}, outside the sensible band"
    );
}

/// The policy is exactly LCP on the induced instance: cross-check its
/// schedule against a fresh `rsdc_online::lcp::Lcp` fed the same costs.
#[test]
fn policy_schedule_matches_reference_lcp() {
    use rsdc_online::lcp::Lcp;
    use rsdc_online::traits::OnlineAlgorithm;
    let mut cfg = TopologyConfig::new(2, 7);
    cfg.switch_cost = 6.0;
    cfg.shard_cost = 0.8;
    cfg.cooldown = 0;
    let loads: Vec<u64> = (0..120)
        .map(|t| ((t * 37 + 11) % 230) as u64 * ((t / 40) % 2) as u64)
        .collect();
    let schedule = run_policy(&cfg, &loads);
    let mut lcp = Lcp::new((cfg.max_shards - cfg.min_shards) as u32, cfg.switch_cost);
    for (t, &e) in loads.iter().enumerate() {
        let x = lcp.step(&cfg.tick_cost(t as u64, e as f64));
        assert_eq!(
            schedule[t],
            cfg.min_shards + x as usize,
            "diverged from reference LCP at tick {t}"
        );
    }
}
