//! Scenario lab pins: the regression fleet's determinism and bounds.
//!
//! Three layers:
//!
//! 1. **Golden determinism** — every zoo scenario, run twice with the
//!    same seed, yields byte-identical `ScenarioReport::golden_json()`.
//!    This is the contract that lets `BENCH_scenarios.json` be checked
//!    in and diffed: a changed byte means changed behavior, not noise.
//! 2. **Bounds** — each quick-fleet report satisfies its per-scenario
//!    `Bounds` (online/OPT ratio at the theorem bound, zero lost events
//!    across crash recoveries, visible rejections under flood, ...).
//! 3. **Spec fuzz** (heavy, `--ignored`) — randomized `ScenarioSpec`s
//!    must either be refused by validation or run to a report that
//!    accounts for every event and stays golden-deterministic.

use proptest::prelude::*;
use rsdc_scenarios::{
    run, zoo, EngineKnobs, FaultAction, ScenarioSpec, SkewStorm, SurgeWave, TenantMix,
    WorkloadSource,
};
use rsdc_workloads::traces::{Bursty, Diurnal, Spiky};

#[test]
fn zoo_reports_are_golden_deterministic() {
    for scenario in zoo::zoo(true) {
        let name = scenario.spec.name.clone();
        let first = run(&scenario.spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        let second = run(&scenario.spec).unwrap_or_else(|e| panic!("{name} (rerun): {e}"));
        assert_eq!(
            first.golden_json(),
            second.golden_json(),
            "{name}: two same-seed runs diverged"
        );
    }
}

#[test]
fn zoo_reports_satisfy_their_bounds() {
    for scenario in zoo::zoo(true) {
        let name = scenario.spec.name.clone();
        let report = run(&scenario.spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        let violations = scenario.bounds.check(&report);
        assert!(
            violations.is_empty(),
            "{name}: bounds violated: {violations:?}\n{}",
            report.summary_line()
        );
    }
}

#[test]
fn crash_recovery_loses_nothing_and_replays_cleanly() {
    let scenario = zoo::find("crash-recovery", true).expect("zoo has crash-recovery");
    let report = run(&scenario.spec).unwrap();
    assert_eq!(report.recoveries, 2, "both kill-points must recover");
    assert_eq!(report.events_lost, 0);
    assert_eq!(report.replay_errors, 0);
    assert!(
        report.events_replayed > 0,
        "a kill after live traffic must replay events from the WAL"
    );
    assert!(report.checkpoints >= 1);
    assert_eq!(report.events_offered, report.events_applied);
}

#[test]
fn adversarial_dilation_stays_within_the_lcp_bound() {
    let scenario = zoo::find("adversarial-dilation", true).unwrap();
    let report = run(&scenario.spec).unwrap();
    let ratio = report.ratio.expect("dilated scalar tenants track OPT");
    assert!(
        ratio <= zoo::LCP_RATIO_BOUND,
        "dilated adversary broke the bound: {ratio}"
    );
    // Dilation multiplies the horizon: 120 ticks requested, n*w = 6.
    assert_eq!(report.ticks, 120);
}

#[test]
fn cold_start_flood_rejects_and_throttles_visibly() {
    let scenario = zoo::find("cold-start-flood", true).unwrap();
    let report = run(&scenario.spec).unwrap();
    assert!(report.tenants_rejected >= 2, "{}", report.summary_line());
    assert!(report.events_throttled > 0);
    assert_eq!(report.events_lost, 0);
    assert_eq!(
        report.events_offered,
        report.events_applied + report.events_throttled + report.events_failed
    );
}

// ---------------------------------------------------------------------------
// Heavy spec fuzz: arbitrary specs either validate-refuse or run clean.
// ---------------------------------------------------------------------------

fn arb_workload() -> impl Strategy<Value = WorkloadSource> {
    prop_oneof![
        Just(WorkloadSource::Diurnal(Diurnal::default())),
        Just(WorkloadSource::Bursty(Bursty::default())),
        Just(WorkloadSource::Spiky(Spiky::default())),
        (1.0..8.0f64, 1usize..4, 1usize..3, 1usize..3)
            .prop_map(|(peak, period, n, w)| { WorkloadSource::Dilated { peak, period, n, w } }),
        proptest::collection::vec(0.0..6.0f64, 1..40).prop_map(|loads| {
            WorkloadSource::Inline {
                label: "fuzz".into(),
                loads,
            }
        }),
    ]
}

fn arb_skew() -> impl Strategy<Value = Option<SkewStorm>> {
    prop_oneof![
        Just(None),
        (0usize..40, 1usize..40, 0.1..1.0f64).prop_map(|(from, len, victim_share)| {
            Some(SkewStorm {
                from,
                until: from + len,
                victim_share,
            })
        }),
    ]
}

fn arb_surge() -> impl Strategy<Value = Option<SurgeWave>> {
    prop_oneof![
        Just(None),
        (1usize..5, 0usize..40, 1usize..40).prop_map(|(tenants, from, len)| {
            Some(SurgeWave {
                tenants,
                from,
                until: from + len,
            })
        }),
    ]
}

fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    (
        (
            arb_workload(),
            1usize..5,  // scalar tenants
            0usize..3,  // hetero tenants
            8usize..48, // t_len
            0u64..1000, // seed
        ),
        (
            arb_skew(),
            arb_surge(),
            // Forced incremental rebalance tick; 40+ disables it.
            0usize..80,
            // Durable store (enables a mid-run kill).
            prop_oneof![Just(false), Just(true)],
        ),
    )
        .prop_map(
            |((workload, scalar, hetero, t_len, seed), (skew, surge, reb_at, durable))| {
                let reb = (reb_at < 40).then_some(reb_at);
                let mut faults = Vec::new();
                if let Some(at) = reb {
                    faults.push(FaultAction::Rebalance {
                        at,
                        shards: 3,
                        incremental: true,
                    });
                }
                if durable && t_len > 4 {
                    faults.push(FaultAction::Kill { at: t_len / 2 });
                }
                ScenarioSpec {
                    name: "fuzz".into(),
                    summary: "randomized spec".into(),
                    seed,
                    t_len,
                    workload,
                    tenants: TenantMix {
                        hetero,
                        skew,
                        surge,
                        ..TenantMix::scalar_lcp(scalar, 6, 3.0)
                    },
                    knobs: EngineKnobs {
                        shards: 2,
                        durable,
                        ..EngineKnobs::default()
                    },
                    faults,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(rsdc_tests::heavy_cases(48)))]

    /// Heavy: any spec either fails validation with a message or runs to
    /// a fully-accounted, golden-deterministic report. Never a panic.
    #[test]
    #[ignore]
    fn random_specs_run_clean_or_refuse(spec in arb_spec()) {
        match run(&spec) {
            Err(msg) => prop_assert!(!msg.is_empty()),
            Ok(report) => {
                prop_assert_eq!(report.events_lost, 0, "events lost: {}", report.summary_line());
                prop_assert_eq!(report.replay_errors, 0);
                prop_assert!(report.online_cost.is_finite() && report.online_cost >= 0.0);
                prop_assert!(report.opt_cost.is_finite() && report.opt_cost >= 0.0);
                if let Some(r) = report.ratio {
                    prop_assert!(r.is_finite() && r > 0.0);
                }
                let again = run(&spec).expect("second run of a runnable spec");
                prop_assert_eq!(
                    report.golden_json(),
                    again.golden_json(),
                    "same-seed runs diverged"
                );
            }
        }
    }
}
