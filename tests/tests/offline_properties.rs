//! Property tests for the offline solvers (Theorem 1, Section 2).

use proptest::prelude::*;
use rsdc_core::prelude::*;
use rsdc_offline::{binsearch, brute, dp, graph::Graph, restricted_dp};
use rsdc_tests::{close, instance, schedule};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline: binary search == DP on arbitrary convex instances.
    #[test]
    fn binsearch_equals_dp(inst in instance(1..=24, 0..=14)) {
        let a = dp::solve(&inst);
        let b = binsearch::solve(&inst);
        prop_assert!(close(a.cost, b.cost), "dp {} vs binsearch {}", a.cost, b.cost);
        prop_assert!(b.schedule.is_feasible(&inst));
        prop_assert!(close(cost(&inst, &b.schedule), b.cost));
    }

    /// DP == exhaustive enumeration on tiny instances.
    #[test]
    fn dp_equals_brute(inst in instance(1..=4, 0..=5)) {
        let a = dp::solve(&inst);
        let c = brute::solve(&inst);
        prop_assert!(close(a.cost, c.cost), "dp {} vs brute {}", a.cost, c.cost);
    }

    /// The explicit Figure-1 graph's shortest path equals the DP.
    #[test]
    fn graph_equals_dp(inst in instance(1..=6, 0..=6)) {
        let g = Graph::build(&inst);
        let sp = g.shortest_path();
        let a = dp::solve(&inst);
        prop_assert!(close(sp.cost, a.cost));
    }

    /// No schedule costs less than the DP optimum (certificate check).
    #[test]
    fn dp_is_a_lower_bound(
        (inst, xs) in instance(1..=6, 1..=8).prop_flat_map(|i| {
            let m = i.m();
            let t = i.horizon();
            (Just(i), schedule(m, t))
        })
    ) {
        let opt = dp::solve_cost_only(&inst);
        prop_assert!(cost(&inst, &xs) >= opt - 1e-9 * (1.0 + opt.abs()));
    }

    /// Restricting the state sets can only increase the optimal cost, and
    /// the unrestricted restricted-DP equals the full DP.
    #[test]
    fn restricted_dp_monotone(inst in instance(2..=8, 1..=8)) {
        let full: Vec<Vec<u32>> = (0..inst.horizon()).map(|_| (0..=inst.m()).collect()).collect();
        let all = restricted_dp::solve_restricted(&inst, &full);
        let a = dp::solve(&inst);
        prop_assert!(close(all.cost, a.cost));

        let evens: Vec<Vec<u32>> =
            (0..inst.horizon()).map(|_| (0..=inst.m()).step_by(2).collect()).collect();
        let even_sol = restricted_dp::solve_restricted(&inst, &evens);
        prop_assert!(even_sol.cost >= a.cost - 1e-9 * (1.0 + a.cost.abs()));
    }

    /// Padding to a power of two never changes the optimum.
    #[test]
    fn padding_preserves_optimum(inst in instance(2..=21, 1..=8)) {
        let padded = inst.pad_to_pow2(1e-6);
        let a = dp::solve_cost_only(&inst);
        let b = dp::solve_cost_only(&padded);
        prop_assert!(close(a, b), "orig {a} vs padded {b}");
    }

    /// Scaling a problem by `Psi` (reduce with stride 1) is the identity;
    /// reduce(2) on an even-m instance bounds the optimum from above.
    #[test]
    fn reduce_upper_bounds(inst in instance(2..=16, 1..=8)) {
        if inst.m() % 2 == 0 {
            let red = inst.reduce(2).unwrap();
            let a = dp::solve_cost_only(&inst);
            let b = dp::solve_cost_only(&red);
            // The reduced problem is the original restricted to even states.
            prop_assert!(b >= a - 1e-9 * (1.0 + a.abs()), "reduced {b} < full {a}");
        }
    }

    /// Lemma 4 corollary: refining the grid never beats the integral
    /// optimum of the continuous extension.
    #[test]
    fn grid_refinement_never_helps(inst in instance(1..=6, 1..=6)) {
        let d = dp::solve_cost_only(&inst);
        for k in [2u32, 3] {
            let fine = rsdc_offline::rounding::refined_grid_optimum(&inst, k);
            prop_assert!(fine >= d - 1e-7 * (1.0 + d.abs()),
                "grid 1/{k} gave {fine} < discrete {d}");
            prop_assert!(fine <= d + 1e-7 * (1.0 + d.abs()));
        }
    }
}

/// Deterministic regression cases distilled from development.
#[test]
fn regression_padding_nonconvex_formula() {
    // The literal paper formula x*(f(m)+eps) breaks convexity; our slope
    // extension must not.
    let inst = Instance::new(5, 1.0, vec![Cost::quadratic(2.0, 1.0, 0.0)]).unwrap();
    let padded = inst.pad_to_pow2(0.5);
    for t in 1..=padded.horizon() {
        padded.cost_fn(t).check_convex(padded.m()).unwrap();
    }
}

#[test]
fn regression_tie_breaking_consistency() {
    // Flat costs: any constant schedule minimizing switching is optimal;
    // all solvers must report cost 0 with the all-zero schedule.
    let inst = Instance::new(4, 1.0, vec![Cost::Zero; 5]).unwrap();
    assert_eq!(dp::solve(&inst).schedule, Schedule(vec![0; 5]));
    assert_eq!(binsearch::solve(&inst).cost, 0.0);
}
