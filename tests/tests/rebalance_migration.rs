//! Rebalance/migration differential tests (the control-plane acceptance
//! bar): a fleet streamed through **any** schedule of live rebalances —
//! including a kill mid-migration, in the window where the `Rebalance`
//! record is journaled but the fencing checkpoint never committed — must
//! commit byte-identical tenant reports to a static single-shard engine
//! that never rebalanced at all.
//!
//! The proptest randomizes the fleet (scalar policies × seeds, plus
//! hetero lattice-DP tenants), the rebalance points and target
//! topologies, the checkpoint cadence, the kill point, and the
//! shard count recovery restarts with. The heavy `#[ignore]`d variants
//! run the same properties at raised case counts for the nightly CI job
//! (`cargo test -- --include-ignored`, `RSDC_HEAVY_CASES` to scale).

use proptest::prelude::*;
use rsdc_core::Cost;
use rsdc_engine::journal::JournalRecord;
use rsdc_engine::ring::{moved_ids, HashRing};
use rsdc_engine::{
    Engine, EngineConfig, FleetSpec, HeteroAlgo, PolicySpec, RingSpec, TenantConfig, TopologyConfig,
};
use rsdc_hetero::ServerType;
use rsdc_store::{Durability, FileStore, FileStoreConfig};
use rsdc_tests::heavy_cases;
use rsdc_workloads::builder::CostModel;
use rsdc_workloads::traces::Diurnal;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SLOTS: usize = 36;

static CASE: AtomicU64 = AtomicU64::new(0);

fn case_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("rsdc-rebalance-migration")
        .join(format!(
            "{tag}-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_store(dir: &std::path::Path) -> Arc<dyn Durability> {
    Arc::new(FileStore::open(dir, FileStoreConfig { sync_every: 8 }).expect("open store"))
}

fn hetero_spec(kind: usize) -> FleetSpec {
    let types = match kind % 2 {
        0 => vec![
            ServerType {
                count: 3,
                beta: 1.0,
                energy: 1.0,
                capacity: 1.0,
            },
            ServerType {
                count: 2,
                beta: 2.5,
                energy: 1.4,
                capacity: 2.0,
            },
        ],
        _ => vec![
            ServerType {
                count: 4,
                beta: 0.5,
                energy: 0.8,
                capacity: 0.7,
            },
            ServerType {
                count: 1,
                beta: 4.0,
                energy: 2.0,
                capacity: 3.5,
            },
        ],
    };
    FleetSpec::new(types)
}

/// A randomized mixed fleet: `n_scalar` tenants cycling through every
/// scalar policy family (seeds derived from `seed`), plus `n_hetero`
/// lattice tenants alternating frontier/greedy.
fn build_fleet(seed: u64, n_scalar: usize, n_hetero: usize) -> Vec<TenantConfig> {
    let m = 10;
    let beta = CostModel::default().beta;
    let mut fleet = Vec::new();
    for i in 0..n_scalar {
        let s = seed.wrapping_mul(31).wrapping_add(i as u64);
        let policy = match i % 5 {
            0 => PolicySpec::Lcp,
            1 => PolicySpec::FlcpRounded { k: 2, seed: s },
            2 => PolicySpec::HalfStepRounded { seed: s },
            3 => PolicySpec::Lookahead { window: 1 + i % 3 },
            _ => PolicySpec::Hysteresis {
                band: 1 + (i % 2) as u32,
            },
        };
        let mut cfg = TenantConfig::new(format!("s{i}"), m, beta, policy);
        cfg.track_opt = i % 2 == 0;
        fleet.push(cfg);
    }
    for i in 0..n_hetero {
        let algo = if i % 2 == 0 {
            HeteroAlgo::Frontier
        } else {
            HeteroAlgo::Greedy
        };
        let mut cfg = TenantConfig::hetero(format!("h{i}"), hetero_spec(i), algo);
        cfg.track_opt = i % 2 == 0;
        fleet.push(cfg);
    }
    fleet
}

fn slot_events(fleet: &[TenantConfig], load: f64) -> Vec<(String, Cost, Option<f64>)> {
    let model = CostModel::default();
    let cost = Cost::Server {
        lambda: load,
        params: model.server,
        overload: model.overload,
    };
    fleet
        .iter()
        .map(|cfg| {
            if cfg.policy.is_hetero() {
                (cfg.id.clone(), Cost::Zero, Some(load))
            } else {
                (cfg.id.clone(), cost.clone(), Some(load))
            }
        })
        .collect()
}

fn report_texts(engine: &Engine) -> Vec<String> {
    engine
        .report_all()
        .expect("report")
        .iter()
        .map(|r| serde_json::to_string(r).expect("serializable"))
        .collect()
}

/// The static reference: one shard, no store, no rebalancing.
fn reference_run(loads: &[f64], fleet: &[TenantConfig]) -> Vec<String> {
    let engine = Engine::new(EngineConfig::with_shards(1));
    for cfg in fleet {
        engine.admit(cfg.clone()).expect("admit");
    }
    for &load in loads {
        engine
            .step_batch_loads(slot_events(fleet, load))
            .expect("step");
    }
    for cfg in fleet {
        engine.finish(&cfg.id).expect("finish");
    }
    report_texts(&engine)
}

/// One randomized schedule, exercised end to end. Returns nothing; panics
/// (via assert) on any divergence from the static reference.
#[allow(clippy::too_many_arguments)]
fn run_case(
    seed: u64,
    n_scalar: usize,
    n_hetero: usize,
    shards_before: usize,
    rebalance_at: usize,
    rebalance_to: usize,
    vnodes_to: usize,
    ck_every: usize,
    kill_at: usize,
    shards_after: usize,
    mid_kill: bool,
) {
    let trace = Diurnal::default().generate(SLOTS, seed);
    let fleet = build_fleet(seed, n_scalar, n_hetero);
    let want = reference_run(&trace.loads, &fleet);

    let dir = case_dir("mig");
    let mut engine = Engine::with_store(EngineConfig::with_shards(shards_before), open_store(&dir))
        .expect("durable engine");
    for cfg in &fleet {
        engine.admit(cfg.clone()).expect("admit");
    }
    for (t, &load) in trace.loads[..kill_at].iter().enumerate() {
        engine
            .step_batch_loads(slot_events(&fleet, load))
            .expect("step");
        if (t + 1) % ck_every == 0 {
            engine.checkpoint().expect("checkpoint");
        }
        if t + 1 == rebalance_at {
            let report = engine
                .rebalance(rebalance_to, Some(vnodes_to))
                .expect("rebalance");
            assert!(report.durable, "rebalance on a durable engine is fenced");
            assert_eq!(report.tenants, fleet.len());
            assert_eq!(engine.ring_spec(), RingSpec::new(rebalance_to, vnodes_to));
        }
        // A second, seed-derived rebalance so durable runs exercise
        // *sequences* of topology changes — in particular shrink-then-
        // regrow, where a shard index goes idle for an epoch and comes
        // back (the WAL-writer-eviction regression).
        if t + 1 == rebalance_at + 1 + (seed as usize % 5) {
            let to = 1 + ((seed / 3) as usize % 4);
            engine.rebalance(to, None).expect("second rebalance");
        }
    }
    drop(engine); // crash

    // A mid-migration kill: the topology change was journaled (write-ahead)
    // but the crash hit before the fencing checkpoint — exactly the state
    // Engine::rebalance leaves behind if it dies between its first and
    // second durable write. Recovery must finish the migration.
    let mid_target = RingSpec::new(1 + (seed as usize % 4), 8 + (seed as usize % 48));
    if mid_kill {
        let store = open_store(&dir);
        store.recover().expect("scan");
        store
            .append(
                0,
                &JournalRecord::Rebalance {
                    shards: mid_target.shards,
                    vnodes: mid_target.vnodes,
                }
                .encode(),
            )
            .expect("journal rebalance");
        store.sync().expect("sync");
    }

    let (engine, report) =
        Engine::recover(EngineConfig::with_shards(shards_after), open_store(&dir))
            .expect("recover");
    assert_eq!(report.replay_errors, 0, "clean replay");
    if mid_kill {
        assert_eq!(report.rebalances_replayed, 1);
        assert_eq!(
            engine.ring_spec(),
            mid_target,
            "recovery completes the interrupted migration"
        );
    } else {
        assert_eq!(report.rebalances_replayed, 0, "fenced rebalances truncate");
    }
    for &load in &trace.loads[kill_at..] {
        engine
            .step_batch_loads(slot_events(&fleet, load))
            .expect("step");
    }
    for cfg in &fleet {
        engine.finish(&cfg.id).expect("finish");
    }
    assert_eq!(
        report_texts(&engine),
        want,
        "rebalanced+killed run must report byte-identically to the static engine"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random fleet × rebalance schedule × kill point (including the
    /// journal-then-die mid-migration window): byte-identical reports.
    #[test]
    fn random_rebalance_schedules_recover_bit_identically(
        seed in 0u64..1_000_000,
        n_scalar in 2usize..6,
        n_hetero in 0usize..3,
        shards_before in 1usize..4,
        rebalance_at in 1usize..SLOTS,
        rebalance_to in 1usize..5,
        vnodes_to in 8usize..96,
        ck_every in 1usize..18,
        kill_at in 1usize..SLOTS,
        shards_after in 1usize..4,
        mid in 0u8..2,
    ) {
        run_case(
            seed, n_scalar, n_hetero, shards_before, rebalance_at,
            rebalance_to, vnodes_to, ck_every, kill_at, shards_after, mid == 1,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(heavy_cases(48)))]

    /// Nightly-depth version of the same property (`--include-ignored`).
    #[test]
    #[ignore = "heavy: run via the nightly --include-ignored CI job"]
    fn random_rebalance_schedules_recover_bit_identically_heavy(
        seed in 0u64..1_000_000,
        n_scalar in 2usize..6,
        n_hetero in 0usize..3,
        shards_before in 1usize..4,
        rebalance_at in 1usize..SLOTS,
        rebalance_to in 1usize..5,
        vnodes_to in 8usize..96,
        ck_every in 1usize..18,
        kill_at in 1usize..SLOTS,
        shards_after in 1usize..4,
        mid in 0u8..2,
    ) {
        run_case(
            seed, n_scalar, n_hetero, shards_before, rebalance_at,
            rebalance_to, vnodes_to, ck_every, kill_at, shards_after, mid == 1,
        );
    }
}

/// Perform one incremental migration on `engine`, asserting the moved set
/// is **exactly** the ring diff (no tenant moved that didn't have to, and
/// none that had to was skipped).
fn incremental_step(engine: &mut Engine, to: usize, vnodes: Option<usize>) {
    let old_spec = engine.ring_spec();
    let new_spec = RingSpec::new(to, vnodes.unwrap_or(old_spec.vnodes));
    let ids = engine.tenant_ids().expect("ids");
    let mut want = moved_ids(
        &HashRing::new(old_spec),
        &HashRing::new(new_spec),
        ids.iter().map(|s| s.as_str()),
    );
    want.sort_unstable();
    let report = engine
        .rebalance_incremental(to, vnodes)
        .expect("incremental rebalance");
    assert!(report.incremental);
    assert_eq!(
        report.moved_ids, want,
        "incremental migration must move exactly the ring diff"
    );
    assert_eq!(report.tenants, want.len(), "only the diff was re-installed");
    assert_eq!(engine.ring_spec(), new_spec);
    assert_eq!(engine.live_tenants().expect("live"), ids.len());
}

/// The incremental twin of `run_case`: random fleets × incremental
/// migration schedules × kill points, including the journal-then-die
/// window where a `Migrate` record survives in the WAL tail. Recovery
/// must be byte-identical to the static single-shard reference, and the
/// recovery report must count the interrupted migration.
#[allow(clippy::too_many_arguments)]
fn run_incremental_case(
    seed: u64,
    n_scalar: usize,
    n_hetero: usize,
    shards_before: usize,
    migrate_at: usize,
    migrate_to: usize,
    vnodes_to: usize,
    ck_every: usize,
    kill_at: usize,
    shards_after: usize,
    mid_kill: bool,
) {
    let trace = Diurnal::default().generate(SLOTS, seed);
    let fleet = build_fleet(seed, n_scalar, n_hetero);
    let want = reference_run(&trace.loads, &fleet);

    let dir = case_dir("inc");
    let mut engine = Engine::with_store(EngineConfig::with_shards(shards_before), open_store(&dir))
        .expect("durable engine");
    for cfg in &fleet {
        engine.admit(cfg.clone()).expect("admit");
    }
    for (t, &load) in trace.loads[..kill_at].iter().enumerate() {
        engine
            .step_batch_loads(slot_events(&fleet, load))
            .expect("step");
        if (t + 1) % ck_every == 0 {
            engine.checkpoint().expect("checkpoint");
        }
        if t + 1 == migrate_at {
            incremental_step(&mut engine, migrate_to, Some(vnodes_to));
        }
        // A second, seed-derived incremental migration: sequences of
        // topology changes, including shrink-then-regrow (retired shard
        // indices coming back) and vnode-density churn.
        if t + 1 == migrate_at + 1 + (seed as usize % 5) {
            let to = 1 + ((seed / 3) as usize % 4);
            incremental_step(&mut engine, to, None);
        }
    }
    drop(engine); // crash

    // Journal-then-die: the Migrate record reached the WAL but the crash
    // hit before the fencing checkpoint — exactly the write-ahead window
    // of Engine::rebalance_incremental. Recovery must finish the change.
    let mid_target = RingSpec::new(1 + (seed as usize % 4), 8 + (seed as usize % 48));
    if mid_kill {
        let store = open_store(&dir);
        store.recover().expect("scan");
        store
            .append(
                0,
                &JournalRecord::Migrate {
                    shards: mid_target.shards,
                    vnodes: mid_target.vnodes,
                    moved: vec!["s0".into(), "h0".into()],
                }
                .encode(),
            )
            .expect("journal migrate");
        store.sync().expect("sync");
    }

    let (engine, report) =
        Engine::recover(EngineConfig::with_shards(shards_after), open_store(&dir))
            .expect("recover");
    assert_eq!(report.replay_errors, 0, "clean replay");
    assert_eq!(report.rebalances_replayed, 0, "no full-rebalance records");
    if mid_kill {
        assert_eq!(
            report.migrations_replayed, 1,
            "the interrupted Migrate record must be counted"
        );
        assert_eq!(
            engine.ring_spec(),
            mid_target,
            "recovery completes the interrupted incremental migration"
        );
    } else {
        assert_eq!(report.migrations_replayed, 0, "fenced migrations truncate");
    }
    for &load in &trace.loads[kill_at..] {
        engine
            .step_batch_loads(slot_events(&fleet, load))
            .expect("step");
    }
    for cfg in &fleet {
        engine.finish(&cfg.id).expect("finish");
    }
    assert_eq!(
        report_texts(&engine),
        want,
        "incremental migration + kill must report byte-identically to the static engine"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random fleet × incremental-migration schedule × kill point
    /// (including the journal-then-die mid-`Migrate` window):
    /// byte-identical reports, moved set = ring diff exactly.
    #[test]
    fn random_incremental_migrations_recover_bit_identically(
        seed in 0u64..1_000_000,
        n_scalar in 2usize..6,
        n_hetero in 0usize..3,
        shards_before in 1usize..4,
        migrate_at in 1usize..SLOTS,
        migrate_to in 1usize..5,
        vnodes_to in 8usize..96,
        ck_every in 1usize..18,
        kill_at in 1usize..SLOTS,
        shards_after in 1usize..4,
        mid in 0u8..2,
    ) {
        run_incremental_case(
            seed, n_scalar, n_hetero, shards_before, migrate_at,
            migrate_to, vnodes_to, ck_every, kill_at, shards_after, mid == 1,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(heavy_cases(48)))]

    /// Nightly-depth version of the incremental kill-point property
    /// (`--include-ignored`, scaled by `RSDC_HEAVY_CASES`).
    #[test]
    #[ignore = "heavy: run via the nightly --include-ignored CI job"]
    fn random_incremental_migrations_recover_bit_identically_heavy(
        seed in 0u64..1_000_000,
        n_scalar in 2usize..6,
        n_hetero in 0usize..3,
        shards_before in 1usize..4,
        migrate_at in 1usize..SLOTS,
        migrate_to in 1usize..5,
        vnodes_to in 8usize..96,
        ck_every in 1usize..18,
        kill_at in 1usize..SLOTS,
        shards_after in 1usize..4,
        mid in 0u8..2,
    ) {
        run_incremental_case(
            seed, n_scalar, n_hetero, shards_before, migrate_at,
            migrate_to, vnodes_to, ck_every, kill_at, shards_after, mid == 1,
        );
    }
}

/// Auto-triggered chaos: the topology policy steers a **durable** engine
/// over a load ramp (trickle → flood → trickle), every applied decision
/// is an incremental migration, and a crash at the end must recover
/// byte-identically to a static single-shard engine fed the same
/// per-tenant streams. Topology decisions must never leak into tenant
/// state.
#[test]
fn auto_triggered_migrations_survive_a_crash_losslessly() {
    let fleet = build_fleet(13, 6, 2);
    let trace = Diurnal::default().generate(SLOTS, 13);
    // Slot t steps only the first k_t tenants: the varying batch size is
    // what drives the policy's induced cost up and down.
    let subset = |t: usize| -> usize {
        match t {
            0..=9 => 2,
            10..=24 => fleet.len(),
            _ => 2,
        }
    };
    let sub_events = |t: usize, load: f64| {
        let mut ev = slot_events(&fleet, load);
        ev.truncate(subset(t));
        ev
    };
    // Reference: same streams, one static shard, no policy.
    let reference = Engine::new(EngineConfig::with_shards(1));
    for cfg in &fleet {
        reference.admit(cfg.clone()).expect("admit");
    }
    for (t, &load) in trace.loads.iter().enumerate() {
        reference
            .step_batch_loads(sub_events(t, load))
            .expect("step");
    }
    for cfg in &fleet {
        reference.finish(&cfg.id).expect("finish");
    }
    let want = report_texts(&reference);

    let dir = case_dir("auto");
    let mut engine =
        Engine::with_store(EngineConfig::with_shards(1), open_store(&dir)).expect("engine");
    let mut cfg = TopologyConfig::new(1, 4);
    cfg.switch_cost = 3.0;
    cfg.cooldown = 1;
    engine.set_autoscale(Some(cfg)).expect("autoscale on");
    for cfg in &fleet {
        engine.admit(cfg.clone()).expect("admit");
    }
    let kill_at = 33;
    let mut migrations = 0;
    for (t, &load) in trace.loads[..kill_at].iter().enumerate() {
        engine.step_batch_loads(sub_events(t, load)).expect("step");
        if let Some(report) = engine.maybe_autoscale().expect("autoscale") {
            assert!(report.incremental, "auto decisions migrate incrementally");
            assert!(report.durable, "on a durable engine they are fenced");
            migrations += 1;
        }
    }
    assert!(migrations >= 2, "the ramp must trigger grow and shrink");
    assert!(engine.autoscale_status().expect("status").migrations >= migrations as u64);
    drop(engine); // crash

    let (engine, report) =
        Engine::recover(EngineConfig::with_shards(2), open_store(&dir)).expect("recover");
    assert_eq!(report.replay_errors, 0);
    for (t, &load) in trace.loads.iter().enumerate().skip(kill_at) {
        engine.step_batch_loads(sub_events(t, load)).expect("step");
    }
    for cfg in &fleet {
        engine.finish(&cfg.id).expect("finish");
    }
    assert_eq!(report_texts(&engine), want);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite regression: a recovery that completes an interrupted
/// incremental migration must say so — `migrations_replayed` in the
/// recovery report, and both replay counters surfaced by the wire
/// `wal_stats` op.
#[test]
fn recovered_engine_reports_migrations_replayed_in_wal_stats() {
    use rsdc_engine::wire::Session;
    let fleet = build_fleet(3, 3, 1);
    let dir = case_dir("walstats");
    let engine =
        Engine::with_store(EngineConfig::with_shards(2), open_store(&dir)).expect("engine");
    for cfg in &fleet {
        engine.admit(cfg.clone()).expect("admit");
    }
    for &load in &Diurnal::default().generate(6, 3).loads {
        engine
            .step_batch_loads(slot_events(&fleet, load))
            .expect("step");
    }
    drop(engine); // crash
                  // Inject the journal-then-die window for an incremental migration.
    let store = open_store(&dir);
    store.recover().expect("scan");
    store
        .append(
            0,
            &JournalRecord::Migrate {
                shards: 3,
                vnodes: 32,
                moved: vec!["s1".into()],
            }
            .encode(),
        )
        .expect("append");
    store.sync().expect("sync");

    let (mut session, report) = Session::open_durable(2, open_store(&dir)).expect("open");
    let report = report.expect("store had state");
    assert_eq!(report.migrations_replayed, 1);
    assert_eq!(report.rebalances_replayed, 0);
    assert_eq!(session.engine().ring_spec(), RingSpec::new(3, 32));
    let out = session.handle_lines(["{\"op\":\"wal_stats\"}"]);
    let v: serde::Value = serde_json::from_str(&out[0]).unwrap();
    assert_eq!(v["op"], "wal_stats");
    assert_eq!(v["migrations_replayed"], 1);
    assert_eq!(v["rebalances_replayed"], 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Back-to-back rebalances (a pathological control-plane storm) on a
/// **durable** engine, with traffic between them and a crash at the end:
/// the fleet must recover exactly. The shrink steps park shard indices
/// for an epoch and the regrow steps bring them back, which is the
/// pattern that once lost WAL records to stale cached segment writers.
#[test]
fn durable_rebalance_storm_survives_a_crash_losslessly() {
    let fleet = build_fleet(7, 5, 2);
    let trace = Diurnal::default().generate(18, 7);
    let want = reference_run(&trace.loads, &fleet);

    let dir = case_dir("storm");
    let mut engine =
        Engine::with_store(EngineConfig::with_shards(2), open_store(&dir)).expect("engine");
    for cfg in &fleet {
        engine.admit(cfg.clone()).expect("admit");
    }
    let mut slot = 0usize;
    for (shards, vnodes) in [(4, 64), (1, 8), (3, 128), (3, 16), (2, 64), (4, 32)] {
        for &load in &trace.loads[slot..slot + 2] {
            engine
                .step_batch_loads(slot_events(&fleet, load))
                .expect("step");
        }
        slot += 2;
        let report = engine.rebalance(shards, Some(vnodes)).expect("rebalance");
        assert_eq!(report.tenants, fleet.len());
        assert_eq!(engine.live_tenants().unwrap(), fleet.len());
    }
    for &load in &trace.loads[slot..] {
        engine
            .step_batch_loads(slot_events(&fleet, load))
            .expect("step");
    }
    drop(engine); // crash: the tail after the last fence is WAL-only

    let (engine, report) =
        Engine::recover(EngineConfig::with_shards(4), open_store(&dir)).expect("recover");
    assert_eq!(report.replay_errors, 0);
    for cfg in &fleet {
        engine.finish(&cfg.id).expect("finish");
    }
    assert_eq!(report_texts(&engine), want);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Admission limits survive a rebalance (they live in the handle, not the
/// workers), and migrated tenants keep their identity for the gate.
#[test]
fn limits_apply_across_rebalances() {
    use rsdc_engine::AdmissionConfig;
    let mut engine = Engine::new(EngineConfig::with_shards(1));
    engine
        .set_limits(AdmissionConfig {
            max_tenants: 3,
            rate: 0.0,
            burst: 0.0,
        })
        .unwrap();
    for i in 0..3 {
        engine
            .admit(TenantConfig::new(format!("t{i}"), 4, 1.0, PolicySpec::Lcp))
            .unwrap();
    }
    engine.rebalance(3, None).unwrap();
    assert_eq!(engine.limits().max_tenants, 3);
    assert!(
        engine
            .admit(TenantConfig::new("t3", 4, 1.0, PolicySpec::Lcp))
            .is_err(),
        "cap still enforced after migration"
    );
    engine.evict("t0").unwrap();
    engine
        .admit(TenantConfig::new("t3", 4, 1.0, PolicySpec::Lcp))
        .unwrap();
}
