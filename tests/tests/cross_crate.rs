//! End-to-end integration: workloads -> instances -> algorithms ->
//! simulator, plus the adversary pipeline against library algorithms.

use rsdc_adversary::dilation::dilate;
use rsdc_adversary::discrete::DiscreteAdversary;
use rsdc_adversary::restricted::to_restricted_discrete;
use rsdc_core::prelude::*;
use rsdc_online::lcp::Lcp;
use rsdc_online::prediction::RecedingHorizon;
use rsdc_online::traits::{competitive_ratio, run, run_lookahead};
use rsdc_sim::{simulate_best_static, simulate_offline_optimum, simulate_online, SimConfig};
use rsdc_workloads::builder::CostModel;
use rsdc_workloads::fleet_size;
use rsdc_workloads::traces::{standard_corpus, Bursty, Trace};

#[test]
fn full_pipeline_on_corpus() {
    for trace in standard_corpus(300, 17) {
        let model = CostModel::default();
        let m = fleet_size(&trace, 0.8);
        let cfg = SimConfig {
            m,
            cost_model: model,
            ..Default::default()
        };

        let opt = simulate_offline_optimum(&cfg, &trace);
        let mut lcp = Lcp::new(m, model.beta);
        let online = simulate_online(&cfg, &trace, &mut lcp);
        let stat = simulate_best_static(&cfg, &trace);

        // Model-cost ordering: OPT <= LCP <= 3 OPT; OPT <= static.
        assert!(
            opt.model_cost <= online.model_cost + 1e-9,
            "{}",
            trace.label
        );
        assert!(
            online.model_cost <= 3.0 * opt.model_cost + 1e-9,
            "{}: LCP {} vs OPT {}",
            trace.label,
            online.model_cost,
            opt.model_cost
        );
        assert!(opt.model_cost <= stat.model_cost + 1e-9);

        // Simulator invariants.
        assert_eq!(online.metrics.slots(), trace.len());
        assert!(online.metrics.total_energy() > 0.0);
        assert!(online.metrics.drop_rate() <= 1.0);
    }
}

#[test]
fn trace_serialization_pipeline() {
    let trace = Bursty::default().generate(200, 23);
    // JSON round trip.
    let json = rsdc_workloads::io::to_json(&trace).unwrap();
    let back = rsdc_workloads::io::from_json(&json).unwrap();
    assert_eq!(trace, back);
    // CSV round trip.
    let mut buf = Vec::new();
    rsdc_workloads::io::write_csv(&mut buf, &trace).unwrap();
    let back = rsdc_workloads::io::read_csv(&buf[..], trace.label.clone()).unwrap();
    assert_eq!(trace.loads, back.loads);
    // The round-tripped trace produces an identical instance.
    let model = CostModel::default();
    let a = model.instance(8, &trace);
    let b = model.instance(8, &back);
    assert_eq!(a, b);
}

#[test]
fn adversary_to_restricted_to_lcp_pipeline() {
    // Theorem 4 -> Theorem 5 pipeline: interactive duel, map through the
    // reduction, run LCP on the restricted instance, cost stays coherent.
    let adv = DiscreteAdversary {
        eps: 0.05,
        t_len: 800,
    };
    let mut lcp = Lcp::new(1, 2.0);
    let duel = adv.run(&mut lcp);
    let restricted = to_restricted_discrete(&duel.instance);
    let mapped = restricted.to_general();
    assert_eq!(mapped.horizon(), duel.instance.horizon());

    let mut lcp2 = Lcp::new(2, 2.0);
    let xs = run(&mut lcp2, &mapped);
    // Feasibility: x >= lambda at every slot.
    for (t, &x) in xs.0.iter().enumerate() {
        assert!(x as f64 >= restricted.lambdas[t], "slot {t}");
    }
    let (alg, opt, ratio) = competitive_ratio(&mapped, &xs);
    assert!(alg.is_finite() && opt.is_finite());
    assert!(ratio <= 3.0 + 1e-9);
}

#[test]
fn dilation_pipeline_with_lookahead() {
    // Theorem 10 pipeline: dilate a workload, give the controller a window,
    // verify feasibility and that the dilated optimum is not larger.
    let costs: Vec<Cost> = (0..12).map(|t| Cost::abs(1.0, (t % 3) as f64)).collect();
    let inst = Instance::new(2, 2.0, costs).unwrap();
    let d = dilate(&inst, 2, 3);
    assert_eq!(d.horizon(), 12 * 6);

    let opt_orig = rsdc_offline::dp::solve_cost_only(&inst);
    let opt_dilated = rsdc_offline::dp::solve_cost_only(&d);
    assert!(opt_dilated <= opt_orig + 1e-9);

    let mut rh = RecedingHorizon::new(2, 2.0);
    let xs = run_lookahead(&mut rh, &d, 3);
    assert!(xs.is_feasible(&d));
}

#[test]
fn empty_and_degenerate_traces() {
    let model = CostModel::default();
    // Empty trace.
    let empty = Trace::new("empty", vec![]);
    let inst = model.instance(4, &empty);
    assert_eq!(rsdc_offline::dp::solve_cost_only(&inst), 0.0);
    // All-zero load: optimal is to keep everything asleep.
    let zeros = Trace::new("zeros", vec![0.0; 20]);
    let inst = model.instance(4, &zeros);
    let sol = rsdc_offline::dp::solve(&inst);
    assert_eq!(sol.schedule, Schedule(vec![0; 20]));
    assert_eq!(sol.cost, 0.0);
    // Constant max load: optimal powers everything once.
    let full = Trace::new("full", vec![4.0; 20]);
    let inst = model.instance(4, &full);
    let sol = rsdc_offline::dp::solve(&inst);
    assert!(sol.schedule.0.iter().all(|&x| x >= 1));
}

#[test]
fn lcp_matches_across_equivalent_formulations() {
    // Running LCP on a restricted instance's general form is identical to
    // running it on a manually-assembled instance with the same costs.
    let trace = Trace::new("t", vec![1.0, 3.0, 2.0, 0.5, 3.5]);
    let model = CostModel::default();
    let r = model.restricted(4, &trace);
    let g1 = r.to_general();
    let g2 = Instance::new(4, model.beta, g1.cost_fns().to_vec()).unwrap();
    let mut a = Lcp::new(4, model.beta);
    let mut b = Lcp::new(4, model.beta);
    assert_eq!(run(&mut a, &g1), run(&mut b, &g2));
}
