//! Property tests for the workload substrate: generators, statistics,
//! serialization and cost-model construction.

use proptest::collection::vec;
use proptest::prelude::*;
use rsdc_core::analysis;
use rsdc_workloads::builder::CostModel;
use rsdc_workloads::stats::{autocorrelation, burstiness, quantile, trace_stats};
use rsdc_workloads::traces::{Bursty, Diurnal, Spiky, Stationary, Trace};
use rsdc_workloads::{fleet_size, io};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generator produces non-negative loads of the requested length,
    /// deterministically in the seed.
    #[test]
    fn generators_are_sane(t_len in 0usize..300, seed in 0u64..1000) {
        let traces = vec![
            Diurnal::default().generate(t_len, seed),
            Bursty::default().generate(t_len, seed),
            Spiky::default().generate(t_len, seed),
            Stationary::default().generate(t_len, seed),
        ];
        for tr in &traces {
            prop_assert_eq!(tr.len(), t_len);
            prop_assert!(tr.loads.iter().all(|&l| l >= 0.0 && l.is_finite()));
        }
        // Determinism.
        let again = Diurnal::default().generate(t_len, seed);
        prop_assert_eq!(&again.loads, &traces[0].loads);
    }

    /// CSV and JSON round trips are lossless for arbitrary loads.
    #[test]
    fn io_round_trips(loads in vec(0.0f64..1e6, 0..80)) {
        let tr = Trace::new("prop", loads);
        let mut buf = Vec::new();
        io::write_csv(&mut buf, &tr).unwrap();
        let back = io::read_csv(&buf[..], "prop").unwrap();
        prop_assert_eq!(&back.loads, &tr.loads);
        let s = io::to_json(&tr).unwrap();
        let back = io::from_json(&s).unwrap();
        prop_assert_eq!(back.loads, tr.loads);
    }

    /// Statistics are internally consistent.
    #[test]
    fn stats_consistency(loads in vec(0.0f64..100.0, 1..100)) {
        let tr = Trace::new("prop", loads.clone());
        let s = trace_stats(&tr);
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert!(s.peak_to_mean >= 1.0 - 1e-9 || s.mean == 0.0);
        prop_assert!((-1.0 - 1e-6..=1.0 + 1e-6).contains(&s.autocorr1));
        // Quantiles bracket the extremes.
        prop_assert!((quantile(&loads, 0.0) - s.min).abs() < 1e-9);
        prop_assert!((quantile(&loads, 1.0) - s.max).abs() < 1e-9);
        prop_assert!(quantile(&loads, 0.25) <= quantile(&loads, 0.75) + 1e-9);
    }

    /// Burstiness and autocorrelation are invariant under positive scaling.
    #[test]
    fn scale_invariance(loads in vec(0.1f64..50.0, 3..60), k in 0.1f64..10.0) {
        let scaled: Vec<f64> = loads.iter().map(|l| l * k).collect();
        let b0 = burstiness(&loads);
        let b1 = burstiness(&scaled);
        prop_assert!((b0 - b1).abs() < 1e-9 * (1.0 + b0));
        let a0 = autocorrelation(&loads, 1);
        let a1 = autocorrelation(&scaled, 1);
        prop_assert!((a0 - a1).abs() < 1e-9 * (1.0 + a0.abs()));
    }

    /// Cost-model instances are convex, and fleet sizing covers the peak.
    #[test]
    fn cost_model_builds_valid_instances(loads in vec(0.0f64..20.0, 1..40)) {
        let tr = Trace::new("prop", loads);
        let m = fleet_size(&tr, 0.8);
        prop_assert!(m as f64 * 0.8 >= tr.peak() - 1e-9);
        let inst = CostModel::default().instance(m, &tr);
        for t in 1..=inst.horizon() {
            prop_assert!(inst.cost_fn(t).check_convex(m).is_ok());
        }
    }

    /// Trace combinators preserve totals where they should.
    #[test]
    fn combinator_laws(a in vec(0.0f64..10.0, 1..30), b in vec(0.0f64..10.0, 1..30)) {
        let ta = Trace::new("a", a.clone());
        let tb = Trace::new("b", b.clone());
        // concat preserves total load.
        let cat = ta.concat(&tb);
        let sum = |v: &[f64]| v.iter().sum::<f64>();
        prop_assert!((sum(&cat.loads) - (sum(&a) + sum(&b))).abs() < 1e-6);
        // overlay of equal-length traces preserves total load.
        if a.len() == b.len() {
            let ov = ta.overlay(&tb);
            prop_assert!((sum(&ov.loads) - (sum(&a) + sum(&b))).abs() < 1e-6);
        }
        // downsample preserves the mean (up to the partial trailing block).
        let ds = ta.downsample(2);
        prop_assert!(ds.len() == a.len().div_ceil(2));
    }

    /// Schedule phase decomposition tiles the schedule exactly.
    #[test]
    fn phases_tile(xs in vec(0u32..6, 0..60)) {
        let sched = rsdc_core::Schedule(xs);
        let ps = analysis::phases(&sched);
        let covered: usize = ps.iter().map(|(r, _)| r.len()).sum();
        prop_assert_eq!(covered, sched.len());
        // Consecutive phases abut.
        for w in ps.windows(2) {
            prop_assert_eq!(w[0].0.end, w[1].0.start);
        }
    }

    /// Every statistic is finite for every trace — including all-zero
    /// loads — so `TraceStats` survives a JSON round trip losslessly.
    /// (The shim serializer renders non-finite floats as `null`; an
    /// infinite peak-to-mean used to silently break the round trip.)
    #[test]
    fn stats_are_finite_and_json_safe(loads in vec(0.0f64..100.0, 1..60), zero_out in prop_oneof![Just(false), Just(true)]) {
        let loads = if zero_out { vec![0.0; loads.len()] } else { loads };
        let tr = Trace::new("prop", loads);
        let s = trace_stats(&tr);
        for (name, v) in [
            ("mean", s.mean), ("std_dev", s.std_dev), ("min", s.min),
            ("max", s.max), ("peak_to_mean", s.peak_to_mean), ("cv", s.cv),
            ("autocorr1", s.autocorr1), ("burstiness", s.burstiness),
        ] {
            prop_assert!(v.is_finite(), "{} is not finite: {}", name, v);
        }
        let json = serde_json::to_string(&s).unwrap();
        let back: rsdc_workloads::stats::TraceStats = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, s, "TraceStats JSON round trip lost data");
    }
}

/// Zero-load traces: the corner the shim serializer punishes. A peak/mean
/// of `0/0` must read as the flat value `1.0`, never `NaN`/`inf`.
#[test]
fn zero_load_trace_stats_are_finite_and_round_trip() {
    let tr = Trace::new("silence", vec![0.0; 24]);
    assert_eq!(tr.peak_to_mean(), 1.0, "an all-zero trace is flat");
    let s = trace_stats(&tr);
    assert_eq!(s.peak_to_mean, 1.0);
    assert_eq!(s.mean, 0.0);
    assert!(s.burstiness.is_finite() && s.cv.is_finite());
    let json = serde_json::to_string(&s).unwrap();
    assert!(
        !json.contains("null"),
        "no stat may serialize as null: {json}"
    );
    let back: rsdc_workloads::stats::TraceStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, s);
}

/// The standard corpus covers all five generators (weekly included) and
/// every member's statistics are JSON-safe.
#[test]
fn standard_corpus_is_complete_and_json_safe() {
    let corpus = rsdc_workloads::traces::standard_corpus(96, 11);
    assert_eq!(corpus.len(), 5, "corpus must carry all five generators");
    assert!(
        corpus.iter().any(|t| t.label.contains("weekly")),
        "weekly generator missing from the corpus"
    );
    for tr in &corpus {
        let s = trace_stats(tr);
        let json = serde_json::to_string(&s).unwrap();
        assert!(
            !json.contains("null"),
            "{}: stats serialize with null: {json}",
            tr.label
        );
    }
}
