//! Crash-recovery differential tests (the rsdc-store acceptance bar):
//!
//! * killing a durable engine at a **randomized point** mid-trace, then
//!   recovering from disk (newest checkpoint + WAL-tail replay) and
//!   finishing the trace, produces per-tenant reports **byte-identical**
//!   to an uninterrupted run — across mixed policy fleets (including
//!   RNG-bearing rounders, lookahead lag, and heterogeneous tenants whose
//!   state is a lattice-DP frontier), randomized checkpoint cadences, and
//!   *different* shard counts before and after the crash;
//! * a torn or corrupted WAL tail degrades to "recover the valid prefix":
//!   recovery repairs the file, stays functional, and never propagates the
//!   corruption.

use proptest::prelude::*;
use rsdc_core::Cost;
use rsdc_engine::{
    Engine, EngineConfig, FleetSpec, HeteroAlgo, PolicySpec, TenantConfig, TenantReport,
};
use rsdc_hetero::ServerType;
use rsdc_store::{Durability, FileStore, FileStoreConfig};
use rsdc_workloads::builder::CostModel;
use rsdc_workloads::traces::{Diurnal, Trace};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static CASE: AtomicU64 = AtomicU64::new(0);

/// A fresh, unique data directory per test case.
fn case_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("rsdc-store-recovery")
        .join(format!(
            "{tag}-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_store(dir: &std::path::Path) -> Arc<dyn Durability> {
    Arc::new(FileStore::open(dir, FileStoreConfig { sync_every: 16 }).expect("open store"))
}

/// A small two-class hetero fleet (12 lattice points) for the mixed fleet.
fn hetero_spec() -> FleetSpec {
    FleetSpec::new(vec![
        ServerType {
            count: 3,
            beta: 1.0,
            energy: 1.0,
            capacity: 1.0,
        },
        ServerType {
            count: 2,
            beta: 2.5,
            energy: 1.4,
            capacity: 2.0,
        },
    ])
}

/// The demo fleet: one tenant per policy family — including both hetero
/// policies, whose DP-frontier state must survive every kill point — with
/// seeds derived from `seed` so RNG state is exercised and differs between
/// cases.
fn fleet(seed: u64) -> Vec<TenantConfig> {
    let m = 12;
    let beta = CostModel::default().beta;
    vec![
        TenantConfig::new("lcp", m, beta, PolicySpec::Lcp).with_opt_tracking(),
        TenantConfig::new("flcp", m, beta, PolicySpec::FlcpRounded { k: 2, seed })
            .with_opt_tracking(),
        TenantConfig::new(
            "half",
            m,
            beta,
            PolicySpec::HalfStepRounded {
                seed: seed ^ 0x9e37,
            },
        ),
        TenantConfig::new("look", m, beta, PolicySpec::Lookahead { window: 3 }),
        TenantConfig::new("hyst", m, beta, PolicySpec::Hysteresis { band: 2 }),
        TenantConfig::hetero("het-dp", hetero_spec(), HeteroAlgo::Frontier).with_opt_tracking(),
        TenantConfig::hetero("het-gr", hetero_spec(), HeteroAlgo::Greedy),
    ]
}

fn slot_events(
    model: &CostModel,
    fleet: &[TenantConfig],
    load: f64,
) -> Vec<(String, Cost, Option<f64>)> {
    let cost = Cost::Server {
        lambda: load,
        params: model.server,
        overload: model.overload,
    };
    fleet
        .iter()
        .map(|cfg| (cfg.id.clone(), cost.clone(), Some(load)))
        .collect()
}

fn admit_all(engine: &Engine, fleet: &[TenantConfig]) {
    for cfg in fleet {
        engine.admit(cfg.clone()).expect("admit");
    }
}

fn finish_all(engine: &Engine, fleet: &[TenantConfig]) {
    for cfg in fleet {
        engine.finish(&cfg.id).expect("finish");
    }
}

fn report_texts(engine: &Engine) -> Vec<String> {
    use serde::Serialize as _;
    engine
        .report_all()
        .expect("report")
        .iter()
        .map(|r: &TenantReport| serde_json::to_string(&r.to_value()).expect("serializable"))
        .collect()
}

/// Uninterrupted reference run on `shards` shards.
fn reference_run(trace: &Trace, fleet: &[TenantConfig], shards: usize) -> (Vec<String>, String) {
    let model = CostModel::default();
    let engine = Engine::new(EngineConfig::with_shards(shards));
    admit_all(&engine, fleet);
    for &load in &trace.loads {
        engine
            .step_batch_loads(slot_events(&model, fleet, load))
            .expect("step");
    }
    finish_all(&engine, fleet);
    let reports = report_texts(&engine);
    use serde::Serialize as _;
    let stats =
        serde_json::to_string(&engine.shard_stats().expect("stats").to_value()).expect("json");
    (reports, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Kill the engine at a random slot, with a random checkpoint cadence
    /// and (possibly different) shard counts before and after the crash.
    /// The recovered run's reports must be byte-identical to an
    /// uninterrupted run's.
    #[test]
    fn randomized_kill_points_recover_bit_identically(
        seed in 0u64..1_000_000,
        kill_at in 1usize..48,
        ck_every in 1usize..24,
        shards_before in 1usize..4,
        shards_after in 1usize..4,
    ) {
        let trace = Diurnal::default().generate(48, seed);
        let model = CostModel::default();
        let fleet = fleet(seed);
        let (want_reports, want_stats) = reference_run(&trace, &fleet, shards_after);

        let dir = case_dir("kill");
        let durable = Engine::with_store(
            EngineConfig::with_shards(shards_before),
            open_store(&dir),
        ).expect("durable engine");
        admit_all(&durable, &fleet);
        for (t, &load) in trace.loads[..kill_at].iter().enumerate() {
            durable
                .step_batch_loads(slot_events(&model, &fleet, load))
                .expect("step");
            if (t + 1) % ck_every == 0 {
                durable.checkpoint().expect("checkpoint");
            }
        }
        drop(durable); // crash: whatever the cadence left uncovered is WAL-only

        let (recovered, report) = Engine::recover(
            EngineConfig::with_shards(shards_after),
            open_store(&dir),
        ).expect("recover");
        prop_assert_eq!(report.replay_errors, 0);
        prop_assert_eq!(report.corrupt_segments, 0);
        prop_assert_eq!(
            report.tenants_restored + (report.checkpoint_seq == 0) as usize * fleet.len(),
            fleet.len(),
            "tenants come from the checkpoint or (before the first one) WAL admits"
        );
        for &load in &trace.loads[kill_at..] {
            recovered
                .step_batch_loads(slot_events(&model, &fleet, load))
                .expect("step");
        }
        finish_all(&recovered, &fleet);
        prop_assert_eq!(report_texts(&recovered), want_reports);
        if shards_before == shards_after {
            use serde::Serialize as _;
            let got_stats = serde_json::to_string(
                &recovered.shard_stats().expect("stats").to_value(),
            ).expect("json");
            prop_assert_eq!(got_stats, want_stats, "shard aggregates survive too");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Largest WAL segment file in a data dir.
fn largest_wal(dir: &std::path::Path) -> std::path::PathBuf {
    std::fs::read_dir(dir)
        .expect("read dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("wal"))
        .max_by_key(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .expect("a wal segment")
}

/// Run a single-tenant durable engine for `slots` events and crash it.
fn crashed_single_tenant_run(dir: &std::path::Path, slots: usize) {
    let engine = Engine::with_store(EngineConfig::with_shards(1), open_store(dir)).expect("engine");
    engine
        .admit(TenantConfig::new("t", 8, 4.0, PolicySpec::Lcp))
        .expect("admit");
    for t in 0..slots {
        engine
            .step("t", Cost::abs(1.0, (t % 7) as f64))
            .expect("step");
    }
    drop(engine);
}

#[test]
fn truncated_wal_tail_recovers_the_valid_prefix() {
    // Chop k bytes off the WAL tail for a sweep of k: recovery must accept
    // the valid prefix, repair the file, and stay fully functional.
    for chop in [1u64, 3, 7, 12, 40] {
        let dir = case_dir("truncate");
        crashed_single_tenant_run(&dir, 30);
        let wal = largest_wal(&dir);
        let len = std::fs::metadata(&wal).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(len - chop)
            .unwrap();

        let (engine, report) =
            Engine::recover(EngineConfig::with_shards(1), open_store(&dir)).unwrap();
        let events = engine.report("t").unwrap().events;
        assert!(events < 30, "chop {chop}: some tail must be lost");
        assert!(
            events >= 30 - 1 - chop.div_ceil(8 + 2),
            "chop {chop}: at most the torn records drop"
        );
        assert!(report.corrupt_segments <= 1);
        // Still functional: the engine continues and re-recovers cleanly.
        engine.step("t", Cost::abs(1.0, 2.0)).unwrap();
        drop(engine);
        let (engine, report2) =
            Engine::recover(EngineConfig::with_shards(2), open_store(&dir)).unwrap();
        assert_eq!(
            report2.corrupt_segments, 0,
            "chop {chop}: repair is durable"
        );
        assert_eq!(engine.report("t").unwrap().events, events + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn corrupted_wal_byte_drops_only_the_tail() {
    let dir = case_dir("flip");
    crashed_single_tenant_run(&dir, 24);
    let wal = largest_wal(&dir);
    let mut bytes = std::fs::read(&wal).unwrap();
    let at = bytes.len() / 2;
    bytes[at] ^= 0x20;
    std::fs::write(&wal, &bytes).unwrap();

    let (engine, report) = Engine::recover(EngineConfig::with_shards(1), open_store(&dir)).unwrap();
    assert_eq!(report.corrupt_segments, 1);
    assert_eq!(report.replay_errors, 0, "valid prefix replays cleanly");
    let events = engine.report("t").unwrap().events;
    assert!(
        events < 24 && events > 0,
        "roughly half survives, got {events}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn double_recovery_appends_at_the_right_boundary() {
    // Crash → recover → stream → crash again → recover: the second
    // recovery must see checkpoint(recovery #1) + both WAL tails exactly
    // once each.
    let trace = Diurnal::default().generate(36, 9);
    let model = CostModel::default();
    let fleet = fleet(9);
    let (want, _) = reference_run(&trace, &fleet, 2);

    let dir = case_dir("double");
    let engine =
        Engine::with_store(EngineConfig::with_shards(2), open_store(&dir)).expect("engine");
    admit_all(&engine, &fleet);
    for &load in &trace.loads[..12] {
        engine
            .step_batch_loads(slot_events(&model, &fleet, load))
            .expect("step");
    }
    drop(engine);

    let (engine, _) = Engine::recover(EngineConfig::with_shards(3), open_store(&dir)).unwrap();
    for &load in &trace.loads[12..25] {
        engine
            .step_batch_loads(slot_events(&model, &fleet, load))
            .expect("step");
    }
    drop(engine);

    let (engine, report) = Engine::recover(EngineConfig::with_shards(2), open_store(&dir)).unwrap();
    assert_eq!(report.tenants_restored, fleet.len());
    assert_eq!(report.replay_errors, 0);
    for &load in &trace.loads[25..] {
        engine
            .step_batch_loads(slot_events(&model, &fleet, load))
            .expect("step");
    }
    finish_all(&engine, &fleet);
    assert_eq!(report_texts(&engine), want);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hetero_admitted_after_the_checkpoint_recovers_from_the_wal_alone() {
    // A hetero tenant admitted *after* the last checkpoint exists only as
    // WAL records (admit + load batches): recovery must rebuild the fleet
    // spec and replay the DP frontier from scratch, bit-identically.
    let dir = case_dir("hetero-wal");
    let loads = [1.0, 4.5, 2.0, 5.5, 0.5, 3.0, 2.5];

    let reference = Engine::new(EngineConfig::with_shards(2));
    reference
        .admit(TenantConfig::hetero("h", hetero_spec(), HeteroAlgo::Frontier).with_opt_tracking())
        .unwrap();
    for &l in &loads {
        reference.step_load("h", l).unwrap();
    }
    let want = {
        use serde::Serialize as _;
        serde_json::to_string(&reference.report("h").unwrap().to_value()).unwrap()
    };

    let engine =
        Engine::with_store(EngineConfig::with_shards(2), open_store(&dir)).expect("engine");
    engine
        .admit(TenantConfig::new("warmup", 6, 2.0, PolicySpec::Lcp))
        .unwrap();
    engine.checkpoint().unwrap();
    engine
        .admit(TenantConfig::hetero("h", hetero_spec(), HeteroAlgo::Frontier).with_opt_tracking())
        .unwrap();
    for &l in &loads[..4] {
        engine.step_load("h", l).unwrap();
    }
    drop(engine);

    let (engine, report) = Engine::recover(EngineConfig::with_shards(1), open_store(&dir)).unwrap();
    assert_eq!(report.tenants_restored, 1, "checkpoint held only warmup");
    assert_eq!(report.replay_errors, 0);
    for &l in &loads[4..] {
        engine.step_load("h", l).unwrap();
    }
    let got = {
        use serde::Serialize as _;
        serde_json::to_string(&engine.report("h").unwrap().to_value()).unwrap()
    };
    assert_eq!(got, want);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eviction_and_late_admission_survive_recovery() {
    // Admits and evicts after the last checkpoint only exist in the WAL;
    // recovery must replay them in order.
    let dir = case_dir("churn");
    let engine =
        Engine::with_store(EngineConfig::with_shards(2), open_store(&dir)).expect("engine");
    engine
        .admit(TenantConfig::new("old", 6, 2.0, PolicySpec::Lcp))
        .unwrap();
    for t in 0..8 {
        engine.step("old", Cost::abs(1.0, t as f64)).unwrap();
    }
    engine.checkpoint().unwrap();
    engine.evict("old").unwrap();
    engine
        .admit(TenantConfig::new(
            "new",
            6,
            2.0,
            PolicySpec::FlcpRounded { k: 2, seed: 4 },
        ))
        .unwrap();
    for t in 0..5 {
        engine.step("new", Cost::abs(1.0, t as f64)).unwrap();
    }
    drop(engine);

    let (engine, report) = Engine::recover(EngineConfig::with_shards(2), open_store(&dir)).unwrap();
    assert_eq!(report.tenants_restored, 1, "checkpoint held only \"old\"");
    assert_eq!(report.replay_errors, 0);
    assert_eq!(engine.tenant_ids().unwrap(), vec!["new".to_string()]);
    assert_eq!(engine.report("new").unwrap().events, 5);
    let _ = std::fs::remove_dir_all(&dir);
}
