//! JSONL ↔ binary wire differential: the binary framing is pinned to the
//! JSONL protocol by construction — same ops, same sequence numbers, same
//! engine behind both — so any random valid request stream must produce
//!
//! * **byte-identical response lines** (modulo framing: binary responses
//!   are decoded back to their JSONL text),
//! * **byte-identical durable stores** when both sessions journal to a
//!   `FileStore`, and
//! * **byte-identical recovery**: a binary connection killed at an
//!   arbitrary byte leaves a store from which recovery matches a JSONL
//!   session fed exactly the delivered frame prefix.
//!
//! The op generator covers every deterministic wire op plus blank lines,
//! comments, and deliberate errors (unknown tenants, bad loads, garbage
//! JSON) so the error/sequence-number accounting is differentially tested
//! too. The `metrics` op is excluded by design: its dump embeds
//! wall-clock batch-latency histograms, nondeterministic across any two
//! runs regardless of framing.

use proptest::collection::vec;
use proptest::prelude::*;
use rsdc_engine::binwire::{encode_request_line, BinSession, FrameDecoder, PREAMBLE};
use rsdc_engine::wire::Session;
use rsdc_engine::{Engine, EngineConfig};
use rsdc_store::{Durability, FileStore, FileStoreConfig};
use rsdc_tests::heavy_cases;
use std::sync::Arc;

const SHARDS: usize = 2;

/// One generated request line. Weighted toward steps (the hot path) with
/// every control op, skip line, and error shape mixed in.
fn line_strategy() -> impl Strategy<Value = String> {
    let scalar_step = || {
        (0usize..6, 0u32..17).prop_map(|(i, c)| {
            format!(
                r#"{{"op":"step","id":"t{i}","cost":{{"Abs":{{"slope":1.0,"center":{c}.0}}}}}}"#
            )
        })
    };
    let hetero_step = || {
        (0usize..3, 1u32..10)
            .prop_map(|(i, l)| format!(r#"{{"op":"step","id":"h{i}","load":{}}}"#, l as f64 * 0.5))
    };
    let control = prop_oneof![
        (0usize..6).prop_map(|i| format!(r#"{{"op":"finish","id":"t{i}"}}"#)),
        (0usize..6).prop_map(|i| format!(r#"{{"op":"snapshot","id":"t{i}"}}"#)),
        (0usize..6).prop_map(|i| format!(r#"{{"op":"report","id":"t{i}"}}"#)),
        Just(r#"{"op":"report"}"#.to_string()),
        Just(r#"{"op":"stats"}"#.to_string()),
        Just(r#"{"op":"wal_stats"}"#.to_string()),
        (1usize..5).prop_map(|s| format!(r#"{{"op":"rebalance","shards":{s},"vnodes":8}}"#)),
        (1usize..5).prop_map(|s| format!(
            r#"{{"op":"rebalance","shards":{s},"vnodes":8,"mode":"incremental"}}"#
        )),
    ];
    let skip = prop_oneof![
        Just(String::new()),
        Just("   ".to_string()),
        Just("# comment".to_string()),
    ];
    let error = prop_oneof![
        Just(r#"{"op":"step","id":"ghost","load":1.0}"#.to_string()),
        Just(r#"{"op":"step","id":"t0","load":-1}"#.to_string()),
        Just(r#"{"op":"step","id":"t0"}"#.to_string()),
        Just(r#"{"op":"warp"}"#.to_string()),
        Just(r#"{"op":"#.to_string()),
        Just(r#"{"op":"finish","id":"ghost"}"#.to_string()),
    ];
    // Weight toward steps by repeating arms (the proptest shim's
    // `prop_oneof!` samples arms uniformly).
    prop_oneof![
        scalar_step(),
        scalar_step(),
        scalar_step(),
        hetero_step(),
        hetero_step(),
        control,
        skip,
        error,
    ]
}

/// Admits establishing the tenant universe the random ops step.
fn prelude() -> Vec<String> {
    let mut lines: Vec<String> = (0..6)
        .map(|i| {
            let policy = if i % 2 == 0 {
                r#""lcp""#.to_string()
            } else {
                format!(r#"{{"HalfStepRounded":{{"seed":{i}}}}}"#)
            };
            format!(r#"{{"op":"admit","id":"t{i}","m":16,"beta":4.0,"policy":{policy}}}"#)
        })
        .collect();
    for i in 0..3 {
        lines.push(format!(
            r#"{{"op":"admit","id":"h{i}","policy":"hetero:greedy","fleet":{{"types":[{{"count":3,"beta":1.0,"energy":1.0,"capacity":1.0}},{{"count":2,"beta":2.5,"energy":1.4,"capacity":2.0}}]}}}}"#
        ));
    }
    lines
}

/// Transcode a JSONL request stream into one binary connection stream.
fn transcode(lines: &[String]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&PREAMBLE);
    let mut payload = Vec::new();
    for line in lines {
        encode_request_line(line, &mut payload, &mut out);
    }
    out
}

/// Serve `stream` through a binary session in `chunk`-byte feeds and
/// decode the responses back to JSONL text.
fn serve_binary(session: Session, stream: &[u8], chunk: usize) -> (Vec<String>, Session) {
    let mut bin = BinSession::new(session);
    let mut reply_bytes = Vec::new();
    for part in stream.chunks(chunk.max(1)) {
        bin.feed(part, &mut reply_bytes);
    }
    bin.finish(&mut reply_bytes);
    let session = bin.into_session();
    let lines = rsdc_engine::binwire::decode_response(&reply_bytes).expect("decode responses");
    (lines, session)
}

fn ephemeral_session() -> Session {
    Session::new(Engine::new(EngineConfig::with_shards(SHARDS)))
}

/// A fresh, unique data directory per test case.
fn case_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir()
        .join("rsdc-wire-binary-differential")
        .join(format!(
            "{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_store(dir: &std::path::Path) -> Arc<dyn Durability> {
    Arc::new(FileStore::open(dir, FileStoreConfig { sync_every: 16 }).expect("open store"))
}

/// Sorted `(file name, contents)` listing of a store directory.
fn dir_bytes(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("read store dir")
        .map(|e| {
            let e = e.expect("dir entry");
            let name = e.file_name().to_string_lossy().into_owned();
            (name, std::fs::read(e.path()).expect("read store file"))
        })
        .collect();
    files.sort();
    files
}

/// Number of complete frames in `stream[PREAMBLE..cut]` — the ops a
/// connection killed at byte `cut` actually delivered.
fn complete_frames(stream: &[u8], cut: usize) -> usize {
    let mut dec = FrameDecoder::new();
    dec.extend(&stream[PREAMBLE.len()..cut]);
    let mut n = 0usize;
    while let Ok(Some(_)) = dec.next_frame() {
        n += 1;
    }
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random op streams answer byte-identically through both framings,
    /// for any feed chunking of the binary connection.
    #[test]
    fn responses_are_byte_identical_across_framings(
        ops in vec(line_strategy(), 1..40),
        chunk in 1usize..80,
    ) {
        let mut lines = prelude();
        lines.extend(ops);

        let mut jsonl = ephemeral_session();
        let want = jsonl.handle_lines(lines.iter().map(|s| s.as_str()));

        let stream = transcode(&lines);
        let (got, _session) = serve_binary(ephemeral_session(), &stream, chunk);
        prop_assert_eq!(got, want);
    }

    /// With a durable store behind each session, the same stream leaves
    /// byte-identical WAL + checkpoint files on disk — the journaling
    /// path cannot tell the framings apart either.
    #[test]
    fn durable_stores_are_byte_identical_across_framings(
        ops in vec(line_strategy(), 1..24),
        checkpoint_at in 0usize..24,
        chunk in 1usize..80,
    ) {
        let mut lines = prelude();
        lines.extend(ops);
        let at = prelude().len() + (checkpoint_at % (lines.len() - prelude().len() + 1));
        lines.insert(at, r#"{"op":"checkpoint"}"#.to_string());

        let dir_j = case_dir("jsonl");
        let dir_b = case_dir("binary");

        let (mut jsonl, none) = Session::open_durable(SHARDS, open_store(&dir_j)).expect("open");
        prop_assert!(none.is_none());
        let want = jsonl.handle_lines(lines.iter().map(|s| s.as_str()));
        drop(jsonl);

        let (binary, none) = Session::open_durable(SHARDS, open_store(&dir_b)).expect("open");
        prop_assert!(none.is_none());
        let (got, session) = serve_binary(binary, &transcode(&lines), chunk);
        drop(session);

        // `wal_stats` embeds the store's own directory path — the one
        // legitimately session-specific byte sequence. Mask it.
        let mask = |out: Vec<String>, dir: &std::path::Path| -> Vec<String> {
            let text = dir.display().to_string();
            out.into_iter().map(|l| l.replace(&text, "<dir>")).collect()
        };
        prop_assert_eq!(mask(got, &dir_b), mask(want, &dir_j));
        prop_assert_eq!(dir_bytes(&dir_j), dir_bytes(&dir_b));
        let _ = std::fs::remove_dir_all(&dir_j);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    /// Kill-point recovery: cut the binary stream at an arbitrary byte
    /// (possibly mid-frame). The delivered complete frames match a JSONL
    /// session fed exactly that line prefix, and recovering both stores
    /// yields byte-identical reports and stats.
    #[test]
    fn killed_binary_connections_recover_like_their_jsonl_prefix(
        ops in vec(line_strategy(), 4..24),
        cut_frac in 0.0f64..1.0,
        chunk in 1usize..80,
    ) {
        let mut lines = prelude();
        lines.extend(ops);
        let stream = transcode(&lines);
        let span = stream.len() - PREAMBLE.len();
        let cut = PREAMBLE.len() + (cut_frac * span as f64) as usize;
        let delivered = complete_frames(&stream, cut);

        let dir_j = case_dir("kill-jsonl");
        let dir_b = case_dir("kill-binary");

        // The killed binary connection: feed the cut stream, then drop it
        // (finish flushes what arrived — the engine-side close a real
        // transport kill triggers).
        let (binary, _) = Session::open_durable(SHARDS, open_store(&dir_b)).expect("open");
        let (_replies, session) = serve_binary(binary, &stream[..cut], chunk);
        drop(session);

        // The JSONL twin serves exactly the delivered prefix.
        let (mut jsonl, _) = Session::open_durable(SHARDS, open_store(&dir_j)).expect("open");
        jsonl.handle_lines(lines[..delivered].iter().map(|s| s.as_str()));
        drop(jsonl);

        // Recover both and interrogate them identically.
        let probe = [r#"{"op":"report"}"#, r#"{"op":"stats"}"#];
        let (mut rj, _) = Session::open_durable(SHARDS, open_store(&dir_j)).expect("recover");
        let want = rj.handle_lines(probe);
        drop(rj);
        let (mut rb, _) = Session::open_durable(SHARDS, open_store(&dir_b)).expect("recover");
        let got = rb.handle_lines(probe);
        drop(rb);

        prop_assert_eq!(got, want);
        let _ = std::fs::remove_dir_all(&dir_j);
        let _ = std::fs::remove_dir_all(&dir_b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(heavy_cases(512)))]

    /// Nightly-depth differential (`--include-ignored`).
    #[test]
    #[ignore = "heavy: run via the nightly --include-ignored CI job"]
    fn responses_are_byte_identical_across_framings_heavy(
        ops in vec(line_strategy(), 1..120),
        chunk in 1usize..200,
    ) {
        let mut lines = prelude();
        lines.extend(ops);
        let mut jsonl = ephemeral_session();
        let want = jsonl.handle_lines(lines.iter().map(|s| s.as_str()));
        let stream = transcode(&lines);
        let (got, _session) = serve_binary(ephemeral_session(), &stream, chunk);
        prop_assert_eq!(got, want);
    }
}
