//! Structural facts from the LCP analysis (Section 3.3), tested against the
//! Lemma 11 backward-optimal schedule:
//!
//! * Lemma 11: the backward schedule is optimal;
//! * Lemma 12: LCP and the backward optimum never cross without meeting;
//! * Lemma 13: between meetings, both move weakly in the same direction;
//! * Lemma 14: LCP's power-up switching cost never exceeds the optimum's.

use proptest::prelude::*;
use rsdc_core::prelude::*;
use rsdc_offline::backward::{self, crossing_structure};
use rsdc_offline::dp;
use rsdc_online::lcp::Lcp;
use rsdc_online::traits::run;
use rsdc_tests::{close, instance};

fn lcp_schedule(inst: &Instance) -> Schedule {
    let mut lcp = Lcp::new(inst.m(), inst.beta());
    run(&mut lcp, inst)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 11: the backward-greedy schedule is optimal.
    #[test]
    fn backward_is_optimal(inst in instance(1..=8, 0..=16)) {
        let a = backward::solve(&inst);
        let b = dp::solve_cost_only(&inst);
        prop_assert!(close(a.cost, b), "backward {} vs dp {b}", a.cost);
    }

    /// Lemma 12 (no silent crossings): within every maximal interval where
    /// LCP and the backward optimum differ, the sign of the difference is
    /// constant — `crossing_structure` would have split the interval
    /// otherwise, so we just assert the invariant it computes.
    #[test]
    fn lemma12_no_silent_crossings(inst in instance(1..=8, 1..=20)) {
        let x_star = backward::solve(&inst).schedule;
        let x_lcp = lcp_schedule(&inst);
        for (range, above) in crossing_structure(&x_lcp, &x_star) {
            for t in range {
                if above {
                    prop_assert!(x_lcp.0[t] > x_star.0[t]);
                } else {
                    prop_assert!(x_lcp.0[t] < x_star.0[t]);
                }
            }
        }
    }

    /// Lemma 13: while LCP is above the optimum both are non-increasing;
    /// while below, both are non-decreasing.
    #[test]
    fn lemma13_monotone_between_meetings(inst in instance(1..=8, 1..=20)) {
        let x_star = backward::solve(&inst).schedule;
        let x_lcp = lcp_schedule(&inst);
        for (range, above) in crossing_structure(&x_lcp, &x_star) {
            // Interior steps of the interval (t -> t+1 with both inside).
            let ts: Vec<usize> = range.clone().collect();
            for w in ts.windows(2) {
                let (t0, t1) = (w[0], w[1]);
                if above {
                    prop_assert!(
                        x_lcp.0[t1] <= x_lcp.0[t0] && x_star.0[t1] <= x_star.0[t0],
                        "decreasing interval violated at {t0}->{t1}: lcp {:?} opt {:?}",
                        (x_lcp.0[t0], x_lcp.0[t1]),
                        (x_star.0[t0], x_star.0[t1]),
                    );
                } else {
                    prop_assert!(
                        x_lcp.0[t1] >= x_lcp.0[t0] && x_star.0[t1] >= x_star.0[t0],
                        "increasing interval violated at {t0}->{t1}"
                    );
                }
            }
        }
    }

    /// Lemma 14: S^L(LCP) <= S^L(X*) for the Lemma 11 optimum.
    #[test]
    fn lemma14_switching_cost(inst in instance(1..=8, 1..=20)) {
        let x_star = backward::solve(&inst).schedule;
        let x_lcp = lcp_schedule(&inst);
        let s_lcp = switching_cost_up(inst.beta(), &x_lcp.0);
        let s_star = switching_cost_up(inst.beta(), &x_star.0);
        prop_assert!(
            s_lcp <= s_star + 1e-9 * (1.0 + s_star),
            "S(LCP) = {s_lcp} > S(X*) = {s_star}"
        );
    }

    /// LCP sandwiched: with the full-horizon bound trajectories,
    /// x^L_t <= x^LCP_t <= x^U_t for all t (definition + Lemma 6).
    #[test]
    fn lcp_within_bound_trajectories(inst in instance(1..=8, 1..=20)) {
        let (lows, ups) = backward::bound_trajectories(&inst);
        let x_lcp = lcp_schedule(&inst);
        for t in 0..inst.horizon() {
            prop_assert!(lows[t] <= x_lcp.0[t] && x_lcp.0[t] <= ups[t]);
        }
    }
}
