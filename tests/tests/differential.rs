//! Differential fuzzing: every offline solver, both cost conventions, and
//! the online sandwich (OPT <= LCP <= 3 OPT) on a large batch of seeded
//! random instances. Complements the proptest suites with sheer volume and
//! with instance shapes from the workload generator rather than proptest
//! strategies.

use rsdc_core::prelude::*;
use rsdc_offline::{backward, binsearch, dp, graph::Graph};
use rsdc_online::lcp::Lcp;
use rsdc_online::traits::run;
use rsdc_workloads::random::{random_instance, RandomInstanceCfg};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-8 * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn solver_cross_check_bulk() {
    let shapes = [
        RandomInstanceCfg {
            m: 3,
            t_len: 6,
            beta_range: (0.05, 10.0),
            slope_scale: 2.0,
        },
        RandomInstanceCfg {
            m: 9,
            t_len: 15,
            beta_range: (0.5, 4.0),
            slope_scale: 5.0,
        },
        RandomInstanceCfg {
            m: 17,
            t_len: 9,
            beta_range: (0.1, 1.0),
            slope_scale: 0.5,
        },
    ];
    for (si, cfg) in shapes.iter().enumerate() {
        for seed in 0..250u64 {
            let inst = random_instance(cfg, 90_000 + seed + 1000 * si as u64);
            let a = dp::solve(&inst);
            let b = binsearch::solve(&inst);
            let c = backward::solve(&inst);
            assert!(
                close(a.cost, b.cost),
                "shape {si} seed {seed}: dp vs binsearch"
            );
            assert!(
                close(a.cost, c.cost),
                "shape {si} seed {seed}: dp vs backward"
            );
            // All returned schedules must evaluate to their claimed costs.
            for sol in [&a, &b, &c] {
                assert!(close(cost(&inst, &sol.schedule), sol.cost));
                assert!(sol.schedule.is_feasible(&inst));
            }
            // Symmetric-convention cost agrees with eq. 1 for each schedule.
            for sol in [&a, &b, &c] {
                assert!(close(
                    symmetric_cost(&inst, &sol.schedule),
                    cost(&inst, &sol.schedule)
                ));
            }
        }
    }
}

#[test]
fn graph_cross_check_small() {
    let cfg = RandomInstanceCfg {
        m: 5,
        t_len: 7,
        beta_range: (0.2, 3.0),
        slope_scale: 2.0,
    };
    for seed in 0..80u64 {
        let inst = random_instance(&cfg, 95_000 + seed);
        let g = Graph::build(&inst);
        let sp = g.shortest_path();
        let a = dp::solve_cost_only(&inst);
        assert!(
            close(sp.cost, a),
            "seed {seed}: graph {} vs dp {a}",
            sp.cost
        );
    }
}

#[test]
fn online_sandwich_bulk() {
    let cfg = RandomInstanceCfg {
        m: 7,
        t_len: 40,
        beta_range: (0.1, 12.0),
        slope_scale: 3.0,
    };
    for seed in 0..200u64 {
        let inst = random_instance(&cfg, 97_000 + seed);
        let opt = dp::solve_cost_only(&inst);
        let mut lcp = Lcp::new(inst.m(), inst.beta());
        let xs = run(&mut lcp, &inst);
        let c = cost(&inst, &xs);
        assert!(
            c >= opt - 1e-9 * (1.0 + opt) && c <= 3.0 * opt + 1e-9 * (1.0 + opt),
            "seed {seed}: LCP {c} not in [OPT, 3*OPT] = [{opt}, {}]",
            3.0 * opt
        );
    }
}

#[test]
fn bounds_sandwich_optimal_schedules_bulk() {
    // Lemma 6 in bulk: for any optimal schedule, x^L_t <= x*_t <= x^U_t.
    let cfg = RandomInstanceCfg {
        m: 6,
        t_len: 12,
        beta_range: (0.2, 6.0),
        slope_scale: 2.0,
    };
    for seed in 0..150u64 {
        let inst = random_instance(&cfg, 98_000 + seed);
        let opt = dp::solve(&inst);
        let (lows, ups) = backward::bound_trajectories(&inst);
        // Lemma 6 is stated for the bounds at each tau against *some*
        // optimal schedule; the DP one must respect them.
        for t in 0..inst.horizon() {
            assert!(
                lows[t] <= opt.schedule.0[t] && opt.schedule.0[t] <= ups[t],
                "seed {seed} slot {t}: {} not in [{}, {}]",
                opt.schedule.0[t],
                lows[t],
                ups[t]
            );
        }
    }
}
