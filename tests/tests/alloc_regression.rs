//! Allocation-regression pin for the zero-copy binary ingest path.
//!
//! The binary wire hot path is designed to do **zero per-event heap
//! allocations** in steady state: interned tenant ids, slab tenant
//! storage, recycled dispatch and reply buffers, and response frames
//! written into reusable scratch. This test holds that design with a
//! counting global allocator and a differential methodology immune to
//! fixed costs: after warmup (which sizes every buffer to its high-water
//! mark), stream `E` events and then `2E` events through the same
//! connection and require the allocation-count difference to stay under
//! `E / 8` — amortized fixed-rate costs (channel nodes per batch flush,
//! buffer doublings) pass, anything per-event fails.
//!
//! The workload is the steady-state shape: scalar `lcp` tenants stepped
//! by load-only `TAG_STEP_LOAD` frames (costs come from the tenants'
//! cost model, so no per-event cost JSON is parsed), flushed at the
//! protocol's `MAX_STEP_BATCH` boundary.
//!
//! The `#[ignore]`d heavy variant re-runs the pin at `RSDC_HEAVY_CASES`
//! scale for the nightly `--include-ignored` CI job.

use rsdc_engine::binwire::{put_frame, BinSession, BodyWriter, PREAMBLE, TAG_STEP_LOAD};
use rsdc_engine::wire::Session;
use rsdc_engine::{Engine, EngineConfig, PolicySpec, TenantConfig};
use rsdc_tests::heavy_cases;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counts every `alloc`/`realloc` (not bytes — the pin is on allocation
/// *events*) and forwards to the system allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Only one measurement may run at a time — the counter is process-wide.
static MEASURE: Mutex<()> = Mutex::new(());

const TENANTS: usize = 64;

/// `events` load-only step frames (no preamble), tenants round-robin,
/// constant load — the steady-state ingest stream.
fn step_frames(events: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(events * 20);
    let mut payload = Vec::new();
    let ids: Vec<String> = (0..TENANTS).map(|i| format!("t{i}")).collect();
    for k in 0..events {
        BodyWriter::start(&mut payload, TAG_STEP_LOAD)
            .str16(&ids[k % TENANTS])
            .f64(2.0);
        put_frame(&mut out, &payload);
    }
    out
}

/// A warmed binary connection: tenants admitted, preamble exchanged, and
/// one full-size stream already served so every buffer sits at its
/// high-water mark.
fn warmed_connection(warm_events: usize) -> (BinSession, Vec<u8>) {
    let mut cfg = EngineConfig::with_shards(2);
    cfg.metrics = false;
    let engine = Engine::new(cfg);
    for i in 0..TENANTS {
        engine
            .admit(TenantConfig::new(format!("t{i}"), 16, 4.0, PolicySpec::Lcp))
            .expect("admit");
    }
    let mut bin = BinSession::new(Session::new(engine));
    let mut replies = Vec::new();
    bin.feed(&PREAMBLE, &mut replies);
    bin.feed(&step_frames(warm_events), &mut replies);
    assert!(!bin.is_dead(), "warmup stream must be healthy");
    (bin, replies)
}

/// Allocations counted while feeding `stream` into the warmed session.
fn allocations_for(bin: &mut BinSession, replies: &mut Vec<u8>, stream: &[u8]) -> u64 {
    replies.clear(); // keeps capacity — response bytes reuse it
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    bin.feed(stream, replies);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(!bin.is_dead(), "measured stream must be healthy");
    after - before
}

/// The differential pin at a given event scale.
fn run_pin(events: usize) {
    let _guard = MEASURE.lock().unwrap_or_else(|e| e.into_inner());
    let small = step_frames(events);
    let large = step_frames(events * 2);
    let (mut bin, mut replies) = warmed_connection(events * 2);

    // One pre-measurement pass of each size settles any remaining
    // capacity growth (the decoder buffer, the reply sink).
    allocations_for(&mut bin, &mut replies, &small);
    allocations_for(&mut bin, &mut replies, &large);

    let a_small = allocations_for(&mut bin, &mut replies, &small);
    let a_large = allocations_for(&mut bin, &mut replies, &large);
    let delta = a_large.saturating_sub(a_small);
    let slack = (events / 8) as u64;
    assert!(
        delta <= slack,
        "binary ingest allocates per event: {events} extra events cost {delta} \
         allocations (small run {a_small}, large run {a_large}, slack {slack})"
    );
}

/// Steady-state binary ingest performs zero per-event allocations.
#[test]
fn steady_state_binary_ingest_allocates_nothing_per_event() {
    run_pin(4096);
}

/// Nightly-depth pin (`--include-ignored`): same property at
/// `RSDC_HEAVY_CASES`-scaled event counts.
#[test]
#[ignore = "heavy: run via the nightly --include-ignored CI job"]
fn steady_state_binary_ingest_allocates_nothing_per_event_heavy() {
    let scale = heavy_cases(16) as usize;
    run_pin((4096 * scale).min(1 << 20));
}
