//! Serve concurrency differential: the reactor multiplexes connections,
//! but each connection wraps its own engine-backed session — so K
//! interleaved client connections over loopback must be **byte-identical**
//! to K standalone serial sessions fed the same request streams, for both
//! framings at once (JSONL clients against `Session::handle_lines`,
//! binary clients against a one-shot `BinSession` run).
//!
//! The `metrics` op is excluded from generated streams, as in the
//! JSONL↔binary differential: its dump embeds wall-clock histograms.
//!
//! The suite also pins the backpressure contract end to end: a client
//! that requests a multi-megabyte response stream and then stops reading
//! is marked slow, shed after `shed_timeout` with a **typed** error at
//! the next sequence number, and the other K−1 clients complete
//! byte-identically — one stalled consumer cannot wedge the fleet.

use rsdc_engine::binwire::{encode_request_line, BinSession, PREAMBLE};
use rsdc_engine::wire::Session;
use rsdc_engine::{Engine, EngineConfig, ServeConfig, ServeSummary, Server, WireMode};
use rsdc_tests::heavy_cases;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const SHARDS: usize = 2;

fn engine_cfg() -> EngineConfig {
    EngineConfig::with_shards(SHARDS)
}

fn spawn_server(cfg: ServeConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<ServeSummary>) {
    let mut server = Server::bind(cfg, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("reactor"));
    (addr, handle)
}

/// Deterministic splitmix-style generator: the differential must be
/// reproducible, so streams derive from a seed, not an RNG crate.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// One client's request stream: an admit prelude establishing its private
/// tenant universe, then `ops` mixed operations — steps (the hot path),
/// every deterministic control op, skip lines, and deliberate errors, so
/// sequence-number accounting is differentially pinned under concurrency.
fn client_lines(seed: u64, ops: usize) -> Vec<String> {
    let mut mix = Mix(seed.wrapping_mul(0x5851_f42d_4c95_7f2d) + 1);
    let mut lines: Vec<String> = (0..4)
        .map(|i| {
            let policy = if i % 2 == 0 {
                r#""lcp""#.to_string()
            } else {
                format!(r#"{{"HalfStepRounded":{{"seed":{i}}}}}"#)
            };
            format!(r#"{{"op":"admit","id":"t{i}","m":16,"beta":4.0,"policy":{policy}}}"#)
        })
        .collect();
    lines.push(
        r#"{"op":"admit","id":"h0","policy":"hetero:greedy","fleet":{"types":[{"count":3,"beta":1.0,"energy":1.0,"capacity":1.0},{"count":2,"beta":2.5,"energy":1.4,"capacity":2.0}]}}"#
            .to_string(),
    );
    for _ in 0..ops {
        let line = match mix.pick(12) {
            // Weight toward steps: the hot path.
            0..=4 => {
                let i = mix.pick(4);
                let c = mix.pick(17);
                format!(
                    r#"{{"op":"step","id":"t{i}","cost":{{"Abs":{{"slope":1.0,"center":{c}.0}}}}}}"#
                )
            }
            5 => format!(
                r#"{{"op":"step","id":"h0","load":{}}}"#,
                mix.pick(9) as f64 * 0.5 + 0.5
            ),
            6 => format!(r#"{{"op":"snapshot","id":"t{}"}}"#, mix.pick(4)),
            7 => format!(r#"{{"op":"report","id":"t{}"}}"#, mix.pick(4)),
            8 => match mix.pick(3) {
                0 => r#"{"op":"report"}"#.to_string(),
                1 => r#"{"op":"stats"}"#.to_string(),
                _ => r#"{"op":"wal_stats"}"#.to_string(),
            },
            9 => format!(
                r#"{{"op":"rebalance","shards":{},"vnodes":8}}"#,
                mix.pick(3) + 1
            ),
            10 => match mix.pick(3) {
                0 => String::new(),
                1 => "   ".to_string(),
                _ => "# interleaved comment".to_string(),
            },
            _ => match mix.pick(4) {
                0 => r#"{"op":"step","id":"ghost","load":1.0}"#.to_string(),
                1 => r#"{"op":"step","id":"t0","load":-1}"#.to_string(),
                2 => r#"{"op":"warp"}"#.to_string(),
                _ => r#"{"op":"#.to_string(),
            },
        };
        lines.push(line);
    }
    lines
}

/// The exact bytes a serial JSONL session writes for `lines`.
fn serial_jsonl(lines: &[String]) -> Vec<u8> {
    let mut session = Session::new(Engine::new(engine_cfg()));
    let mut out = Vec::new();
    for reply in session.handle_lines(lines.iter().map(|s| s.as_str())) {
        out.extend_from_slice(reply.as_bytes());
        out.push(b'\n');
    }
    out
}

/// Transcode a JSONL request stream into one binary connection stream.
fn transcode(lines: &[String]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&PREAMBLE);
    let mut payload = Vec::new();
    for line in lines {
        encode_request_line(line, &mut payload, &mut out);
    }
    out
}

/// The exact bytes a serial binary session writes for `stream`.
fn serial_binary(stream: &[u8]) -> Vec<u8> {
    let mut bin = BinSession::new(Session::new(Engine::new(engine_cfg())));
    let mut out = Vec::new();
    bin.feed(stream, &mut out);
    bin.finish(&mut out);
    out
}

/// Run one client: write `request` in deterministic ragged chunks (with
/// yields, to force interleaving at the reactor), half-close, read the
/// full response stream to EOF.
fn run_client(addr: std::net::SocketAddr, request: Vec<u8>, seed: u64) -> Vec<u8> {
    let mut mix = Mix(seed ^ 0xc0ff_ee00);
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut at = 0usize;
    while at < request.len() {
        let n = (mix.pick(96) as usize + 1).min(request.len() - at);
        stream.write_all(&request[at..at + n]).expect("send chunk");
        at += n;
        if mix.pick(4) == 0 {
            std::thread::sleep(Duration::from_millis(mix.pick(3)));
        } else {
            std::thread::yield_now();
        }
    }
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut got = Vec::new();
    stream.read_to_end(&mut got).expect("read to EOF");
    got
}

/// K interleaved connections, alternating JSONL and binary framing, each
/// byte-identical to its standalone serial twin.
fn differential(clients: usize, ops: usize) {
    let cfg = ServeConfig {
        engine: engine_cfg(),
        wire: WireMode::Auto,
        max_conns: clients,
        max_accepts: Some(clients as u64),
        ..ServeConfig::default()
    };
    let (addr, server) = spawn_server(cfg);

    let mut want = Vec::new();
    let mut handles = Vec::new();
    for i in 0..clients {
        let lines = client_lines(i as u64 + 1, ops);
        let (request, expect) = if i % 2 == 0 {
            ((lines.join("\n") + "\n").into_bytes(), serial_jsonl(&lines))
        } else {
            let stream = transcode(&lines);
            let expect = serial_binary(&stream);
            (stream, expect)
        };
        want.push(expect);
        handles.push(std::thread::spawn(move || {
            run_client(addr, request, i as u64)
        }));
    }

    for (i, handle) in handles.into_iter().enumerate() {
        let got = handle.join().expect("client thread");
        let framing = if i % 2 == 0 { "jsonl" } else { "binary" };
        assert_eq!(
            got, want[i],
            "client {i} ({framing}) diverged from its serial twin"
        );
    }
    let summary = server.join().expect("server thread");
    assert_eq!(summary.accepted, clients as u64);
    assert_eq!(summary.closed, clients as u64);
    assert_eq!(summary.shed, 0);
}

#[test]
fn interleaved_connections_match_serial_sessions() {
    differential(8, 40);
}

/// Nightly-depth differential (`--include-ignored`): more clients, longer
/// streams, scaled by `RSDC_HEAVY_CASES`.
#[test]
#[ignore = "heavy: run via the nightly --include-ignored CI job"]
fn interleaved_connections_match_serial_sessions_heavy() {
    let clients = (heavy_cases(512) / 32).clamp(8, 32) as usize;
    differential(clients, 120);
}

/// A deliberately stalled consumer: requests a multi-megabyte response
/// stream, never reads while the reactor serves it, and must be shed with
/// a typed error — while the other K−1 clients complete byte-identically.
#[test]
fn slow_client_is_shed_typed_while_the_rest_complete() {
    // The shed window doubles as the drain window, so the stall must
    // outlast `slow-mark + shed_timeout` but resume reading inside
    // `slow-mark + 2 * shed_timeout`; resuming at 1.5× the timeout is
    // safe as long as the slow mark lands within half a timeout of the
    // request burst, which a one-feed multi-MB reply guarantees.
    let shed_timeout = Duration::from_millis(1200);
    let clients = 4usize;
    let cfg = ServeConfig {
        engine: EngineConfig::with_shards(1),
        wire: WireMode::Auto,
        max_conns: clients,
        max_accepts: Some(clients as u64),
        write_buf: 2048,
        shed_timeout,
        ..ServeConfig::default()
    };
    let (addr, server) = spawn_server(cfg.clone());

    // The stalled client's stream: admit a wide tenant universe, then
    // fleet-wide reports — small requests, multi-kilobyte replies, so the
    // response stream dwarfs every buffer in the path.
    let mut amplifier: Vec<String> = (0..64)
        .map(|i| format!(r#"{{"op":"admit","id":"w{i}","m":8,"beta":2.0,"policy":"lcp"}}"#))
        .collect();
    for _ in 0..1500 {
        amplifier.push(r#"{"op":"report"}"#.to_string());
    }
    let stalled_request = amplifier.join("\n") + "\n";

    let stalled = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(stalled_request.as_bytes())
            .expect("send amplifier");
        // Stall: do not read. The reactor fills the socket buffers, marks
        // the connection slow, and sheds it after the timeout.
        std::thread::sleep(shed_timeout + shed_timeout / 2);
        let mut got = Vec::new();
        stream.read_to_end(&mut got).expect("read to EOF");
        got
    });

    // The well-behaved fleet, started while the stalled client hogs its
    // buffers; each must still match its serial twin byte for byte.
    let mut want = Vec::new();
    let mut handles = Vec::new();
    for i in 0..clients - 1 {
        let lines = client_lines(100 + i as u64, 30);
        let (request, expect) = if i % 2 == 0 {
            ((lines.join("\n") + "\n").into_bytes(), {
                let mut session = Session::new(Engine::new(EngineConfig::with_shards(1)));
                let mut out = Vec::new();
                for reply in session.handle_lines(lines.iter().map(|s| s.as_str())) {
                    out.extend_from_slice(reply.as_bytes());
                    out.push(b'\n');
                }
                out
            })
        } else {
            let stream = transcode(&lines);
            let mut bin = BinSession::new(Session::new(Engine::new(EngineConfig::with_shards(1))));
            let mut out = Vec::new();
            bin.feed(&stream, &mut out);
            bin.finish(&mut out);
            (stream, out)
        };
        want.push(expect);
        handles.push(std::thread::spawn(move || {
            run_client(addr, request, 100 + i as u64)
        }));
    }
    for (i, handle) in handles.into_iter().enumerate() {
        let got = handle.join().expect("client thread");
        assert_eq!(got, want[i], "well-behaved client {i} diverged");
    }

    let got = stalled.join().expect("stalled client thread");
    let text = String::from_utf8_lossy(&got);
    let last = text.lines().last().unwrap_or_default();
    assert!(
        last.contains(r#""op":"error""#)
            && last.contains("connection shed: outbound queue held over 2048 bytes"),
        "typed slow-consumer shed error expected as the final line, got {last:?}"
    );
    // The shed error carries the *next* sequence number. How many report
    // lines the reactor consumed before the slow mark depends on kernel
    // buffer sizes, but every admit (lines 1..=64) certainly landed first.
    let seq: usize = last
        .split(r#""line":"#)
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.trim().parse().ok())
        .unwrap_or_else(|| panic!("shed error missing a sequence number: {last:?}"));
    assert!(
        seq > 64,
        "shed sequence {seq} should follow the admit prelude"
    );

    let summary = server.join().expect("server thread");
    assert_eq!(summary.accepted, clients as u64);
    assert_eq!(
        (summary.closed, summary.shed),
        ((clients - 1) as u64, 1),
        "exactly the stalled client is shed"
    );
}
