//! Property tests for the simulator substrate: conservation laws and
//! physical sanity that must hold for every schedule and trace.

use proptest::collection::vec;
use proptest::prelude::*;
use rsdc_sim::{latency_summary, Cluster, ServerConfig};

fn config_strategy() -> impl Strategy<Value = ServerConfig> {
    (
        0.1f64..2.0, // idle
        0.0f64..2.0, // peak delta
        0.0f64..0.2, // sleep
        0u32..3,     // wake slots
        0.0f64..5.0, // wake energy
    )
        .prop_map(
            |(idle, delta, sleep, wake_slots, wake_energy)| ServerConfig {
                power_idle: idle,
                power_peak: idle + delta,
                power_sleep: sleep,
                wake_slots,
                wake_energy,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// served + dropped == offered load, every slot.
    #[test]
    fn load_conservation(
        cfg in config_strategy(),
        targets in vec(0u32..6, 1..30),
        loads in vec(0.0f64..8.0, 1..30),
    ) {
        let n = targets.len().min(loads.len());
        let mut cluster = Cluster::new(5, cfg);
        let metrics = cluster.run(&targets[..n], &loads[..n]);
        for r in metrics.records() {
            prop_assert!((r.served + r.dropped - r.load).abs() < 1e-9);
            prop_assert!(r.served <= r.serving as f64 + 1e-9, "capacity respected");
            prop_assert!((0.0..=1.0 + 1e-9).contains(&r.utilisation));
        }
    }

    /// Committed servers always equal the clamped target after the step,
    /// and serving <= committed.
    #[test]
    fn commitment_tracks_target(
        cfg in config_strategy(),
        targets in vec(0u32..9, 1..30),
    ) {
        let mut cluster = Cluster::new(6, cfg);
        for &t in &targets {
            let r = cluster.step(t, 1.0);
            prop_assert_eq!(r.committed, t.min(6));
            prop_assert!(r.serving <= r.committed);
        }
    }

    /// Energy is bounded below by the all-sleep floor and above by
    /// peak-power-everywhere plus wake energies.
    #[test]
    fn energy_bounds(
        cfg in config_strategy(),
        targets in vec(0u32..6, 1..25),
        loads in vec(0.0f64..6.0, 1..25),
    ) {
        let n = targets.len().min(loads.len());
        let m = 5u32;
        let mut cluster = Cluster::new(m, cfg);
        let metrics = cluster.run(&targets[..n], &loads[..n]);
        let e = metrics.total_energy();
        let floor = cfg.power_sleep * m as f64 * n as f64;
        let ceil = (cfg.power_peak * m as f64 + cfg.wake_energy * m as f64) * n as f64;
        prop_assert!(e >= floor - 1e-9, "energy {e} below sleep floor {floor}");
        prop_assert!(e <= ceil + 1e-9, "energy {e} above ceiling {ceil}");
    }

    /// Wake events never exceed the requested increases.
    #[test]
    fn wake_accounting(
        cfg in config_strategy(),
        targets in vec(0u32..6, 1..25),
    ) {
        let mut cluster = Cluster::new(5, cfg);
        let mut prev = 0u32;
        let mut requested_ups = 0u64;
        let mut woken = 0u64;
        for &t in &targets {
            let t_clamped = t.min(5);
            requested_ups += t_clamped.saturating_sub(prev) as u64;
            let r = cluster.step(t, 0.0);
            woken += r.woken as u64;
            prev = t_clamped;
        }
        prop_assert_eq!(woken, requested_ups);
    }

    /// Latency summary is well-defined: mean <= worst, fraction in [0, 1].
    #[test]
    fn latency_summary_sanity(
        targets in vec(0u32..6, 1..25),
        loads in vec(0.0f64..6.0, 1..25),
    ) {
        let n = targets.len().min(loads.len());
        let mut cluster = Cluster::new(5, ServerConfig { wake_slots: 0, ..Default::default() });
        let metrics = cluster.run(&targets[..n], &loads[..n]);
        let s = latency_summary(&metrics);
        prop_assert!((0.0..=1.0).contains(&s.unstable_load_fraction));
        prop_assert!(s.worst_response >= s.mean_response || s.mean_response == 0.0);
    }
}
