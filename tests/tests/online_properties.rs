//! Property tests for the online algorithms (Sections 3 and 4).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsdc_core::prelude::*;
use rsdc_online::bounds::BoundTracker;
use rsdc_online::fractional::{EvalMode, HalfStep, MemorylessBalance};
use rsdc_online::lcp::Lcp;
use rsdc_online::randomized::{ceil_star, round_schedule, RandomizedOnline};
use rsdc_online::traits::{competitive_ratio, run, run_frac};
use rsdc_tests::instance;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 2 as a property: LCP is never worse than 3x optimal.
    #[test]
    fn lcp_is_three_competitive(inst in instance(1..=8, 0..=30)) {
        let mut lcp = Lcp::new(inst.m(), inst.beta());
        let xs = run(&mut lcp, &inst);
        let (alg, opt, ratio) = competitive_ratio(&inst, &xs);
        prop_assert!(
            ratio <= 3.0 + 1e-9,
            "ratio {ratio} (alg {alg}, opt {opt}) on {inst:?}"
        );
    }

    /// Lemma 6 consequence: LCP's state always lies within [x^L, x^U].
    #[test]
    fn lcp_respects_bounds(inst in instance(1..=8, 1..=20)) {
        let mut lcp = Lcp::new(inst.m(), inst.beta());
        for t in 1..=inst.horizon() {
            let x = rsdc_online::traits::OnlineAlgorithm::step(&mut lcp, inst.cost_fn(t));
            prop_assert!(lcp.tracker().x_low() <= x);
            prop_assert!(x <= lcp.tracker().x_up());
        }
    }

    /// Lemmas 7-9 hold along arbitrary convex sequences.
    #[test]
    fn bound_tracker_lemmas(inst in instance(1..=10, 1..=20)) {
        let mut tr = BoundTracker::new(inst.m(), inst.beta());
        for t in 1..=inst.horizon() {
            tr.step(inst.cost_fn(t));
            if let Err(e) = tr.check_lemmas() {
                prop_assert!(false, "step {t}: {e}");
            }
            prop_assert!(tr.x_low() <= tr.x_up());
        }
    }

    /// The truncated-optimum interpretation of the bounds: min_x C^L_tau(x)
    /// equals the offline optimum of the prefix instance.
    #[test]
    fn c_low_min_is_prefix_optimum(inst in instance(1..=6, 1..=12)) {
        let mut tr = BoundTracker::new(inst.m(), inst.beta());
        for t in 1..=inst.horizon() {
            tr.step(inst.cost_fn(t));
            let prefix_opt = rsdc_offline::dp::solve_cost_only(&inst.prefix(t));
            let min_cl = (0..=inst.m()).map(|x| tr.c_low(x)).fold(f64::INFINITY, f64::min);
            prop_assert!(
                (prefix_opt - min_cl).abs() <= 1e-8 * (1.0 + prefix_opt.abs()),
                "tau {t}: prefix opt {prefix_opt} vs min C^L {min_cl}"
            );
        }
    }

    /// Rounded states always bracket the fractional state.
    #[test]
    fn rounding_brackets(xs in proptest::collection::vec(0.0f64..6.0, 0..24), seed in 0u64..1000) {
        let frac = FracSchedule(xs.clone());
        let rng = StdRng::seed_from_u64(seed);
        let rounded = round_schedule(rng, &frac);
        for (&x, &v) in xs.iter().zip(&rounded.0) {
            let v = v as f64;
            prop_assert!(
                (v - x.floor()).abs() < 1e-9 || (v - ceil_star(x)).abs() < 1e-9,
                "{v} not bracketing {x}"
            );
        }
    }

    /// The composed randomized online algorithm emits feasible schedules
    /// and (empirically, single run) stays below 3x optimal — its expected
    /// guarantee is 2, single runs may fluctuate above 2 but feasibility
    /// and sanity must always hold.
    #[test]
    fn randomized_online_feasible(inst in instance(1..=6, 0..=20), seed in 0u64..50) {
        let frac = HalfStep::new(inst.m(), inst.beta(), EvalMode::Interpolate);
        let mut algo = RandomizedOnline::new(frac, inst.m(), seed);
        let xs = run(&mut algo, &inst);
        prop_assert!(xs.is_feasible(&inst));
        let c = cost(&inst, &xs);
        prop_assert!(c.is_finite() && c >= 0.0);
    }

    /// Fractional algorithms stay within [0, m] and never increase their
    /// distance to a *stationary* minimizer once reached.
    #[test]
    fn fractional_algorithms_stay_in_range(inst in instance(1..=6, 0..=20)) {
        let mut hs = HalfStep::new(inst.m(), inst.beta(), EvalMode::Interpolate);
        let xs = run_frac(&mut hs, &inst);
        for &x in &xs.0 {
            prop_assert!((0.0..=inst.m() as f64).contains(&x));
        }
        let mut mb = MemorylessBalance::new(inst.m(), inst.beta(), EvalMode::Interpolate);
        let ys = run_frac(&mut mb, &inst);
        for &y in &ys.0 {
            prop_assert!((0.0..=inst.m() as f64).contains(&y));
        }
    }
}

/// Lemma 18 as a statistical test on a fixed pipeline (kept out of
/// proptest: it needs many trials per target).
#[test]
fn rounding_marginals_match_fraction() {
    let xs = FracSchedule(vec![0.25, 0.75, 1.5, 1.25, 0.5]);
    let trials = 20_000;
    let mut ups = vec![0usize; xs.len()];
    for s in 0..trials {
        let rng = StdRng::seed_from_u64(s as u64);
        let r = round_schedule(rng, &xs);
        for (i, (&v, &x)) in r.0.iter().zip(&xs.0).enumerate() {
            if (v as f64 - ceil_star(x)).abs() < 0.5 {
                ups[i] += 1;
            }
        }
    }
    for (i, (&u, &x)) in ups.iter().zip(&xs.0).enumerate() {
        let p = u as f64 / trials as f64;
        assert!(
            (p - x.fract()).abs() < 0.015,
            "slot {i}: Pr[upper] = {p}, want {}",
            x.fract()
        );
    }
}

/// End-to-end Theorem 3 check on a fixed workload: expected cost within
/// noise of the fractional cost, hence within 2x of OPT whenever the
/// fractional schedule is.
#[test]
fn expected_cost_equals_fractional_cost() {
    let costs: Vec<Cost> = (0..30)
        .map(|t| Cost::abs(1.0, 2.0 + 1.8 * ((t as f64) * 0.7).sin()))
        .collect();
    let inst = Instance::new(5, 2.0, costs).unwrap();
    let mut frac_alg = HalfStep::new(5, 2.0, EvalMode::Interpolate);
    let fx = run_frac(&mut frac_alg, &inst);
    let fc = frac_cost(&inst, &fx, FracMode::Interpolate);

    let trials = 20_000;
    let mut acc = 0.0;
    for s in 0..trials {
        let rng = StdRng::seed_from_u64(s as u64);
        let xs = round_schedule(rng, &fx);
        acc += cost(&inst, &xs);
    }
    let expected = acc / trials as f64;
    assert!(
        (expected - fc).abs() < 0.02 * (1.0 + fc),
        "E[C] = {expected} vs fractional {fc}"
    );
}
