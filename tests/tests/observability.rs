//! Observability regression tests — the deterministic-safety bar for the
//! metrics registry and control-plane trace:
//!
//! * metrics and trace live **outside** journaled state: a durable run
//!   writes byte-identical store files with observability on or off, and
//!   crash-recovery with metrics enabled reproduces the exact reports of
//!   a metrics-free uninterrupted run;
//! * the trace ring is ordered (strictly increasing seq, ring-bounded) and
//!   autoscale decisions carry the live LCP bound values;
//! * counters reconcile with what the engine actually did (ingested
//!   events, typed admission refusals, WAL write volume).

use rsdc_core::Cost;
use rsdc_engine::{
    AdmissionConfig, Engine, EngineConfig, PolicySpec, TenantConfig, TopologyConfig,
};
use rsdc_obs::{FieldValue, MetricValue};
use rsdc_store::{Durability, FileStore, FileStoreConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static CASE: AtomicU64 = AtomicU64::new(0);

fn case_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("rsdc-observability")
        .join(format!(
            "{tag}-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_store(dir: &std::path::Path) -> Arc<dyn Durability> {
    Arc::new(FileStore::open(dir, FileStoreConfig { sync_every: 16 }).expect("open store"))
}

fn cfg(shards: usize, metrics: bool) -> EngineConfig {
    let mut cfg = EngineConfig::with_shards(shards);
    cfg.metrics = metrics;
    cfg
}

const TENANTS: usize = 6;
const SLOTS: usize = 24;

fn fleet() -> Vec<TenantConfig> {
    (0..TENANTS)
        .map(|i| {
            let policy = if i % 2 == 0 {
                PolicySpec::Lcp
            } else {
                PolicySpec::HalfStepRounded { seed: i as u64 }
            };
            TenantConfig::new(format!("t{i}"), 12, 4.0, policy)
        })
        .collect()
}

fn slot_batch(slot: usize) -> Vec<(String, Cost)> {
    (0..TENANTS)
        .map(|i| {
            let center = ((slot * 5 + i) % 13) as f64;
            (format!("t{i}"), Cost::abs(1.0, center))
        })
        .collect()
}

fn report_texts(engine: &Engine) -> Vec<String> {
    use serde::Serialize as _;
    engine
        .report_all()
        .expect("report")
        .iter()
        .map(|r| serde_json::to_string(&r.to_value()).expect("json"))
        .collect()
}

/// Every store file under `dir` as `(relative name, bytes)`, sorted.
fn dir_bytes(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("read_dir") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(dir)
                    .expect("prefix")
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, std::fs::read(&path).expect("read")));
            }
        }
    }
    out.sort();
    out
}

/// One durable run: admit, stream `SLOTS` slots with a checkpoint every 7,
/// shut down cleanly (no final checkpoint — leave a WAL tail on disk).
fn durable_run(dir: &std::path::Path, metrics: bool) -> Vec<String> {
    let engine = Engine::with_store(cfg(2, metrics), open_store(dir)).expect("durable engine");
    for t in fleet() {
        engine.admit(t).expect("admit");
    }
    for t in 0..SLOTS {
        engine.step_batch(slot_batch(t)).expect("step");
        if (t + 1) % 7 == 0 {
            engine.checkpoint().expect("checkpoint");
        }
    }
    let reports = report_texts(&engine);
    engine.shutdown();
    reports
}

/// The tentpole invariant: observability state is not journaled state.
/// Two identical durable runs — one with the registry + trace enabled,
/// one with `--no-metrics` — leave **byte-identical** store directories.
#[test]
fn metrics_flag_never_touches_journaled_state() {
    let dir_on = case_dir("flag-on");
    let dir_off = case_dir("flag-off");
    let reports_on = durable_run(&dir_on, true);
    let reports_off = durable_run(&dir_off, false);
    assert_eq!(reports_on, reports_off, "reports agree");
    let (on, off) = (dir_bytes(&dir_on), dir_bytes(&dir_off));
    let on_names: Vec<&String> = on.iter().map(|(n, _)| n).collect();
    let off_names: Vec<&String> = off.iter().map(|(n, _)| n).collect();
    assert_eq!(on_names, off_names, "same store files");
    for ((name, a), (_, b)) in on.iter().zip(off.iter()) {
        assert_eq!(a, b, "store file {name} must be byte-identical");
    }
    let _ = std::fs::remove_dir_all(&dir_on);
    let _ = std::fs::remove_dir_all(&dir_off);
}

/// Crash-recovery with metrics enabled end to end reproduces the reports
/// of an uninterrupted metrics-**off** run: instrumentation (including the
/// `InstrumentedStore` seam recovery reads through) never perturbs replay.
#[test]
fn recovery_with_metrics_enabled_is_byte_identical() {
    // Metrics-off uninterrupted reference.
    let want = {
        let engine = Engine::new(cfg(2, false));
        for t in fleet() {
            engine.admit(t).expect("admit");
        }
        for t in 0..SLOTS {
            engine.step_batch(slot_batch(t)).expect("step");
        }
        let reports = report_texts(&engine);
        engine.shutdown();
        reports
    };
    for kill_at in [3usize, 10, 20] {
        let dir = case_dir("kill");
        let durable = Engine::with_store(cfg(2, true), open_store(&dir)).expect("durable engine");
        for t in fleet() {
            durable.admit(t).expect("admit");
        }
        for t in 0..kill_at {
            durable.step_batch(slot_batch(t)).expect("step");
            if (t + 1) % 4 == 0 {
                durable.checkpoint().expect("checkpoint");
            }
        }
        drop(durable); // crash

        let (recovered, report) = Engine::recover(cfg(2, true), open_store(&dir)).expect("recover");
        assert_eq!(report.replay_errors, 0);
        for t in kill_at..SLOTS {
            recovered.step_batch(slot_batch(t)).expect("step");
        }
        assert_eq!(
            report_texts(&recovered),
            want,
            "kill at {kill_at}: metrics-on recovery must match the metrics-off reference"
        );
        // Replay work surfaced in the recovery counters.
        let replayed: u64 = recovered
            .obs()
            .registry()
            .snapshot()
            .iter()
            .filter(|m| m.id.name == "engine_recovery_records_replayed")
            .filter_map(|m| match &m.value {
                MetricValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum();
        assert_eq!(replayed, report.records_replayed as u64);
        recovered.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Trace ordering + content: seqs strictly increase, the ring stays
/// bounded, and autoscale decisions carry the live LCP bound values the
/// policy acted on.
#[test]
fn trace_orders_autoscale_decisions_with_lcp_bounds() {
    let mut cfg = cfg(1, true);
    cfg.trace_capacity = 64;
    let mut engine = Engine::new(cfg);
    for t in fleet() {
        engine.admit(t).expect("admit");
    }
    let mut topo = TopologyConfig::new(1, 4);
    topo.switch_cost = 0.5; // cheap switches: make the policy actually move
    engine.set_autoscale(Some(topo)).expect("autoscale");
    // Load swing big enough to push the LCP bounds around; applying the
    // pending decision after each batch is the wire session's loop.
    for t in 0..40usize {
        let load = if (t / 10) % 2 == 0 { 12.0 } else { 0.5 };
        let batch: Vec<(String, Cost, Option<f64>)> = (0..TENANTS)
            .map(|i| (format!("t{i}"), Cost::abs(1.0, 6.0), Some(load)))
            .collect();
        engine.step_batch_loads(batch).expect("step");
        engine.maybe_autoscale().expect("autoscale step");
    }
    let events = engine.obs().trace().events(None);
    assert!(
        !events.is_empty(),
        "control-plane activity must leave a trace"
    );
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "seq strictly increases");
        assert!(pair[0].tick <= pair[1].tick, "ticks never run backwards");
    }
    let decisions: Vec<_> = events
        .iter()
        .filter(|e| e.kind == "autoscale_decision")
        .collect();
    assert!(
        !decisions.is_empty(),
        "the swinging load must trigger decisions"
    );
    for d in &decisions {
        let field = |name: &str| {
            d.fields
                .iter()
                .find(|(k, _)| *k == name)
                .unwrap_or_else(|| panic!("autoscale_decision missing {name}"))
                .1
                .clone()
        };
        let as_u64 = |v: FieldValue| match v {
            FieldValue::U64(x) => x,
            other => panic!("expected U64, got {other:?}"),
        };
        let (lower, upper) = (as_u64(field("lower")), as_u64(field("upper")));
        assert!(lower <= upper, "LCP bounds ordered: {lower} <= {upper}");
        let target = as_u64(field("target"));
        assert!((1..=4).contains(&(target as usize)), "target within lo:hi");
        assert!(matches!(field("switch_cost_accrued"), FieldValue::F64(_)));
    }
    // Rebalances that the decisions induced are traced with begin/commit.
    let begins = events
        .iter()
        .filter(|e| e.kind == "rebalance_begin")
        .count();
    let commits = events
        .iter()
        .filter(|e| e.kind == "rebalance_commit")
        .count();
    assert!(
        begins > 0 && commits > 0,
        "decisions induce traced rebalances"
    );
    assert!(
        engine.obs().trace().recorded() >= events.len() as u64,
        "recorded() counts everything ever traced"
    );
    assert!(events.len() <= 64, "ring stays within capacity");
    engine.shutdown();
}

/// Counters reconcile with engine behaviour: ingested events, typed
/// admission refusals, and WAL volume all reflect what actually happened.
#[test]
fn counters_reconcile_with_engine_activity() {
    let dir = case_dir("counters");
    let engine = Engine::with_store(cfg(1, true), open_store(&dir)).expect("durable engine");
    engine
        .set_limits(AdmissionConfig {
            max_tenants: 2,
            rate: 1.0,
            burst: 2.0,
        })
        .expect("limits");
    engine
        .admit(TenantConfig::new("a", 12, 4.0, PolicySpec::Lcp))
        .expect("admit a");
    engine
        .admit(TenantConfig::new("b", 12, 4.0, PolicySpec::Lcp))
        .expect("admit b");
    let rejected = engine.admit(TenantConfig::new("c", 12, 4.0, PolicySpec::Lcp));
    assert!(rejected.is_err(), "cap refuses the third admit");
    // Two slots: within burst, then over it (throttled drops).
    let mut ingested_want = 0u64;
    for _ in 0..2 {
        let outcomes = engine
            .step_batch(vec![
                ("a".into(), Cost::abs(1.0, 3.0)),
                ("a".into(), Cost::abs(1.0, 4.0)),
                ("b".into(), Cost::abs(1.0, 5.0)),
            ])
            .expect("step");
        ingested_want += outcomes.iter().filter(|o| o.error.is_none()).count() as u64;
    }
    let get = |name: &str| -> u64 {
        engine
            .obs()
            .registry()
            .snapshot()
            .iter()
            .filter(|m| m.id.name == name)
            .map(|m| match &m.value {
                MetricValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    };
    assert_eq!(get("engine_events_ingested"), ingested_want);
    assert!(
        get("engine_admission_refused") >= 1,
        "the cap refusal counted"
    );
    let (records, bytes, _) = engine.obs().wal_volume();
    assert!(records > 0 && bytes > 0, "journaled writes counted");
    assert_eq!(get("wal_appended_records"), records);
    assert_eq!(get("wal_appended_bytes"), bytes);
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--no-metrics`: the registry snapshot is empty and the trace ring
/// records nothing, but always-on WAL volume accounting still works.
#[test]
fn disabled_observability_is_empty_but_wal_volume_counts() {
    let dir = case_dir("disabled");
    let mut engine = Engine::with_store(cfg(1, false), open_store(&dir)).expect("durable engine");
    for t in fleet() {
        engine.admit(t).expect("admit");
    }
    for t in 0..4 {
        engine.step_batch(slot_batch(t)).expect("step");
    }
    engine.rebalance(2, None).expect("rebalance");
    assert!(engine.obs().registry().snapshot().is_empty(), "no metrics");
    assert_eq!(engine.obs().trace().recorded(), 0, "no trace events");
    let (records, bytes, _) = engine.obs().wal_volume();
    assert!(records > 0 && bytes > 0, "volume survives --no-metrics");
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
