//! Wire-parser robustness: fuzz-style proptests feeding truncated,
//! byte-flipped, spliced and otherwise mutated JSONL lines into a live
//! `wire::Session`, asserting the protocol's failure contract:
//!
//! * the session **never panics** and never stops serving;
//! * every response is valid JSON with a string `op`;
//! * every failure is a typed `error` response carrying the correct
//!   **1-based line number** of the offending input line (blank lines and
//!   comments included in the count);
//! * the session stays fully usable after arbitrary garbage.
//!
//! The binary corpus (second half of the file) holds `BinSession` to the
//! same bar over mutated frame streams: truncated frames, corrupt CRCs,
//! oversize length prefixes, mid-frame kills, and wrong-magic /
//! wrong-version handshakes all yield typed sequence-numbered error
//! frames, never a panic or a hang — and the response stream always
//! decodes cleanly, whatever the request stream looked like.
//!
//! The heavy `#[ignore]`d variants run the same properties at raised case
//! counts for the nightly `--include-ignored` CI job.

use proptest::collection::vec;
use proptest::prelude::*;
use rsdc_engine::binwire::{
    encode_request_line, BinSession, BodyReader, FrameDecoder, MAX_FRAME_LEN, PREAMBLE,
    TAG_RESP_ERROR,
};
use rsdc_engine::wire::{parse_record, Session};
use rsdc_engine::{Engine, EngineConfig};
use rsdc_tests::heavy_cases;

/// A corpus of valid request lines covering every op (ASCII only, so
/// byte-indexed mutations never split a UTF-8 sequence).
fn base_lines() -> Vec<&'static str> {
    vec![
        r#"{"op":"admit","id":"web","m":8,"beta":6.0,"policy":"lcp","track_opt":true}"#,
        r#"{"op":"admit","id":"api","m":8,"beta":6.0,"policy":{"FlcpRounded":{"k":4,"seed":7}}}"#,
        r#"{"op":"admit","id":"h1","policy":"hetero:frontier","fleet":{"types":[{"count":3,"beta":1.0,"energy":1.0,"capacity":1.0},{"count":2,"beta":2.5,"energy":1.4,"capacity":2.0}]}}"#,
        r#"{"op":"step","id":"web","load":3.2}"#,
        r#"{"op":"step","id":"api","cost":{"Abs":{"slope":1.0,"center":3.0}}}"#,
        r#"{"op":"step","id":"h1","load":2.5}"#,
        r#"{"op":"finish","id":"web"}"#,
        r#"{"op":"snapshot","id":"api"}"#,
        r#"{"op":"report","id":"web"}"#,
        r#"{"op":"report"}"#,
        r#"{"op":"stats"}"#,
        r#"{"op":"rebalance","shards":2,"vnodes":16}"#,
        r#"{"op":"limits","max_tenants":10,"rate":5.0,"burst":20.0}"#,
        r#"{"op":"energy","model":"linear:100:250","capacity":4.0,"price":"step:24:1,3.5"}"#,
        r#"{"op":"energy"}"#,
        r#"{"op":"autoscale","min":1,"max":8,"switch_cost":32.0}"#,
        r#"{"op":"autoscale","min":1,"max":8,"switch_cost":32.0,"priced":true}"#,
        r#"{"op":"autoscale"}"#,
        r#"{"op":"autoscale","off":true}"#,
        r#"{"op":"checkpoint"}"#,
        r#"{"op":"wal_stats"}"#,
    ]
}

/// Apply one mutation. `kind` selects truncate / byte-flip / insert /
/// splice-delete / duplicate-chunk; `at` and `byte` parameterize it.
/// Lossy UTF-8 repair keeps the result feedable as `&str` (the session
/// reads text lines; invalid UTF-8 cannot reach it by construction).
fn mutate(line: &str, kind: u8, at: usize, byte: u8) -> String {
    let mut b = line.as_bytes().to_vec();
    if b.is_empty() {
        return String::new();
    }
    let at = at % b.len();
    match kind % 5 {
        0 => b.truncate(at),
        1 => b[at] ^= byte | 1,
        2 => b.insert(at, byte),
        3 => {
            let end = (at + 1 + (byte as usize % 5)).min(b.len());
            b.drain(at..end);
        }
        _ => {
            let chunk: Vec<u8> = b[at..(at + 8).min(b.len())].to_vec();
            b.extend(chunk);
        }
    }
    String::from_utf8_lossy(&b).into_owned()
}

/// Feed `lines` to a fresh session and enforce the failure contract.
/// Returns the number of error responses.
fn check_contract(lines: &[String]) -> usize {
    let mut session = Session::new(Engine::new(EngineConfig::with_shards(1)));
    let out = session.handle_lines(lines.iter().map(|s| s.as_str()));
    let mut errors = 0;
    for response in &out {
        let v: serde::Value = serde_json::from_str(response)
            .unwrap_or_else(|e| panic!("response is not JSON ({e}): {response}"));
        let op = v["op"].as_str().unwrap_or_else(|| {
            panic!("response lacks a string op: {response}");
        });
        if op == "error" {
            errors += 1;
            let line = v["line"]
                .as_u64()
                .unwrap_or_else(|| panic!("error without a line number: {response}"));
            assert!(
                line >= 1 && line <= lines.len() as u64,
                "error line {line} outside 1..={}: {response}",
                lines.len()
            );
            assert!(
                !v["message"].as_str().unwrap_or("").is_empty(),
                "error without a message: {response}"
            );
        }
    }
    // The session survived: it still serves a well-formed report.
    let after = session.handle_lines([r#"{"op":"report"}"#, r#"{"op":"stats"}"#]);
    for response in &after {
        let v: serde::Value = serde_json::from_str(response).expect("post-garbage response");
        assert!(v["op"].as_str().is_some());
    }
    errors
}

/// Build the fuzz input: a valid prelude (so some tenants exist), then
/// the mutated picks interleaved with untouched lines.
fn fuzz_lines(picks: &[(usize, u8, usize, u8)]) -> Vec<String> {
    let base = base_lines();
    let mut lines: Vec<String> = vec![
        base[0].to_string(), // admit web
        base[2].to_string(), // admit h1
    ];
    for &(index, kind, at, byte) in picks {
        let template = base[index % base.len()];
        // kind 5..=7 feeds the template untouched, mixing valid traffic in.
        if kind >= 5 {
            lines.push(template.to_string());
        } else {
            lines.push(mutate(template, kind, at, byte));
        }
    }
    lines
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary mutated JSONL streams: typed line-numbered errors, no
    /// panics, session stays alive.
    #[test]
    fn mutated_jsonl_streams_fail_typed_and_numbered(
        picks in vec((0usize..64, 0u8..8, 0usize..512, 0u8..=255u8), 1..24),
    ) {
        check_contract(&fuzz_lines(&picks));
    }

    /// A single garbage line after `pad` blank/comment lines produces an
    /// error naming exactly line `pad + 1` — the numbering includes the
    /// skipped lines.
    #[test]
    fn error_line_numbers_point_at_the_offending_line(
        pad in 0usize..40,
        kind in 0u8..5,
        at in 0usize..512,
        byte in 0u8..=255u8,
        index in 0usize..64,
    ) {
        let template = base_lines()[index % base_lines().len()];
        let garbage = mutate(template, kind, at, byte);
        // Only assert when the mutation actually broke the line.
        let broken = parse_record(&garbage).is_err()
            && !garbage.trim().is_empty()
            && !garbage.trim_start().starts_with('#');
        if broken {
            let mut lines: Vec<String> = (0..pad)
                .map(|i| if i % 2 == 0 { String::new() } else { "# padding".to_string() })
                .collect();
            lines.push(garbage.clone());
            let mut session = Session::new(Engine::new(EngineConfig::with_shards(1)));
            let out = session.handle_lines(lines.iter().map(|s| s.as_str()));
            prop_assert!(!out.is_empty(), "a broken line must produce a response");
            let v: serde::Value = serde_json::from_str(&out[0]).unwrap();
            prop_assert_eq!(v["op"].as_str().unwrap(), "error");
            prop_assert_eq!(v["line"].as_u64().unwrap(), pad as u64 + 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(heavy_cases(2048)))]

    /// Nightly-depth fuzzing (`--include-ignored`).
    #[test]
    #[ignore = "heavy: run via the nightly --include-ignored CI job"]
    fn mutated_jsonl_streams_fail_typed_and_numbered_heavy(
        picks in vec((0usize..64, 0u8..8, 0usize..512, 0u8..=255u8), 1..24),
    ) {
        check_contract(&fuzz_lines(&picks));
    }
}

/// Exhaustive prefix sweep: every truncation of every valid request line
/// parses to `Ok` or a typed error — never a panic. (ASCII corpus, so
/// every byte index is a char boundary.)
#[test]
fn every_prefix_of_every_op_parses_or_errors() {
    for line in base_lines() {
        for cut in 0..=line.len() {
            let _ = parse_record(&line[..cut]);
        }
    }
}

// ---------------------------------------------------------------------
// Binary framing corpus.
// ---------------------------------------------------------------------

/// A valid binary connection stream: preamble + every base line
/// transcoded to its frame.
fn base_stream() -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&PREAMBLE);
    let mut payload = Vec::new();
    for line in base_lines() {
        encode_request_line(line, &mut payload, &mut out);
    }
    out
}

/// Mutate the frame region of a valid stream (the preamble stays intact
/// so the handshake succeeds and the mutation exercises frame handling).
/// `kind` selects truncate / byte-flip (CRC corruption) / insert /
/// splice-delete / length-prefix inflation (oversize).
fn mutate_stream(stream: &[u8], kind: u8, at: usize, byte: u8) -> Vec<u8> {
    let mut b = stream.to_vec();
    let lo = PREAMBLE.len();
    if b.len() <= lo {
        return b;
    }
    let at = lo + at % (b.len() - lo);
    match kind % 5 {
        0 => b.truncate(at),
        1 => b[at] ^= byte | 1,
        2 => b.insert(at, byte),
        3 => {
            let end = (at + 1 + (byte as usize % 9)).min(b.len());
            b.drain(at..end);
        }
        _ => {
            // Stamp an oversize little-endian length over 4 bytes — when
            // this lands on a frame header the decoder must refuse it
            // without ever allocating the claimed length.
            let huge = (MAX_FRAME_LEN + 1 + byte as u32).to_le_bytes();
            for (i, v) in huge.iter().enumerate() {
                if at + i < b.len() {
                    b[at + i] = *v;
                }
            }
        }
    }
    b
}

/// Feed a (possibly mutated) binary stream and enforce the binary
/// failure contract; returns the decoded response lines.
fn check_binary_contract(stream: &[u8], chunk: usize) -> Vec<String> {
    let mut bin = BinSession::new(Session::new(Engine::new(EngineConfig::with_shards(1))));
    let mut reply = Vec::new();
    for part in stream.chunks(chunk.max(1)) {
        bin.feed(part, &mut reply);
    }
    bin.finish(&mut reply);
    // Feeding a finished (dead) connection is a no-op, never a panic.
    let before = reply.len();
    bin.feed(b"garbage after close", &mut reply);
    assert_eq!(reply.len(), before, "a dead connection stays silent");

    // Whatever the request stream looked like, the response stream is
    // well-framed and every line is JSON with a string op; errors carry
    // their 1-based sequence number.
    let lines = rsdc_engine::binwire::decode_response(&reply)
        .unwrap_or_else(|e| panic!("response stream must decode: {e}"));
    for line in &lines {
        let v: serde::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("response is not JSON ({e}): {line}"));
        let op = v["op"]
            .as_str()
            .unwrap_or_else(|| panic!("response lacks a string op: {line}"));
        if op == "error" {
            let seq = v["line"]
                .as_u64()
                .unwrap_or_else(|| panic!("error without a sequence number: {line}"));
            assert!(seq >= 1, "post-handshake errors carry seq >= 1: {line}");
            assert!(
                !v["message"].as_str().unwrap_or("").is_empty(),
                "error without a message: {line}"
            );
        }
    }
    lines
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary mutated frame streams at arbitrary feed chunkings:
    /// typed seq-numbered error frames, a decodable response stream, no
    /// panics, no hangs.
    #[test]
    fn mutated_binary_streams_fail_typed_and_numbered(
        muts in vec((0u8..5, 0usize..4096, 0u8..=255u8), 1..6),
        chunk in 1usize..200,
    ) {
        let mut stream = base_stream();
        for &(kind, at, byte) in &muts {
            stream = mutate_stream(&stream, kind, at, byte);
        }
        check_binary_contract(&stream, chunk);
    }

    /// Mid-frame kills: every byte-truncation of a valid stream serves
    /// the delivered frame prefix and reports the torn tail (if any) as
    /// one truncation error at the next sequence number.
    #[test]
    fn mid_frame_kills_report_the_torn_tail(cut_frac in 0.0f64..1.0, chunk in 1usize..64) {
        let stream = base_stream();
        let span = stream.len() - PREAMBLE.len();
        let cut = PREAMBLE.len() + (cut_frac * span as f64) as usize;
        let lines = check_binary_contract(&stream[..cut], chunk);
        // Count the frames actually delivered.
        let mut dec = FrameDecoder::new();
        dec.extend(&stream[PREAMBLE.len()..cut]);
        let mut delivered = 0u64;
        while let Ok(Some(_)) = dec.next_frame() {
            delivered += 1;
        }
        let torn = dec.finish().is_err();
        if torn {
            let last = lines.last().expect("a torn tail must be reported");
            let v: serde::Value = serde_json::from_str(last).unwrap();
            prop_assert_eq!(v["op"].as_str().unwrap(), "error");
            prop_assert_eq!(v["line"].as_u64().unwrap(), delivered + 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(heavy_cases(2048)))]

    /// Nightly-depth binary fuzzing (`--include-ignored`).
    #[test]
    #[ignore = "heavy: run via the nightly --include-ignored CI job"]
    fn mutated_binary_streams_fail_typed_and_numbered_heavy(
        muts in vec((0u8..5, 0usize..4096, 0u8..=255u8), 1..8),
        chunk in 1usize..200,
    ) {
        let mut stream = base_stream();
        for &(kind, at, byte) in &muts {
            stream = mutate_stream(&stream, kind, at, byte);
        }
        check_binary_contract(&stream, chunk);
    }
}

/// A wrong-version or wrong-magic handshake is refused with one typed
/// error frame at sequence 0 — emitted without a preamble echo, since no
/// protocol was ever agreed — and the connection is dead from then on.
#[test]
fn wrong_handshakes_are_refused_with_a_seq_zero_error() {
    for (mutate_at, expect) in [
        (5usize, "unsupported protocol version"),
        (0, "bad preamble"),
    ] {
        let mut wire = base_stream();
        wire[mutate_at] ^= 0x5A;
        let mut bin = BinSession::new(Session::new(Engine::new(EngineConfig::with_shards(1))));
        let mut reply = Vec::new();
        bin.feed(&wire, &mut reply);
        bin.finish(&mut reply);
        assert!(bin.is_dead());
        let mut dec = FrameDecoder::new();
        dec.extend(&reply);
        let frame = dec
            .next_frame()
            .expect("well-framed")
            .expect("one error frame");
        assert_eq!(frame.tag, TAG_RESP_ERROR);
        let mut r = BodyReader::new(frame.body);
        assert_eq!(r.u64(), Some(0), "handshake errors are sequence 0");
        assert_eq!(r.u8(), Some(0), "no tenant id on a handshake error");
        let message = String::from_utf8(r.rest().to_vec()).expect("utf-8 message");
        assert!(message.contains(expect), "{message}");
        assert!(
            dec.next_frame().expect("decode").is_none(),
            "exactly one frame"
        );
        assert!(dec.finish().is_ok());
    }
}

/// An oversize length prefix is fatal at its own sequence number — and
/// the decoder refuses it from the header alone, without buffering or
/// allocating the claimed 16 MiB+.
#[test]
fn oversize_length_prefixes_are_refused_from_the_header() {
    let mut wire = PREAMBLE.to_vec();
    let mut payload = Vec::new();
    encode_request_line(r#"{"op":"stats"}"#, &mut payload, &mut wire);
    wire.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    wire.extend_from_slice(&[0u8; 16]); // header tail + a little garbage
    let lines = check_binary_contract(&wire, 7);
    // stats answered, then the oversize frame killed the stream at seq 2.
    assert!(lines[0].contains("\"op\":\"stats\""), "{}", lines[0]);
    let v: serde::Value = serde_json::from_str(&lines[1]).unwrap();
    assert_eq!(v["op"].as_str().unwrap(), "error");
    assert_eq!(v["line"].as_u64().unwrap(), 2);
    assert!(
        v["message"].as_str().unwrap().contains("exceeds cap"),
        "{}",
        lines[1]
    );
}

/// The step-shape guards swept from `unwrap`/`expect` to typed errors:
/// a hetero tenant stepped with a scalar cost, and a step carrying
/// neither cost nor load, both answer typed line-numbered errors and
/// leave the session serving.
#[test]
fn step_shape_mismatches_error_typed_and_numbered() {
    let mut session = Session::new(Engine::new(EngineConfig::with_shards(1)));
    let out = session.handle_lines([
        base_lines()[2], // admit h1 (hetero)
        r#"{"op":"step","id":"h1","cost":{"Abs":{"slope":1.0,"center":3.0}}}"#,
        r#"{"op":"step","id":"h1"}"#,
        r#"{"op":"report","id":"h1"}"#,
    ]);
    assert_eq!(out.len(), 4, "{out:?}");
    for (reply, line) in [(&out[1], 2), (&out[2], 3)] {
        let v: serde::Value = serde_json::from_str(reply).unwrap();
        assert_eq!(v["op"], "error", "{reply}");
        assert_eq!(v["line"].as_u64().unwrap(), line, "{reply}");
    }
    assert!(out[3].contains("\"op\":\"report\""), "session stays live");
}

/// Invalid UTF-8 cannot reach the batch path (it reads whole files as
/// `String`), but a socket connection can deliver any bytes: the serving
/// layer's `LineSession` answers a typed, line-numbered error and keeps
/// serving the connection.
#[test]
fn line_session_rejects_invalid_utf8_typed_and_numbered() {
    use rsdc_engine::wire::LineSession;
    let mut ls = LineSession::new(Session::new(Engine::new(EngineConfig::with_shards(1))));
    let mut out = Vec::new();
    ls.feed(
        b"{\"op\":\"stats\"}\n\xff\xfe{\"op\":\"stats\"}\n{\"op\":\"stats\"}\n",
        &mut out,
    );
    ls.finish(&mut out);
    let text = String::from_utf8(out).expect("replies are valid UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "{lines:?}");
    let v: serde::Value = serde_json::from_str(lines[1]).unwrap();
    assert_eq!(v["op"], "error", "{}", lines[1]);
    assert_eq!(v["line"].as_u64().unwrap(), 2);
    assert!(v["message"].as_str().unwrap().contains("not valid UTF-8"));
    for line in [lines[0], lines[2]] {
        assert!(
            line.contains("\"op\":\"stats\""),
            "stats still served: {line}"
        );
    }
}

/// A peer streaming bytes with no `\n` in sight cannot grow the line
/// framing's partial buffer without bound: one byte over `MAX_LINE_LEN`
/// the session answers a typed, line-numbered error and dies — the
/// JSONL twin of the oversize-length-prefix refusal above — and stays
/// silent (never panics) on bytes fed after death.
#[test]
fn unterminated_line_over_the_cap_kills_the_session_typed() {
    use rsdc_engine::wire::{LineSession, MAX_LINE_LEN};
    let mut ls = LineSession::new(Session::new(Engine::new(EngineConfig::with_shards(1))));
    let mut out = Vec::new();
    ls.feed(b"{\"op\":\"stats\"}\n", &mut out);
    let chunk = vec![b'x'; 1 << 20];
    let mut sent = 0;
    while sent <= MAX_LINE_LEN {
        ls.feed(&chunk, &mut out);
        sent += chunk.len();
    }
    assert!(ls.is_dead(), "overlong line is fatal");
    let text = String::from_utf8(out).expect("replies are valid UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{lines:?}");
    assert!(lines[0].contains("\"op\":\"stats\""), "{}", lines[0]);
    let v: serde::Value = serde_json::from_str(lines[1]).unwrap();
    assert_eq!(v["op"], "error", "{}", lines[1]);
    assert_eq!(v["line"].as_u64().unwrap(), 2, "the overlong line's number");
    assert!(v["message"].as_str().unwrap().contains("exceeds cap"));
    let before = out_len_after_death(&mut ls);
    assert_eq!(before, 0, "a dead connection stays silent");
}

fn out_len_after_death(ls: &mut rsdc_engine::wire::LineSession) -> usize {
    let mut out = Vec::new();
    ls.feed(b"{\"op\":\"stats\"}\n", &mut out);
    ls.finish(&mut out);
    out.len()
}

/// Deep nesting, absurd numbers, NaN-ish spellings, and null injections
/// are rejected as errors, not panics or silent acceptance.
#[test]
fn hostile_corner_case_lines_are_rejected() {
    let hostile: Vec<String> = [
        &format!("{}{}", "[".repeat(4000), "]".repeat(4000)),
        r#"{"op":"step","id":"web","load":1e999}"#,
        r#"{"op":"step","id":"web","load":-1.0}"#,
        r#"{"op":"step","id":"web","load":null}"#,
        r#"{"op":"admit","id":"web","m":99999999999999999999,"beta":1.0,"policy":"lcp"}"#,
        r#"{"op":"admit","id":"web","m":-4,"beta":1.0,"policy":"lcp"}"#,
        r#"{"op":"rebalance","shards":-1}"#,
        r#"{"op":"rebalance","shards":1.5}"#,
        r#"{"op":"limits","rate":"fast"}"#,
        // Step-shape guards swept from unwrap/expect to typed errors.
        r#"{"op":"step","id":"web"}"#,
        r#"{"op":"step","id":"h1","cost":{"Abs":{"slope":1.0,"center":3.0}}}"#,
        // Control-plane knob contracts: partial autoscale/energy configs
        // must be refused, never half-applied.
        r#"{"op":"autoscale","switch_cost":32.0}"#,
        r#"{"op":"autoscale","min":1,"switch_cost":32.0}"#,
        r#"{"op":"autoscale","priced":true}"#,
        r#"{"op":"autoscale","min":1,"max":8,"priced":true}"#,
        r#"{"op":"autoscale","min":8,"max":1}"#,
        r#"{"op":"energy","capacity":4.0}"#,
        r#"{"op":"energy","model":"warp:9"}"#,
        r#"{"op":"energy","model":"linear:100:250","price":"step:0:1"}"#,
        r#"{"op":"energy","model":"linear:100:250","capacity":-2.0}"#,
        r#"{"op":null}"#,
        r#"{"op":{"nested":"object"}}"#,
        "{\"op\":\"step\",\"id\":\"\\u0000\",\"load\":1.0}",
        r#"{"op":"admit","id":"h","policy":"hetero:frontier","fleet":{"types":[{"count":99,"beta":1.0,"energy":1.0,"capacity":1.0},{"count":99,"beta":1.0,"energy":1.0,"capacity":1.0}]}}"#,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut session = Session::new(Engine::new(EngineConfig::with_shards(1)));
    let out = session.handle_lines(hostile.iter().map(|s| s.as_str()));
    assert_eq!(out.len(), hostile.len(), "every hostile line answers");
    for (i, response) in out.iter().enumerate() {
        let v: serde::Value = serde_json::from_str(response).unwrap();
        assert_eq!(v["op"], "error", "line {}: {response}", i + 1);
        assert_eq!(v["line"].as_u64().unwrap(), i as u64 + 1);
    }
}
