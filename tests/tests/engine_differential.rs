//! Engine-vs-batch differential tests (the rsdc-engine acceptance bar):
//!
//! * streaming a trace through the engine one event at a time produces
//!   **bit-identical** schedules and costs to the batch runners in
//!   `rsdc_online::traits` on the equivalent `Instance` — for LCP and for
//!   the randomized (fractional + rounding) policies;
//! * the same holds when the run is interrupted mid-trace, snapshotted
//!   through JSON text, and resumed on a different engine with a different
//!   shard count.

use rsdc_core::prelude::*;
use rsdc_engine::{Engine, EngineConfig, PolicySpec, TenantConfig, TenantSnapshot};
use rsdc_online::flcp::GridLcp;
use rsdc_online::fractional::{EvalMode, HalfStep};
use rsdc_online::randomized::RandomizedOnline;
use rsdc_online::traits::run;
use rsdc_online::Lcp;
use rsdc_workloads::builder::CostModel;
use rsdc_workloads::random::{random_instance, RandomInstanceCfg};
use rsdc_workloads::traces::Diurnal;
use serde::{Deserialize, Serialize};

/// Stream every cost of `inst` through a fresh engine tenant; returns the
/// committed schedule.
fn stream_schedule(inst: &Instance, policy: PolicySpec, shards: usize) -> Schedule {
    let engine = Engine::new(EngineConfig::with_shards(shards));
    engine
        .admit(TenantConfig::new("t", inst.m(), inst.beta(), policy))
        .unwrap();
    let mut xs = Vec::new();
    for t in 1..=inst.horizon() {
        xs.extend(engine.step("t", inst.cost_fn(t).clone()).unwrap());
    }
    xs.extend(engine.finish("t").unwrap());
    Schedule(xs)
}

fn workload_instance(seed: u64) -> Instance {
    let trace = Diurnal::default().generate(96, seed);
    CostModel::default().instance(16, &trace)
}

#[test]
fn lcp_stream_equals_batch_on_workloads_and_random_instances() {
    for seed in 0..4u64 {
        let inst = workload_instance(seed);
        let batch = run(&mut Lcp::new(inst.m(), inst.beta()), &inst);
        let streamed = stream_schedule(&inst, PolicySpec::Lcp, 3);
        assert_eq!(streamed, batch, "workload seed {seed}");
        assert_eq!(cost(&inst, &streamed), cost(&inst, &batch));
    }
    let cfg = RandomInstanceCfg::default();
    for seed in 100..106u64 {
        let inst = random_instance(&cfg, seed);
        let batch = run(&mut Lcp::new(inst.m(), inst.beta()), &inst);
        let streamed = stream_schedule(&inst, PolicySpec::Lcp, 2);
        assert_eq!(streamed, batch, "random seed {seed}");
    }
}

#[test]
fn halfstep_rounded_stream_equals_batch_randomized() {
    for seed in 0..4u64 {
        let inst = workload_instance(seed);
        let mut batch_alg = RandomizedOnline::new(
            HalfStep::new(inst.m(), inst.beta(), EvalMode::Interpolate),
            inst.m(),
            seed,
        );
        let batch = run(&mut batch_alg, &inst);
        let streamed = stream_schedule(&inst, PolicySpec::HalfStepRounded { seed }, 2);
        assert_eq!(streamed, batch, "seed {seed}");
        assert_eq!(cost(&inst, &streamed), cost(&inst, &batch));
    }
}

#[test]
fn flcp_rounded_stream_equals_batch_randomized() {
    for (seed, k) in [(1u64, 2u32), (2, 4), (3, 3)] {
        let inst = workload_instance(seed);
        let mut batch_alg =
            RandomizedOnline::new(GridLcp::new(inst.m(), inst.beta(), k), inst.m(), seed);
        let batch = run(&mut batch_alg, &inst);
        let streamed = stream_schedule(&inst, PolicySpec::FlcpRounded { k, seed }, 4);
        assert_eq!(streamed, batch, "seed {seed} k {k}");
        assert_eq!(cost(&inst, &streamed), cost(&inst, &batch));
    }
}

/// Kill a tenant mid-trace, push its snapshot through JSON text, restore on
/// an engine with a different shard count, finish the trace: the schedule
/// must match an uninterrupted batch run bit for bit. Covers LCP and both
/// randomized policies (whose RNG state must survive the round trip).
#[test]
fn snapshot_interruption_preserves_differential_equality() {
    let policies = [
        PolicySpec::Lcp,
        PolicySpec::HalfStepRounded { seed: 7 },
        PolicySpec::FlcpRounded { k: 3, seed: 7 },
    ];
    for policy in policies {
        let inst = workload_instance(11);
        let cut = inst.horizon() / 2;

        // Uninterrupted engine reference.
        let want = stream_schedule(&inst, policy.clone(), 1);

        // Interrupted run.
        let first = Engine::new(EngineConfig::with_shards(2));
        first
            .admit(TenantConfig::new(
                "t",
                inst.m(),
                inst.beta(),
                policy.clone(),
            ))
            .unwrap();
        let mut xs = Vec::new();
        for t in 1..=cut {
            xs.extend(first.step("t", inst.cost_fn(t).clone()).unwrap());
        }
        let snapshot = first.snapshot("t").unwrap();
        first.shutdown();

        // Through JSON text, as the wire format would carry it.
        let text = serde_json::to_string_pretty(&snapshot.to_value()).unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        let snapshot = TenantSnapshot::from_value(&value).unwrap();

        let second = Engine::new(EngineConfig::with_shards(4));
        second.restore(snapshot).unwrap();
        for t in cut + 1..=inst.horizon() {
            xs.extend(second.step("t", inst.cost_fn(t).clone()).unwrap());
        }
        xs.extend(second.finish("t").unwrap());
        let got = Schedule(xs);

        assert_eq!(got, want, "policy {policy:?}");
        assert_eq!(cost(&inst, &got), cost(&inst, &want), "policy {policy:?}");
        // The restored tenant's own accounting agrees with the batch
        // analysis of the full schedule.
        let report = second.report("t").unwrap();
        let breakdown = rsdc_core::analysis::breakdown(&inst, &got);
        assert_eq!(report.breakdown.operating, breakdown.operating);
        assert_eq!(report.breakdown.switching, breakdown.switching);
    }
}

// ------------------------------------------------------- heterogeneous

use rsdc_engine::{EngineError, FleetSpec, HeteroAlgo};
use rsdc_hetero::{FrontierDp, GreedyConfig, HInstance, ServerType};

fn hetero_fleet() -> FleetSpec {
    FleetSpec::new(vec![
        ServerType {
            count: 3,
            beta: 1.0,
            energy: 1.0,
            capacity: 1.0,
        },
        ServerType {
            count: 2,
            beta: 2.5,
            energy: 1.4,
            capacity: 2.0,
        },
    ])
}

fn hetero_loads(n: usize, seed: u64) -> Vec<f64> {
    Diurnal::default().generate(n, seed).loads
}

/// Batch accounting in the exact shape the engine maintains it: operating
/// and switching accumulated separately, in slot order — so equality can
/// be asserted on the raw f64s, not within an epsilon.
fn batch_breakdown(inst: &HInstance, schedule: &[Vec<u32>]) -> (f64, f64) {
    let mut operating = 0.0;
    let mut switching = 0.0;
    let mut prev = vec![0u32; inst.dims()];
    for (t, x) in schedule.iter().enumerate() {
        operating += inst.eval(t + 1, x);
        switching += inst.switch_cost(&prev, x);
        prev = x.clone();
    }
    (operating, switching)
}

/// Hetero tenants streamed through the engine commit, at every shard
/// count, exactly the configurations the batch hetero online solvers
/// produce — and the engine's incremental accounting equals the batch
/// breakdown on the raw floats.
#[test]
fn hetero_stream_equals_batch_solvers() {
    for seed in 0..3u64 {
        let loads = hetero_loads(60, seed);
        let inst = hetero_fleet().instance(&loads);

        let mut frontier = FrontierDp::new(&inst.types);
        let want_frontier: Vec<Vec<u32>> = (1..=inst.horizon())
            .map(|t| frontier.step(&inst, t))
            .collect();
        let mut greedy = GreedyConfig::new(inst.dims());
        let want_greedy: Vec<Vec<u32>> = (1..=inst.horizon())
            .map(|t| greedy.step(&inst, t))
            .collect();

        for (algo, want) in [
            (HeteroAlgo::Frontier, &want_frontier),
            (HeteroAlgo::Greedy, &want_greedy),
        ] {
            for shards in [1usize, 3] {
                let engine = Engine::new(EngineConfig::with_shards(shards));
                engine
                    .admit(TenantConfig::hetero("h", hetero_fleet(), algo).with_opt_tracking())
                    .unwrap();
                let mut got = Vec::new();
                for &l in &loads {
                    got.extend(engine.step_load("h", l).unwrap().configs.unwrap());
                }
                assert_eq!(&got, want, "seed {seed} {algo:?} shards {shards}");
                let report = engine.report("h").unwrap();
                let (operating, switching) = batch_breakdown(&inst, &got);
                assert_eq!(report.breakdown.operating, operating, "{algo:?}");
                assert_eq!(report.breakdown.switching, switching, "{algo:?}");
                // The tracked optimum is the exact offline DP of the trace.
                let opt = rsdc_hetero::solve(&inst).cost;
                let got_opt = report.opt_cost.unwrap();
                assert!(
                    (got_opt - opt).abs() <= 1e-9 * (1.0 + opt),
                    "{algo:?}: opt {got_opt} vs offline {opt}"
                );
            }
        }
    }
}

/// The acceptance bar: a hetero tenant run through a durable engine,
/// killed mid-trace and rebuilt with `Engine::recover` on a different
/// shard count, finishes the trace with a report byte-identical to the
/// uninterrupted engine — whose schedule is the batch lattice DP's.
#[test]
fn hetero_recovery_preserves_differential_equality() {
    use rsdc_store::{Durability, FileStore, FileStoreConfig};
    use std::sync::Arc;
    let dir = std::env::temp_dir()
        .join("rsdc-tests")
        .join(format!("hetero-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let loads = hetero_loads(48, 11);
    let inst = hetero_fleet().instance(&loads);
    let cut = loads.len() / 2;

    // Uninterrupted engine reference (also the batch schedule check).
    let reference = Engine::new(EngineConfig::with_shards(2));
    reference
        .admit(TenantConfig::hetero("h", hetero_fleet(), HeteroAlgo::Frontier).with_opt_tracking())
        .unwrap();
    let mut want_schedule = Vec::new();
    for &l in &loads {
        want_schedule.extend(reference.step_load("h", l).unwrap().configs.unwrap());
    }
    let want = reference.report("h").unwrap();
    let mut batch = FrontierDp::new(&inst.types);
    let batch_schedule: Vec<Vec<u32>> =
        (1..=inst.horizon()).map(|t| batch.step(&inst, t)).collect();
    assert_eq!(want_schedule, batch_schedule);

    // Durable run, killed mid-trace (some slots only in the WAL).
    let store: Arc<dyn Durability> =
        Arc::new(FileStore::open(&dir, FileStoreConfig { sync_every: 4 }).unwrap());
    let durable = Engine::with_store(EngineConfig::with_shards(2), store.clone()).unwrap();
    durable
        .admit(TenantConfig::hetero("h", hetero_fleet(), HeteroAlgo::Frontier).with_opt_tracking())
        .unwrap();
    let mut got_schedule = Vec::new();
    for &l in &loads[..cut - 5] {
        got_schedule.extend(durable.step_load("h", l).unwrap().configs.unwrap());
    }
    durable.checkpoint().unwrap();
    for &l in &loads[cut - 5..cut] {
        got_schedule.extend(durable.step_load("h", l).unwrap().configs.unwrap());
    }
    drop(durable); // crash: the last 5 slots live only in the WAL

    let (recovered, report) = Engine::recover(EngineConfig::with_shards(3), store).unwrap();
    assert_eq!(report.tenants_restored, 1);
    assert!(report.records_replayed >= 5);
    assert_eq!(report.replay_errors, 0);
    for &l in &loads[cut..] {
        got_schedule.extend(recovered.step_load("h", l).unwrap().configs.unwrap());
    }
    assert_eq!(got_schedule, batch_schedule);
    let got = recovered.report("h").unwrap();
    assert_eq!(
        serde_json::to_string(&got).unwrap(),
        serde_json::to_string(&want).unwrap(),
        "recovered hetero report must be byte-identical"
    );

    // A hetero step that lost its load is a per-event error after recovery
    // too (nothing in the WAL replay path weakened validation).
    assert!(matches!(
        recovered.step("h", rsdc_core::Cost::Zero),
        Err(EngineError::Policy(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Lookahead tenants must match `run_lookahead` once finished, and their
/// committed counts lag the stream by the window size until then.
#[test]
fn lookahead_stream_equals_batch_lookahead() {
    use rsdc_online::prediction::LookaheadLcp;
    use rsdc_online::traits::run_lookahead;
    let inst = workload_instance(5);
    for w in [0usize, 2, 5] {
        let batch = run_lookahead(&mut LookaheadLcp::new(inst.m(), inst.beta()), &inst, w);
        let streamed = stream_schedule(&inst, PolicySpec::Lookahead { window: w }, 2);
        assert_eq!(streamed, batch, "window {w}");
    }
}
