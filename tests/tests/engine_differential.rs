//! Engine-vs-batch differential tests (the rsdc-engine acceptance bar):
//!
//! * streaming a trace through the engine one event at a time produces
//!   **bit-identical** schedules and costs to the batch runners in
//!   `rsdc_online::traits` on the equivalent `Instance` — for LCP and for
//!   the randomized (fractional + rounding) policies;
//! * the same holds when the run is interrupted mid-trace, snapshotted
//!   through JSON text, and resumed on a different engine with a different
//!   shard count.

use rsdc_core::prelude::*;
use rsdc_engine::{Engine, EngineConfig, PolicySpec, TenantConfig, TenantSnapshot};
use rsdc_online::flcp::GridLcp;
use rsdc_online::fractional::{EvalMode, HalfStep};
use rsdc_online::randomized::RandomizedOnline;
use rsdc_online::traits::run;
use rsdc_online::Lcp;
use rsdc_workloads::builder::CostModel;
use rsdc_workloads::random::{random_instance, RandomInstanceCfg};
use rsdc_workloads::traces::Diurnal;
use serde::{Deserialize, Serialize};

/// Stream every cost of `inst` through a fresh engine tenant; returns the
/// committed schedule.
fn stream_schedule(inst: &Instance, policy: PolicySpec, shards: usize) -> Schedule {
    let engine = Engine::new(EngineConfig::with_shards(shards));
    engine
        .admit(TenantConfig::new("t", inst.m(), inst.beta(), policy))
        .unwrap();
    let mut xs = Vec::new();
    for t in 1..=inst.horizon() {
        xs.extend(engine.step("t", inst.cost_fn(t).clone()).unwrap());
    }
    xs.extend(engine.finish("t").unwrap());
    Schedule(xs)
}

fn workload_instance(seed: u64) -> Instance {
    let trace = Diurnal::default().generate(96, seed);
    CostModel::default().instance(16, &trace)
}

#[test]
fn lcp_stream_equals_batch_on_workloads_and_random_instances() {
    for seed in 0..4u64 {
        let inst = workload_instance(seed);
        let batch = run(&mut Lcp::new(inst.m(), inst.beta()), &inst);
        let streamed = stream_schedule(&inst, PolicySpec::Lcp, 3);
        assert_eq!(streamed, batch, "workload seed {seed}");
        assert_eq!(cost(&inst, &streamed), cost(&inst, &batch));
    }
    let cfg = RandomInstanceCfg::default();
    for seed in 100..106u64 {
        let inst = random_instance(&cfg, seed);
        let batch = run(&mut Lcp::new(inst.m(), inst.beta()), &inst);
        let streamed = stream_schedule(&inst, PolicySpec::Lcp, 2);
        assert_eq!(streamed, batch, "random seed {seed}");
    }
}

#[test]
fn halfstep_rounded_stream_equals_batch_randomized() {
    for seed in 0..4u64 {
        let inst = workload_instance(seed);
        let mut batch_alg = RandomizedOnline::new(
            HalfStep::new(inst.m(), inst.beta(), EvalMode::Interpolate),
            inst.m(),
            seed,
        );
        let batch = run(&mut batch_alg, &inst);
        let streamed = stream_schedule(&inst, PolicySpec::HalfStepRounded { seed }, 2);
        assert_eq!(streamed, batch, "seed {seed}");
        assert_eq!(cost(&inst, &streamed), cost(&inst, &batch));
    }
}

#[test]
fn flcp_rounded_stream_equals_batch_randomized() {
    for (seed, k) in [(1u64, 2u32), (2, 4), (3, 3)] {
        let inst = workload_instance(seed);
        let mut batch_alg =
            RandomizedOnline::new(GridLcp::new(inst.m(), inst.beta(), k), inst.m(), seed);
        let batch = run(&mut batch_alg, &inst);
        let streamed = stream_schedule(&inst, PolicySpec::FlcpRounded { k, seed }, 4);
        assert_eq!(streamed, batch, "seed {seed} k {k}");
        assert_eq!(cost(&inst, &streamed), cost(&inst, &batch));
    }
}

/// Kill a tenant mid-trace, push its snapshot through JSON text, restore on
/// an engine with a different shard count, finish the trace: the schedule
/// must match an uninterrupted batch run bit for bit. Covers LCP and both
/// randomized policies (whose RNG state must survive the round trip).
#[test]
fn snapshot_interruption_preserves_differential_equality() {
    let policies = [
        PolicySpec::Lcp,
        PolicySpec::HalfStepRounded { seed: 7 },
        PolicySpec::FlcpRounded { k: 3, seed: 7 },
    ];
    for policy in policies {
        let inst = workload_instance(11);
        let cut = inst.horizon() / 2;

        // Uninterrupted engine reference.
        let want = stream_schedule(&inst, policy.clone(), 1);

        // Interrupted run.
        let first = Engine::new(EngineConfig::with_shards(2));
        first
            .admit(TenantConfig::new(
                "t",
                inst.m(),
                inst.beta(),
                policy.clone(),
            ))
            .unwrap();
        let mut xs = Vec::new();
        for t in 1..=cut {
            xs.extend(first.step("t", inst.cost_fn(t).clone()).unwrap());
        }
        let snapshot = first.snapshot("t").unwrap();
        first.shutdown();

        // Through JSON text, as the wire format would carry it.
        let text = serde_json::to_string_pretty(&snapshot.to_value()).unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        let snapshot = TenantSnapshot::from_value(&value).unwrap();

        let second = Engine::new(EngineConfig::with_shards(4));
        second.restore(snapshot).unwrap();
        for t in cut + 1..=inst.horizon() {
            xs.extend(second.step("t", inst.cost_fn(t).clone()).unwrap());
        }
        xs.extend(second.finish("t").unwrap());
        let got = Schedule(xs);

        assert_eq!(got, want, "policy {policy:?}");
        assert_eq!(cost(&inst, &got), cost(&inst, &want), "policy {policy:?}");
        // The restored tenant's own accounting agrees with the batch
        // analysis of the full schedule.
        let report = second.report("t").unwrap();
        let breakdown = rsdc_core::analysis::breakdown(&inst, &got);
        assert_eq!(report.breakdown.operating, breakdown.operating);
        assert_eq!(report.breakdown.switching, breakdown.switching);
    }
}

/// Lookahead tenants must match `run_lookahead` once finished, and their
/// committed counts lag the stream by the window size until then.
#[test]
fn lookahead_stream_equals_batch_lookahead() {
    use rsdc_online::prediction::LookaheadLcp;
    use rsdc_online::traits::run_lookahead;
    let inst = workload_instance(5);
    for w in [0usize, 2, 5] {
        let batch = run_lookahead(&mut LookaheadLcp::new(inst.m(), inst.beta()), &inst, w);
        let streamed = stream_schedule(&inst, PolicySpec::Lookahead { window: w }, 2);
        assert_eq!(streamed, batch, "window {w}");
    }
}
