//! Wire-conformance suite: `docs/WIRE.md` is executable documentation.
//!
//! Every fenced code block in the doc whose info string is
//! `jsonl conformance` (or `jsonl conformance-durable`) is a live session
//! transcript: lines starting with `> ` are requests, every other
//! non-empty line is the *exact* expected response, in order. This test
//! feeds each block's requests to a fresh [`rsdc_engine::wire::Session`]
//! and asserts JSON equivalence response by response — so the documented
//! protocol can never drift from the implemented one. Plain `jsonl`
//! blocks (no `conformance` tag) stay illustrative and are not executed.
//!
//! Blocks tagged `binwire conformance` document the binary framing: their
//! `> ` lines are **hex-dumped request bytes** (anything after `#` is a
//! comment), fed verbatim to a fresh single-shard [`BinSession`]; the
//! remaining lines are the decoded JSONL text of the expected response
//! frames. The documented frame bytes — preambles, CRCs, tag layouts —
//! are therefore checked against the live codec.
//!
//! Determinism ground rules for conformance blocks, enforced here:
//! * each block runs on a fresh single-shard session (durable blocks get
//!   a fresh temp-dir `FileStore` with the default config), so sequence
//!   numbers and recovery reports are reproducible;
//! * the environment-dependent fields are normalized on both sides
//!   before comparison: the store's `dir` in `wal_stats` responses
//!   becomes `"<data-dir>"`, and wall-clock histogram statistics in
//!   `metrics` responses (`sum`/`max`/`p50`/`p90`/`p99`) become `0` —
//!   histogram **counts** are deterministic and stay checked.

use rsdc_engine::binwire::{decode_response, BinSession};
use rsdc_engine::wire::Session;
use rsdc_engine::EngineConfig;
use rsdc_store::{Durability, FileStore, FileStoreConfig};
use std::sync::Arc;

/// One executable block: where it sits in the doc, which framing it
/// speaks, whether it gets a durable store, and its interleaved
/// request/response lines.
struct Block {
    doc_line: usize,
    durable: bool,
    binary: bool,
    requests: Vec<String>,
    expected: Vec<String>,
}

/// Extract the conformance blocks from the markdown source.
fn conformance_blocks(doc: &str) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut current: Option<Block> = None;
    for (index, line) in doc.lines().enumerate() {
        let trimmed = line.trim_end();
        if let Some(block) = &mut current {
            if trimmed == "```" {
                blocks.push(current.take().expect("in block"));
            } else if let Some(req) = trimmed.strip_prefix("> ") {
                block.requests.push(req.to_string());
            } else if !trimmed.is_empty() {
                block.expected.push(trimmed.to_string());
            }
            continue;
        }
        let durable = trimmed == "```jsonl conformance-durable";
        let binary = trimmed == "```binwire conformance";
        if durable || binary || trimmed == "```jsonl conformance" {
            current = Some(Block {
                doc_line: index + 1,
                durable,
                binary,
                requests: Vec::new(),
                expected: Vec::new(),
            });
        }
    }
    assert!(current.is_none(), "unterminated fenced block in WIRE.md");
    blocks
}

/// Normalize environment-dependent fields, then parse.
fn canon(line: &str) -> serde::Value {
    let mut v: serde::Value =
        serde_json::from_str(line).unwrap_or_else(|e| panic!("bad JSON {line:?}: {e}"));
    if let serde::Value::Object(entries) = &mut v {
        if let Some(store) = entries.iter_mut().find(|(k, _)| k == "store") {
            if let serde::Value::Object(fields) = &mut store.1 {
                for (k, val) in fields.iter_mut() {
                    if k == "dir" {
                        *val = serde::Value::String("<data-dir>".to_string());
                    }
                }
            }
        }
        // Metrics responses: histogram rows carry wall-clock timings
        // (sum/max/quantiles); zero them so doc transcripts stay exact.
        // Counts are event counts, hence deterministic — left checked.
        if let Some(rows) = entries.iter_mut().find(|(k, _)| k == "metrics") {
            if let serde::Value::Array(rows) = &mut rows.1 {
                for row in rows {
                    if let serde::Value::Object(fields) = row {
                        let histogram = fields
                            .iter()
                            .any(|(k, v)| k == "kind" && v.as_str() == Some("histogram"));
                        if histogram {
                            for (k, val) in fields.iter_mut() {
                                if matches!(k.as_str(), "sum" | "max" | "p50" | "p90" | "p99") {
                                    *val = serde_json::to_value(&0u64);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    v
}

/// Hex-dump request lines back to bytes: strip `#`-comments, then parse
/// whitespace-separated two-digit hex octets.
fn hex_bytes(requests: &[String], doc_line: usize) -> Vec<u8> {
    let mut bytes = Vec::new();
    for line in requests {
        let data = line.split('#').next().unwrap_or("");
        for tok in data.split_whitespace() {
            let byte = u8::from_str_radix(tok, 16)
                .unwrap_or_else(|e| panic!("bad hex {tok:?} near docs/WIRE.md:{doc_line}: {e}"));
            bytes.push(byte);
        }
    }
    bytes
}

fn fresh_dir(tag: usize) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("rsdc-wire-conformance")
        .join(format!("{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn every_wire_md_example_matches_a_live_session() {
    let doc_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../docs/WIRE.md");
    let doc = std::fs::read_to_string(doc_path).expect("read docs/WIRE.md");
    let blocks = conformance_blocks(&doc);
    // The floor has been raised PR over PR: autoscale (live auto-trigger
    // transcript plus error cases), incremental rebalance, the
    // skew/policy-carrying stats + wal_stats shapes, the observability
    // pair (metrics-registry dump + traced autoscale decision), and now
    // the energy trio — metered session, spec rejections, and the
    // priced-autoscale composition.
    assert!(
        blocks.len() >= 22,
        "WIRE.md must keep its per-op conformance coverage, found {}",
        blocks.len()
    );
    let executed: usize = blocks.iter().map(|b| b.requests.len()).sum();
    assert!(executed >= 120, "suspiciously few requests: {executed}");
    assert!(
        doc.contains("\"op\":\"autoscale\"") && doc.contains("\"mode\":\"incremental\""),
        "the autoscale and incremental-rebalance examples must stay documented"
    );
    assert!(
        doc.contains("\"op\":\"metrics\"") && doc.contains("autoscale_decision"),
        "the metrics dump and control-plane trace examples must stay documented"
    );
    assert!(
        doc.contains("\"op\":\"energy\"") && doc.contains("\"priced\":true"),
        "the energy op and priced-autoscale examples must stay documented"
    );
    let binary_blocks = blocks.iter().filter(|b| b.binary).count();
    assert!(
        binary_blocks >= 3,
        "WIRE.md must keep its binary-framing transcripts, found {binary_blocks}"
    );

    for (tag, block) in blocks.iter().enumerate() {
        if block.binary {
            let mut bin = BinSession::new(Session::new(rsdc_engine::Engine::new(
                EngineConfig::with_shards(1),
            )));
            let mut frames = Vec::new();
            bin.feed(&hex_bytes(&block.requests, block.doc_line), &mut frames);
            bin.finish(&mut frames);
            let out = decode_response(&frames).unwrap_or_else(|e| {
                panic!(
                    "undecodable response stream for block at docs/WIRE.md:{}: {e}",
                    block.doc_line
                )
            });
            assert_eq!(
                out.len(),
                block.expected.len(),
                "response count mismatch; block at docs/WIRE.md:{} decoded:\n{}",
                block.doc_line,
                out.join("\n")
            );
            for (i, (got, want)) in out.iter().zip(&block.expected).enumerate() {
                assert!(
                    canon(got) == canon(want),
                    "response {i} differs;\n want: {want}\n  got: {got}\nblock at docs/WIRE.md:{}",
                    block.doc_line
                );
            }
            continue;
        }
        let dir = fresh_dir(tag);
        let mut session = if block.durable {
            let store: Arc<dyn Durability> =
                Arc::new(FileStore::open(&dir, FileStoreConfig::default()).expect("open store"));
            Session::open_durable_cfg(EngineConfig::with_shards(1), store)
                .expect("fresh durable session")
                .0
        } else {
            Session::new(rsdc_engine::Engine::new(EngineConfig::with_shards(1)))
        };
        let out = session.handle_lines(block.requests.iter().map(|s| s.as_str()));
        let context = || {
            format!(
                "block at docs/WIRE.md:{} —\nrequests:\n{}\nactual responses:\n{}",
                block.doc_line,
                block.requests.join("\n"),
                out.join("\n"),
            )
        };
        assert_eq!(
            out.len(),
            block.expected.len(),
            "response count mismatch; {}",
            context()
        );
        for (i, (got, want)) in out.iter().zip(&block.expected).enumerate() {
            assert!(
                canon(got) == canon(want),
                "response {i} differs;\n want: {want}\n  got: {got}\n{}",
                context()
            );
        }
        drop(session);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The doc's informal claim that blank lines and comments count toward
/// line numbering is part of the protocol; pin it here, next to the
/// parser that the conformance blocks exercise.
#[test]
fn line_numbering_counts_blanks_and_comments() {
    let mut session = Session::new(rsdc_engine::Engine::new(EngineConfig::with_shards(1)));
    let out = session.handle_lines(["", "# comment", "nope"]);
    let v: serde::Value = serde_json::from_str(&out[0]).unwrap();
    assert_eq!(v["op"], "error");
    assert_eq!(v["line"], 3);
}
