//! Property tests for the heterogeneous extension.

use proptest::collection::vec;
use proptest::prelude::*;
use rsdc_core::prelude::*;
use rsdc_hetero::{
    CoordinateLcp, FleetSpec, FrontierDp, HCost, HInstance, HeteroAlgo, HeteroSnapshot,
    HeteroStream, ServerType,
};
use serde::{Deserialize as _, Serialize as _};

fn types_strategy() -> impl Strategy<Value = Vec<ServerType>> {
    vec(
        (1u32..4, 0.2f64..4.0, 0.2f64..2.0, 0.5f64..3.0).prop_map(
            |(count, beta, energy, capacity)| ServerType {
                count,
                beta,
                energy,
                capacity,
            },
        ),
        1..3,
    )
}

fn separable_instance() -> impl Strategy<Value = HInstance> {
    (types_strategy(), 0usize..6).prop_flat_map(|(types, t_len)| {
        let d = types.len();
        (
            Just(types),
            vec(
                (vec(0.0f64..4.0, d), vec(0.1f64..3.0, d))
                    .prop_map(|(targets, slopes)| HCost::SeparableAbs { targets, slopes }),
                t_len..=t_len,
            ),
        )
            .prop_map(|(types, costs)| HInstance { types, costs })
    })
}

fn aggregate_instance() -> impl Strategy<Value = HInstance> {
    (types_strategy(), vec(0.0f64..6.0, 0..8)).prop_map(|(types, loads)| HInstance {
        types: types.clone(),
        costs: loads
            .iter()
            .map(|&lambda| HCost::Aggregate {
                lambda,
                delay_weight: 1.0,
                delay_eps: 0.3,
                overload: 20.0,
            })
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The lattice DP is a lower bound for every explicit schedule.
    #[test]
    fn dp_lower_bounds_all_schedules(inst in aggregate_instance()) {
        let opt = rsdc_hetero::solve(&inst);
        // Probe a handful of deterministic schedules.
        let all = inst.all_configs();
        for config in all.iter().take(4) {
            let xs = vec![config.clone(); inst.horizon()];
            prop_assert!(inst.cost(&xs) >= opt.cost - 1e-9 * (1.0 + opt.cost.abs()));
        }
        // And the DP's own schedule re-evaluates to its cost.
        prop_assert!((inst.cost(&opt.schedule) - opt.cost).abs() < 1e-9 * (1.0 + opt.cost.abs()));
    }

    /// Separable instances decompose into per-type 1-D problems.
    #[test]
    fn separable_decomposition(inst in separable_instance()) {
        let h = rsdc_hetero::solve(&inst);
        let mut sum = 0.0;
        for d in 0..inst.dims() {
            let ty = inst.types[d];
            let costs: Vec<Cost> = inst
                .costs
                .iter()
                .map(|c| match c {
                    HCost::SeparableAbs { targets, slopes } => Cost::abs(slopes[d], targets[d]),
                    _ => unreachable!("separable strategy"),
                })
                .collect();
            let one = Instance::new(ty.count, ty.beta, costs).unwrap();
            sum += rsdc_offline::dp::solve_cost_only(&one);
        }
        prop_assert!(
            (h.cost - sum).abs() < 1e-8 * (1.0 + sum.abs()),
            "hetero {} vs decomposed {sum}",
            h.cost
        );
    }

    /// Coordinate LCP emits feasible configurations and never beats OPT.
    #[test]
    fn coordinate_lcp_feasible(inst in aggregate_instance()) {
        let mut a = CoordinateLcp::new(&inst);
        let xs: Vec<_> = (1..=inst.horizon()).map(|t| a.step(&inst, t)).collect();
        for cfg in &xs {
            for (x, ty) in cfg.iter().zip(&inst.types) {
                prop_assert!(*x <= ty.count);
            }
        }
        if inst.horizon() > 0 {
            let opt = rsdc_hetero::solve(&inst);
            prop_assert!(inst.cost(&xs) >= opt.cost - 1e-9 * (1.0 + opt.cost.abs()));
        }
    }

    /// Streaming hetero tenants resume bit-identically: for random fleet
    /// specs, load traces, policies and interruption points, snapshot →
    /// (JSON round trip) → restore → continue produces exactly the
    /// configurations and prefix optimum of an uninterrupted run.
    #[test]
    fn hetero_snapshot_round_trips_bit_identically(
        types in types_strategy(),
        loads in vec(0.0f64..6.0, 1..40),
        cut in 0usize..40,
        frontier in 0u8..2,
        track in 0u8..2,
    ) {
        let spec = FleetSpec::new(types);
        prop_assume!(spec.validate().is_ok());
        let algo = if frontier == 0 { HeteroAlgo::Frontier } else { HeteroAlgo::Greedy };
        let cut = cut.min(loads.len());

        let mut full = HeteroStream::new(spec.clone(), algo, track != 0).unwrap();
        let want: Vec<Vec<u32>> = loads.iter().map(|&l| full.ingest(l).config).collect();

        let mut first = HeteroStream::new(spec.clone(), algo, track != 0).unwrap();
        let mut got: Vec<Vec<u32>> =
            loads[..cut].iter().map(|&l| first.ingest(l).config).collect();
        let text = serde_json::to_string(&first.snapshot().to_value()).unwrap();
        let value: serde::Value = serde_json::from_str(&text).unwrap();
        let snap = HeteroSnapshot::from_value(&value).unwrap();
        let mut resumed = HeteroStream::new(spec, algo, track != 0).unwrap();
        resumed.restore(&snap).unwrap();
        got.extend(loads[cut..].iter().map(|&l| resumed.ingest(l).config));

        prop_assert_eq!(got, want);
        // Bit-identical includes the tracked optimum (f64 equality).
        prop_assert_eq!(resumed.opt_cost(), full.opt_cost());
    }

    /// The frontier policy's tracked optimum is the exact offline DP.
    #[test]
    fn frontier_opt_matches_offline_dp(
        types in types_strategy(),
        loads in vec(0.0f64..6.0, 1..12),
    ) {
        let spec = FleetSpec::new(types);
        prop_assume!(spec.validate().is_ok());
        let inst = spec.instance(&loads);
        let mut dp = FrontierDp::new(&inst.types);
        for t in 1..=inst.horizon() {
            dp.step(&inst, t);
        }
        let opt = rsdc_hetero::solve(&inst).cost;
        let got = dp.opt_cost().unwrap();
        prop_assert!(
            (got - opt).abs() <= 1e-9 * (1.0 + opt.abs()),
            "frontier min {} vs offline {}",
            got,
            opt
        );
    }

    /// Aggregate costs are convex along every axis at every base point.
    #[test]
    fn aggregate_axis_convexity(inst in aggregate_instance()) {
        for t in 1..=inst.horizon() {
            for d in 0..inst.dims() {
                let maxd = inst.types[d].count;
                if maxd < 2 { continue; }
                let base: Vec<u32> = inst.types.iter().map(|ty| ty.count / 2).collect();
                let mut prev_slope = f64::NEG_INFINITY;
                for v in 0..maxd {
                    let mut a = base.clone();
                    let mut b = base.clone();
                    a[d] = v;
                    b[d] = v + 1;
                    let slope = inst.eval(t, &b) - inst.eval(t, &a);
                    prop_assert!(slope >= prev_slope - 1e-9);
                    prev_slope = slope;
                }
            }
        }
    }
}
