//! Property tests for the heterogeneous extension.

use proptest::collection::vec;
use proptest::prelude::*;
use rsdc_core::prelude::*;
use rsdc_hetero::{CoordinateLcp, HCost, HInstance, ServerType};

fn types_strategy() -> impl Strategy<Value = Vec<ServerType>> {
    vec(
        (1u32..4, 0.2f64..4.0, 0.2f64..2.0, 0.5f64..3.0).prop_map(
            |(count, beta, energy, capacity)| ServerType {
                count,
                beta,
                energy,
                capacity,
            },
        ),
        1..3,
    )
}

fn separable_instance() -> impl Strategy<Value = HInstance> {
    (types_strategy(), 0usize..6).prop_flat_map(|(types, t_len)| {
        let d = types.len();
        (
            Just(types),
            vec(
                (vec(0.0f64..4.0, d), vec(0.1f64..3.0, d))
                    .prop_map(|(targets, slopes)| HCost::SeparableAbs { targets, slopes }),
                t_len..=t_len,
            ),
        )
            .prop_map(|(types, costs)| HInstance { types, costs })
    })
}

fn aggregate_instance() -> impl Strategy<Value = HInstance> {
    (types_strategy(), vec(0.0f64..6.0, 0..8)).prop_map(|(types, loads)| HInstance {
        types: types.clone(),
        costs: loads
            .iter()
            .map(|&lambda| HCost::Aggregate {
                lambda,
                delay_weight: 1.0,
                delay_eps: 0.3,
                overload: 20.0,
            })
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The lattice DP is a lower bound for every explicit schedule.
    #[test]
    fn dp_lower_bounds_all_schedules(inst in aggregate_instance()) {
        let opt = rsdc_hetero::solve(&inst);
        // Probe a handful of deterministic schedules.
        let all = inst.all_configs();
        for config in all.iter().take(4) {
            let xs = vec![config.clone(); inst.horizon()];
            prop_assert!(inst.cost(&xs) >= opt.cost - 1e-9 * (1.0 + opt.cost.abs()));
        }
        // And the DP's own schedule re-evaluates to its cost.
        prop_assert!((inst.cost(&opt.schedule) - opt.cost).abs() < 1e-9 * (1.0 + opt.cost.abs()));
    }

    /// Separable instances decompose into per-type 1-D problems.
    #[test]
    fn separable_decomposition(inst in separable_instance()) {
        let h = rsdc_hetero::solve(&inst);
        let mut sum = 0.0;
        for d in 0..inst.dims() {
            let ty = inst.types[d];
            let costs: Vec<Cost> = inst
                .costs
                .iter()
                .map(|c| match c {
                    HCost::SeparableAbs { targets, slopes } => Cost::abs(slopes[d], targets[d]),
                    _ => unreachable!("separable strategy"),
                })
                .collect();
            let one = Instance::new(ty.count, ty.beta, costs).unwrap();
            sum += rsdc_offline::dp::solve_cost_only(&one);
        }
        prop_assert!(
            (h.cost - sum).abs() < 1e-8 * (1.0 + sum.abs()),
            "hetero {} vs decomposed {sum}",
            h.cost
        );
    }

    /// Coordinate LCP emits feasible configurations and never beats OPT.
    #[test]
    fn coordinate_lcp_feasible(inst in aggregate_instance()) {
        let mut a = CoordinateLcp::new(&inst);
        let xs: Vec<_> = (1..=inst.horizon()).map(|t| a.step(&inst, t)).collect();
        for cfg in &xs {
            for (x, ty) in cfg.iter().zip(&inst.types) {
                prop_assert!(*x <= ty.count);
            }
        }
        if inst.horizon() > 0 {
            let opt = rsdc_hetero::solve(&inst);
            prop_assert!(inst.cost(&xs) >= opt.cost - 1e-9 * (1.0 + opt.cost.abs()));
        }
    }

    /// Aggregate costs are convex along every axis at every base point.
    #[test]
    fn aggregate_axis_convexity(inst in aggregate_instance()) {
        for t in 1..=inst.horizon() {
            for d in 0..inst.dims() {
                let maxd = inst.types[d].count;
                if maxd < 2 { continue; }
                let base: Vec<u32> = inst.types.iter().map(|ty| ty.count / 2).collect();
                let mut prev_slope = f64::NEG_INFINITY;
                for v in 0..maxd {
                    let mut a = base.clone();
                    let mut b = base.clone();
                    a[d] = v;
                    b[d] = v + 1;
                    let slope = inst.eval(t, &b) - inst.eval(t, &a);
                    prop_assert!(slope >= prev_slope - 1e-9);
                    prev_slope = slope;
                }
            }
        }
    }
}
