//! Energy-accounting acceptance tests — the contract of the power-model
//! subsystem (`rsdc-power` + the engine's energy runtime):
//!
//! * **price deferral** — the beyond-the-paper behaviour the subsystem
//!   exists for: under a square-wave price schedule, the priced topology
//!   policy defers its scale-up migrations into cheap windows, while a
//!   constant-price twin (charged the schedule's mean) scales up during
//!   the expensive window — and the deferring schedule costs less money
//!   under the true prices;
//! * **closed-form metering** — the [`EnergyMeter`]'s totals equal the
//!   independently computed integral `ticks * machines * watts(util)`
//!   and its priced counterpart via explicit step-window arithmetic;
//! * **determinism** — energy accounting is process state: a durable run
//!   writes byte-identical store files with the meter on or off, and
//!   crash-recovery with the meter enabled reproduces the reports of a
//!   meter-free uninterrupted run.
//!
//! The heavy `#[ignore]`d variant runs the metering property at raised
//! case counts for the nightly CI job (`cargo test -- --include-ignored`,
//! `RSDC_HEAVY_CASES` to scale).

use proptest::prelude::*;
use rsdc_core::Cost;
use rsdc_engine::{
    Engine, EngineConfig, PolicySpec, PowerConfig, PowerSpec, PriceSchedule, TenantConfig,
    TopologyConfig, TopologyPolicy,
};
use rsdc_power::{EnergyMeter, ShardSample};
use rsdc_store::{Durability, FileStore, FileStoreConfig};
use rsdc_tests::heavy_cases;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Price deferral: the reason the subsystem exists.
// ---------------------------------------------------------------------

/// Drive a topology policy over a load trace, applying every decision
/// immediately, and return the shard schedule.
fn run_policy(cfg: &TopologyConfig, loads: &[u64]) -> Vec<usize> {
    let mut policy = TopologyPolicy::new(cfg.clone(), cfg.min_shards).expect("valid config");
    let mut schedule = Vec::with_capacity(loads.len());
    for &events in loads {
        if let Some(target) = policy.observe(&[events], &[(0, 1)]) {
            let from = policy.status().shards;
            policy.record_applied(from, target, 0);
        }
        schedule.push(policy.target());
    }
    schedule
}

/// The tick of the first topology increase relative to the starting shard
/// count, if any. Tick `t` is the `observe` call whose decision the
/// increase was — the tick the schedule prices it at.
fn first_scale_up(schedule: &[usize], start: usize) -> Option<usize> {
    let mut prev = start;
    for (t, &s) in schedule.iter().enumerate() {
        if s > prev {
            return Some(t);
        }
        prev = s;
    }
    None
}

/// Total (operating + switching) cost of a shard schedule under a config's
/// per-tick induced costs.
fn schedule_cost(cfg: &TopologyConfig, loads: &[u64], schedule: &[usize]) -> f64 {
    let mut total = 0.0;
    let mut prev = cfg.min_shards;
    for (t, (&e, &s)) in loads.iter().zip(schedule).enumerate() {
        total += cfg
            .tick_cost(t as u64, e as f64)
            .eval((s - cfg.min_shards) as u32);
        total += cfg.switch_cost * s.saturating_sub(prev) as f64;
        prev = s;
    }
    total
}

/// A square-wave price schedule defers scale-up migrations into the cheap
/// windows; the constant-price twin (same physics, mean price) scales up
/// immediately, inside what the real schedule prices as the expensive
/// window — and pays for it.
#[test]
fn square_wave_prices_defer_scale_ups_into_cheap_windows() {
    // Constant plateau load from tick 0. Under `f(s) = e/s + p*W*s` the
    // per-tick optimum is `sqrt(e/(p*W))`: 1 shard at the expensive
    // price, 4 shards at the cheap one, ~2 at the mean.
    const EXPENSIVE: f64 = 100.0;
    const CHEAP: f64 = 6.25;
    const WINDOW: u64 = 12;
    let loads = vec![400u64; 96];
    let physics = |price: PriceSchedule| {
        let mut p = PowerConfig::new(PowerSpec::Constant { watts: 4.0 });
        p.capacity = 1000.0; // utilization is irrelevant to a constant draw
        p.price = price;
        p
    };
    let config = |price: PriceSchedule| {
        let mut cfg = TopologyConfig::new(1, 4);
        cfg.switch_cost = 4.0;
        cfg.cooldown = 0;
        cfg.pricing = Some(physics(price));
        cfg
    };
    let wave = PriceSchedule::Step {
        period: WINDOW,
        prices: vec![EXPENSIVE, CHEAP, CHEAP, CHEAP],
    };
    let priced_cfg = config(wave.clone());
    let twin_cfg = config(PriceSchedule::Constant { price: wave.mean() });

    let priced = run_policy(&priced_cfg, &loads);
    let twin = run_policy(&twin_cfg, &loads);

    // The twin sees no price signal: it scales up as soon as the accrued
    // imbalance beats beta — inside the (real-time) expensive window.
    let twin_up = first_scale_up(&twin, 1).expect("the twin must scale up");
    assert!(
        (twin_up as u64) < WINDOW,
        "twin scaled at tick {twin_up}, expected inside the first window"
    );
    // The priced policy defers: its first scale-up waits for the cheap
    // window, and *every* scale-up lands on a cheap tick.
    let priced_up = first_scale_up(&priced, 1).expect("the priced policy must scale up");
    assert!(
        priced_up as u64 >= WINDOW,
        "priced policy scaled at tick {priced_up}, inside the expensive window \
         (schedule {priced:?})"
    );
    assert!(
        priced_up > twin_up,
        "deferral means scaling later than the twin"
    );
    let mut prev = 1;
    for (t, &s) in priced.iter().enumerate() {
        if s > prev {
            assert_eq!(
                wave.price_at(t as u64),
                CHEAP,
                "scale-up at tick {t} priced as expensive (schedule {priced:?})"
            );
        }
        prev = s;
    }
    // And deferring is cheaper under the true prices: evaluate BOTH
    // schedules on the square-wave instance.
    let priced_bill = schedule_cost(&priced_cfg, &loads, &priced);
    let twin_bill = schedule_cost(&priced_cfg, &loads, &twin);
    assert!(
        priced_bill < twin_bill,
        "price-awareness must save money: priced {priced_bill} vs twin {twin_bill}"
    );
}

// ---------------------------------------------------------------------
// Closed-form metering.
// ---------------------------------------------------------------------

/// Meter a constant `(events, machines)` sample for `ticks` ticks and
/// check joules and cost against the independently computed integral.
#[allow(clippy::too_many_arguments)]
fn check_meter_closed_form(
    idle: f64,
    premium: f64,
    capacity: f64,
    machines: u64,
    events: u64,
    ticks: usize,
    period: u64,
    prices: &[f64],
) {
    let cfg = PowerConfig {
        model: PowerSpec::Linear {
            idle,
            peak: idle + premium,
        },
        capacity,
        price: PriceSchedule::Step {
            period,
            prices: prices.to_vec(),
        },
    };
    let mut meter = EnergyMeter::new(cfg);
    for _ in 0..ticks {
        meter.observe(&[ShardSample { events, machines }]);
    }
    // Joules: the draw is constant, so the integral is a product.
    let m = machines.max(1) as f64;
    let util = (events as f64 / (m * capacity)).min(1.0);
    let per_tick = m * (idle + premium * util);
    let want_joules = ticks as f64 * per_tick;
    prop_assert!(
        (meter.joules() - want_joules).abs() <= 1e-9 * (1.0 + want_joules.abs()),
        "joules {} vs closed form {want_joules}",
        meter.joules()
    );
    // Cost: the price integral over [0, ticks) by explicit step-window
    // arithmetic — full cycles plus the overlap of the remainder with
    // each window — deliberately NOT via `price_at`.
    let cycle = period * prices.len() as u64;
    let full_cycles = ticks as u64 / cycle;
    let remainder = ticks as u64 % cycle;
    let mut price_sum = full_cycles as f64 * period as f64 * prices.iter().sum::<f64>();
    for (w, &p) in prices.iter().enumerate() {
        let start = w as u64 * period;
        let end = start + period;
        price_sum += remainder.min(end).saturating_sub(start) as f64 * p;
    }
    let want_cost = per_tick * price_sum;
    prop_assert!(
        (meter.cost() - want_cost).abs() <= 1e-6 * (1.0 + want_cost.abs()),
        "cost {} vs closed form {want_cost}",
        meter.cost()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The meter's totals equal the closed-form integral of a constant
    /// draw under a step schedule.
    #[test]
    fn meter_totals_match_the_closed_form_integral(
        idle in 0.0f64..200.0,
        premium in 0.0f64..100.0,
        capacity in 0.5f64..32.0,
        machines in 0u64..6,
        events in 0u64..200,
        ticks in 1usize..200,
        period in 1u64..7,
        prices in proptest::collection::vec(0.0f64..10.0, 1..5),
    ) {
        check_meter_closed_form(
            idle, premium, capacity, machines, events, ticks, period, &prices,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(heavy_cases(1024)))]

    /// Nightly-depth version of the metering property
    /// (`--include-ignored`).
    #[test]
    #[ignore = "heavy: run via the nightly --include-ignored CI job"]
    fn meter_totals_match_the_closed_form_integral_heavy(
        idle in 0.0f64..500.0,
        premium in 0.0f64..300.0,
        capacity in 0.1f64..64.0,
        machines in 0u64..12,
        events in 0u64..2000,
        ticks in 1usize..2000,
        period in 1u64..12,
        prices in proptest::collection::vec(0.0f64..25.0, 1..8),
    ) {
        check_meter_closed_form(
            idle, premium, capacity, machines, events, ticks, period, &prices,
        );
    }
}

// ---------------------------------------------------------------------
// Determinism: the meter is process state, never journaled.
// ---------------------------------------------------------------------

static CASE: AtomicU64 = AtomicU64::new(0);

fn case_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("rsdc-energy").join(format!(
        "{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_store(dir: &std::path::Path) -> Arc<dyn Durability> {
    Arc::new(FileStore::open(dir, FileStoreConfig { sync_every: 16 }).expect("open store"))
}

const TENANTS: usize = 6;
const SLOTS: usize = 24;

fn fleet() -> Vec<TenantConfig> {
    (0..TENANTS)
        .map(|i| {
            let policy = if i % 2 == 0 {
                PolicySpec::Lcp
            } else {
                PolicySpec::HalfStepRounded { seed: i as u64 }
            };
            TenantConfig::new(format!("t{i}"), 12, 4.0, policy)
        })
        .collect()
}

fn slot_batch(slot: usize) -> Vec<(String, Cost)> {
    (0..TENANTS)
        .map(|i| {
            let center = ((slot * 5 + i) % 13) as f64;
            (format!("t{i}"), Cost::abs(1.0, center))
        })
        .collect()
}

fn power() -> PowerConfig {
    let mut p = PowerConfig::new(PowerSpec::Linear {
        idle: 100.0,
        peak: 250.0,
    });
    p.capacity = 4.0;
    p.price = PriceSchedule::Step {
        period: 3,
        prices: vec![1.0, 5.0],
    };
    p
}

/// Reports with the attributed-energy decoration stripped: the journaled
/// state under comparison is everything *except* the meter's process
/// state.
fn report_texts_sans_energy(engine: &Engine) -> Vec<String> {
    use serde::Serialize as _;
    let mut reports = engine.report_all().expect("report");
    for r in &mut reports {
        r.energy = None;
    }
    reports
        .iter()
        .map(|r| serde_json::to_string(&r.to_value()).expect("json"))
        .collect()
}

/// Every store file under `dir` as `(relative name, bytes)`, sorted.
fn dir_bytes(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("read_dir") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(dir)
                    .expect("prefix")
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, std::fs::read(&path).expect("read")));
            }
        }
    }
    out.sort();
    out
}

/// One durable run: admit, stream `SLOTS` slots with a checkpoint every 7,
/// shut down cleanly (no final checkpoint — leave a WAL tail on disk).
fn durable_run(dir: &std::path::Path, energy: bool) -> Vec<String> {
    let engine =
        Engine::with_store(EngineConfig::with_shards(2), open_store(dir)).expect("durable engine");
    if energy {
        engine.set_power(Some(power())).expect("set_power");
    }
    for t in fleet() {
        engine.admit(t).expect("admit");
    }
    for t in 0..SLOTS {
        engine.step_batch(slot_batch(t)).expect("step");
        if (t + 1) % 7 == 0 {
            engine.checkpoint().expect("checkpoint");
        }
    }
    if energy {
        let status = engine.energy_status().expect("meter on");
        assert!(status.joules > 0.0, "the meter actually metered");
    }
    let reports = report_texts_sans_energy(&engine);
    engine.shutdown();
    reports
}

/// The determinism bar: two identical durable runs — one metered, one not
/// — leave **byte-identical** store directories.
#[test]
fn energy_accounting_never_touches_journaled_state() {
    let dir_on = case_dir("meter-on");
    let dir_off = case_dir("meter-off");
    let reports_on = durable_run(&dir_on, true);
    let reports_off = durable_run(&dir_off, false);
    assert_eq!(reports_on, reports_off, "reports agree (energy aside)");
    let (on, off) = (dir_bytes(&dir_on), dir_bytes(&dir_off));
    let on_names: Vec<&String> = on.iter().map(|(n, _)| n).collect();
    let off_names: Vec<&String> = off.iter().map(|(n, _)| n).collect();
    assert_eq!(on_names, off_names, "same store files");
    for ((name, a), (_, b)) in on.iter().zip(off.iter()) {
        assert_eq!(a, b, "store file {name} must be byte-identical");
    }
    let _ = std::fs::remove_dir_all(&dir_on);
    let _ = std::fs::remove_dir_all(&dir_off);
}

/// Crash-recovery with the meter enabled end to end reproduces the
/// reports of a meter-free uninterrupted run, and the recovered meter
/// restarts from zero (process state is not replayed).
#[test]
fn recovery_with_energy_enabled_is_byte_identical() {
    // Meter-off uninterrupted reference.
    let want = {
        let engine = Engine::new(EngineConfig::with_shards(2));
        for t in fleet() {
            engine.admit(t).expect("admit");
        }
        for t in 0..SLOTS {
            engine.step_batch(slot_batch(t)).expect("step");
        }
        let reports = report_texts_sans_energy(&engine);
        engine.shutdown();
        reports
    };
    for kill_at in [3usize, 10, 20] {
        let dir = case_dir("kill");
        let durable = Engine::with_store(EngineConfig::with_shards(2), open_store(&dir))
            .expect("durable engine");
        durable.set_power(Some(power())).expect("set_power");
        for t in fleet() {
            durable.admit(t).expect("admit");
        }
        for t in 0..kill_at {
            durable.step_batch(slot_batch(t)).expect("step");
            if (t + 1) % 4 == 0 {
                durable.checkpoint().expect("checkpoint");
            }
        }
        drop(durable); // crash

        let (recovered, report) =
            Engine::recover(EngineConfig::with_shards(2), open_store(&dir)).expect("recover");
        assert_eq!(report.replay_errors, 0);
        assert!(
            recovered.energy_status().is_none(),
            "the meter is process state: recovery must not resurrect it"
        );
        // Re-arm the meter and finish the stream: replayed + live ticks
        // must reproduce the reference reports exactly.
        recovered.set_power(Some(power())).expect("set_power");
        for t in kill_at..SLOTS {
            recovered.step_batch(slot_batch(t)).expect("step");
        }
        assert_eq!(
            report_texts_sans_energy(&recovered),
            want,
            "kill at {kill_at}: metered recovery must match the meter-free reference"
        );
        let metered = recovered.energy_status().expect("meter re-armed");
        assert_eq!(
            metered.ticks,
            (SLOTS - kill_at) as u64,
            "the fresh meter counts only post-recovery ticks"
        );
        recovered.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
