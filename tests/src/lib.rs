//! Shared test infrastructure: proptest strategies generating arbitrary
//! valid problem data (convex cost functions, instances, schedules) for the
//! cross-crate property tests under `tests/`.

#![warn(missing_docs)]

use proptest::collection::vec;
use proptest::prelude::*;
use rsdc_core::prelude::*;

/// Strategy: an arbitrary convex, non-negative table cost over `0..=m`,
/// built by integrating sorted slopes (covers the full convex class, not
/// just parametric shapes).
pub fn convex_table(m: u32) -> impl Strategy<Value = Cost> {
    (
        vec(-8.0f64..8.0, m as usize),
        0.0f64..4.0, // starting value offset
    )
        .prop_map(move |(mut slopes, start)| {
            slopes.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let mut vals = Vec::with_capacity(m as usize + 1);
            let mut v = start;
            vals.push(v);
            for s in slopes {
                v += s;
                vals.push(v);
            }
            let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
            for v in &mut vals {
                *v -= min;
            }
            Cost::table(vals)
        })
}

/// Strategy: a parametric convex cost (absolute value or quadratic).
pub fn parametric_cost(m: u32) -> impl Strategy<Value = Cost> {
    prop_oneof![
        (0.01f64..5.0, 0.0f64..(m as f64)).prop_map(|(s, c)| Cost::abs(s, c)),
        (0.01f64..2.0, 0.0f64..(m as f64), 0.0f64..2.0)
            .prop_map(|(a, c, o)| Cost::quadratic(a, c, o)),
        (0.0f64..1.0).prop_map(Cost::Const),
    ]
}

/// Strategy: any convex cost usable at fleet size `m`.
pub fn any_cost(m: u32) -> impl Strategy<Value = Cost> {
    prop_oneof![convex_table(m), parametric_cost(m)]
}

/// Strategy: a full instance with `m in m_range`, `T in t_range` and beta
/// in `[0.05, 16]`.
pub fn instance(
    m_range: std::ops::RangeInclusive<u32>,
    t_range: std::ops::RangeInclusive<usize>,
) -> impl Strategy<Value = Instance> {
    (m_range, t_range)
        .prop_flat_map(|(m, t_len)| (Just(m), 0.05f64..16.0, vec(any_cost(m), t_len)))
        .prop_map(|(m, beta, costs)| {
            Instance::new_checked(m, beta, costs).expect("strategy must emit convex costs")
        })
}

/// Strategy: a feasible schedule for the given horizon and fleet size.
pub fn schedule(m: u32, t_len: usize) -> impl Strategy<Value = Schedule> {
    vec(0u32..=m, t_len).prop_map(Schedule)
}

/// Relative-tolerance float comparison used across the suite.
pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-8 * (1.0 + a.abs().max(b.abs()))
}

/// Case count for the heavy (`#[ignore]`d) proptest variants the nightly
/// `--include-ignored` CI job runs: `RSDC_HEAVY_CASES` overrides the
/// suite's default so depth can be scaled without recompiling.
pub fn heavy_cases(default: u32) -> u32 {
    std::env::var("RSDC_HEAVY_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn convex_tables_are_convex(c in convex_table(10)) {
            prop_assert!(c.check_convex(10).is_ok());
        }

        #[test]
        fn parametric_costs_are_convex(c in parametric_cost(6)) {
            prop_assert!(c.check_convex(6).is_ok());
        }

        #[test]
        fn instances_validate(inst in instance(1..=6, 0..=6)) {
            prop_assert!(inst.m() >= 1);
            prop_assert!(inst.beta() > 0.0);
        }

        #[test]
        fn schedules_are_feasible(
            (inst, xs) in instance(2..=5, 1..=5).prop_flat_map(|i| {
                let m = i.m();
                let t = i.horizon();
                (Just(i), schedule(m, t))
            })
        ) {
            prop_assert!(xs.is_feasible(&inst));
        }
    }

    #[test]
    fn close_tolerates_scale() {
        assert!(close(1e9, 1e9 + 1.0));
        assert!(!close(1.0, 1.1));
    }
}
