//! What the engine writes into the durability layer: WAL record payloads
//! (one per state-mutating shard operation, journaled *before* the
//! operation is applied) and the full-state checkpoint document.
//!
//! The `rsdc-store` backends treat both as opaque bytes; this module owns
//! their JSON encoding. Replay is exact because batch records carry the
//! already-priced [`Cost`] of every event — recovery never re-prices loads,
//! so it is independent of per-tenant cost models.

use crate::shard::ShardMeta;
use crate::tenant::{TenantConfig, TenantSnapshot};
use rsdc_core::Cost;
use serde::{Deserialize, Serialize};

/// One event inside a journaled batch: the priced cost plus the offered
/// load that feeds shard metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JournalEvent {
    /// Tenant id.
    pub id: String,
    /// Priced cost function for the slot.
    pub cost: Cost,
    /// Offered load, when the event carried one.
    pub load: Option<f64>,
}

/// One WAL record: a state-mutating engine operation, journaled by the
/// owning shard before it applies the operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A tenant was admitted.
    Admit(TenantConfig),
    /// A batch of events was applied (including events that failed with a
    /// per-event error — replay reproduces those outcomes identically).
    Batch(Vec<JournalEvent>),
    /// End-of-stream flush for a tenant.
    Finish(String),
    /// A tenant was removed.
    Evict(String),
    /// A tenant was installed from a snapshot.
    Restore(Box<TenantSnapshot>),
    /// The ring topology changed. Journaled (write-ahead, to shard 0's
    /// WAL) before a rebalance migrates anything: a completed rebalance
    /// truncates the record away with its fencing checkpoint, so finding
    /// one during recovery means the migration was interrupted —
    /// [`Engine::recover`](crate::Engine::recover) finishes it by
    /// re-partitioning onto this topology after replay. Tenant state is
    /// topology-independent, so applying it at the end of replay is exact
    /// regardless of where the record sat in the WAL.
    Rebalance {
        /// Target shard count.
        shards: usize,
        /// Target virtual nodes per shard.
        vnodes: usize,
    },
    /// An **incremental** ring migration: only the tenants in `moved`
    /// (the old-ring/new-ring route diff) change shards. Journaled
    /// write-ahead to shard 0's WAL exactly like [`Rebalance`](Self::Rebalance)
    /// and fenced by the same full-state checkpoint; a record surviving in
    /// the WAL tail means the crash hit inside the migration window, and
    /// [`Engine::recover`](crate::Engine::recover) finishes the topology
    /// change after replay (tenant state is topology-independent, so a
    /// full in-memory re-partition onto the journaled spec is exact — the
    /// moved list documents the intended diff for operators and the
    /// recovery report).
    Migrate {
        /// Target shard count.
        shards: usize,
        /// Target virtual nodes per shard.
        vnodes: usize,
        /// Tenants whose placement the migration changes.
        moved: Vec<String>,
    },
}

impl JournalRecord {
    /// Encode for the WAL.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("journal records are serializable")
            .into_bytes()
    }

    /// Decode a WAL record payload.
    pub fn decode(bytes: &[u8]) -> Result<JournalRecord, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("journal not UTF-8: {e}"))?;
        serde_json::from_str(text).map_err(|e| format!("bad journal record: {e}"))
    }
}

/// The checkpoint document: complete engine state at one WAL boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointDoc {
    /// Checkpoint sequence number.
    pub seq: u64,
    /// Shard count of the engine that wrote the checkpoint. Shard-level
    /// aggregates are only restored when the recovering engine's shard
    /// count matches (tenant state is shard-count independent).
    pub shards: usize,
    /// Virtual nodes per shard of the ring that wrote the checkpoint
    /// (routing topology; recorded so operators can reconstruct the
    /// placement that produced the per-shard aggregates).
    pub vnodes: usize,
    /// Every tenant's full snapshot, sorted by id for deterministic bytes.
    pub tenants: Vec<TenantSnapshot>,
    /// Per-shard aggregate state, indexed by shard.
    pub shard_meta: Vec<ShardMeta>,
}

impl CheckpointDoc {
    /// Encode for the store.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("checkpoint documents are serializable")
            .into_bytes()
    }

    /// Decode a checkpoint payload. Documents written before the ring
    /// existed carry no `vnodes` field; they decode with the default ring
    /// density rather than making pre-ring data dirs unrecoverable.
    pub fn decode(bytes: &[u8]) -> Result<CheckpointDoc, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("checkpoint not UTF-8: {e}"))?;
        let mut v: serde::Value =
            serde_json::from_str(text).map_err(|e| format!("bad checkpoint: {e}"))?;
        if let serde::Value::Object(entries) = &mut v {
            if !entries.iter().any(|(k, _)| k == "vnodes") {
                entries.push((
                    "vnodes".to_string(),
                    serde_json::to_value(&crate::ring::DEFAULT_VNODES),
                ));
            }
        }
        CheckpointDoc::from_value(&v).map_err(|e| format!("bad checkpoint: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::{PolicySpec, Tenant};

    #[test]
    fn journal_record_round_trip() {
        let records = vec![
            JournalRecord::Admit(TenantConfig::new("a", 4, 2.0, PolicySpec::Lcp)),
            JournalRecord::Batch(vec![
                JournalEvent {
                    id: "a".into(),
                    cost: Cost::abs(1.5, 2.0),
                    load: Some(2.0),
                },
                JournalEvent {
                    id: "b".into(),
                    cost: Cost::Zero,
                    load: None,
                },
            ]),
            JournalRecord::Finish("a".into()),
            JournalRecord::Evict("a".into()),
            JournalRecord::Rebalance {
                shards: 4,
                vnodes: 64,
            },
            JournalRecord::Migrate {
                shards: 3,
                vnodes: 32,
                moved: vec!["a".into(), "b".into()],
            },
            JournalRecord::Migrate {
                shards: 1,
                vnodes: 64,
                moved: Vec::new(),
            },
        ];
        for rec in records {
            let bytes = rec.encode();
            let back = JournalRecord::decode(&bytes).unwrap();
            assert_eq!(bytes, back.encode(), "{rec:?}");
        }
        assert!(JournalRecord::decode(b"{\"nope\":1}").is_err());
        assert!(JournalRecord::decode(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn hetero_records_round_trip() {
        use rsdc_hetero::{FleetSpec, HeteroAlgo, ServerType};
        let fleet = FleetSpec::new(vec![
            ServerType {
                count: 2,
                beta: 1.0,
                energy: 1.0,
                capacity: 1.0,
            },
            ServerType {
                count: 2,
                beta: 3.0,
                energy: 1.5,
                capacity: 2.5,
            },
        ]);
        let cfg = TenantConfig::hetero("h", fleet, HeteroAlgo::Frontier).with_opt_tracking();

        // Admit records carry the full fleet spec.
        let admit = JournalRecord::Admit(cfg.clone());
        let bytes = admit.encode();
        let back = JournalRecord::decode(&bytes).unwrap();
        assert_eq!(bytes, back.encode());
        match back {
            JournalRecord::Admit(got) => assert_eq!(got, cfg),
            other => panic!("unexpected {other:?}"),
        }

        // Restore records and checkpoint documents carry the DP frontier
        // (inside the tenant snapshot's policy payload) bit-exactly.
        let mut tenant = Tenant::new(cfg).unwrap();
        for i in 0..9 {
            tenant.step(&Cost::Zero, Some(0.5 + i as f64)).unwrap();
        }
        let restore = JournalRecord::Restore(Box::new(tenant.snapshot()));
        let bytes = restore.encode();
        let back = JournalRecord::decode(&bytes).unwrap();
        assert_eq!(bytes, back.encode());
        let JournalRecord::Restore(snapshot) = back else {
            panic!("unexpected record");
        };
        let restored = Tenant::from_snapshot(*snapshot).unwrap();
        assert_eq!(
            serde_json::to_string(&restored.report()).unwrap(),
            serde_json::to_string(&tenant.report()).unwrap(),
        );

        let doc = CheckpointDoc {
            seq: 3,
            shards: 1,
            vnodes: 64,
            tenants: vec![tenant.snapshot()],
            shard_meta: Vec::new(),
        };
        let back = CheckpointDoc::decode(&doc.encode()).unwrap();
        assert_eq!(back.encode(), doc.encode());
    }

    #[test]
    fn pre_ring_checkpoints_decode_with_default_vnodes() {
        // A document written before PR 4 has no "vnodes" field; recovery
        // of such a data dir must not hard-fail.
        let legacy = br#"{"seq":3,"shards":2,"tenants":[],"shard_meta":[]}"#;
        let doc = CheckpointDoc::decode(legacy).expect("legacy checkpoint decodes");
        assert_eq!(doc.seq, 3);
        assert_eq!(doc.shards, 2);
        assert_eq!(doc.vnodes, crate::ring::DEFAULT_VNODES);
    }

    #[test]
    fn checkpoint_doc_round_trip() {
        let mut tenant = Tenant::new(
            TenantConfig::new("t", 5, 1.5, PolicySpec::FlcpRounded { k: 2, seed: 3 })
                .with_opt_tracking(),
        )
        .unwrap();
        for i in 0..7 {
            tenant
                .step(&Cost::abs(1.0, i as f64), Some(i as f64))
                .unwrap();
        }
        let doc = CheckpointDoc {
            seq: 9,
            shards: 2,
            vnodes: 64,
            tenants: vec![tenant.snapshot()],
            shard_meta: Vec::new(),
        };
        let back = CheckpointDoc::decode(&doc.encode()).unwrap();
        assert_eq!(back.seq, 9);
        assert_eq!(back.shards, 2);
        assert_eq!(back.tenants.len(), 1);
        assert_eq!(back.encode(), doc.encode());
    }
}
