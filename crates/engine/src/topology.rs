//! Lazy auto-rebalancing: the engine's shard count, governed by the
//! paper's own algorithm.
//!
//! The engine hosts thousands of tenants whose *server* counts are
//! right-sized by Lazy Capacity Provisioning. This module closes the loop
//! and applies the same discipline to the engine's *topology*: the shard
//! count is treated exactly like the paper's machine count, with
//!
//! * an **imbalance/operating cost** accrued every tick — running `s`
//!   shards against `E` ingested events costs
//!   `E / s + shard_cost * s` (serial work per shard, which overload
//!   makes expensive, plus a fixed per-shard overhead, which idling
//!   makes wasteful; convex in `s`, minimized near `sqrt(E/shard_cost)`),
//!   and
//! * a **switching cost** charged when the topology changes — every
//!   migrated tenant is a full snapshot/restore move, so a shard change
//!   costs roughly `(tenants / shards) * per-tenant migration cost`;
//!   [`TopologyConfig::switch_cost`] is that product, the induced `beta`.
//!
//! Each ingested batch is one logical tick (the same clock the admission
//! gate uses). The observation stream induces an instance of the paper's
//! problem over states `x = shards - min_shards in 0..=(max - min)`, and
//! the policy runs the real LCP machinery on it — an
//! [`rsdc_online::bounds::BoundTracker`] maintains the lower/upper bounds
//! `x^L_t <= x^U_t`, and the planned state moves **only when the bounds
//! force it** (eq. 13). That inherits the paper's guarantees verbatim:
//! the (imbalance + switching) cost of the topology schedule is within a
//! factor 3 of the offline-optimal schedule for the same observations
//! (Theorem 2), and the plan provably cannot flap — a grow is never
//! followed by a shrink until the accumulated imbalance evidence exceeds
//! the switching cost it would waste.
//!
//! With [`TopologyConfig::pricing`] set, the induced instance is priced
//! in **modeled watts and scheduled energy prices** instead of bare event
//! counts: the per-shard overhead term becomes
//! `price(t) * s * watts(E / (s * capacity))` — the actual (modeled)
//! energy bill of the topology. The serial-work term stays unpriced, so
//! during expensive price windows the evidence for *growing* accrues
//! slowly and grow migrations land in cheap windows (the deferral the
//! energy tests pin); the LCP machinery and its 3-competitive bound apply
//! to the priced instance verbatim, because each tick's cost is still
//! convex and the switching cost is still fixed.
//!
//! The policy is deliberately **control-plane state, not journaled** —
//! exactly like admission limits. Recovery replays the admitted traffic;
//! whatever topology decisions the old process made were fenced into the
//! WAL/checkpoint stream as [`Migrate`](crate::journal::JournalRecord)
//! records, so the *effects* recover exactly while the policy itself
//! restarts fresh (each deployment states its own knobs, and a restarted
//! engine re-learns the load in a few ticks).

use rsdc_core::Cost;
use rsdc_online::bounds::BoundTracker;
use rsdc_power::{PowerConfig, PowerModel};
use serde::{Deserialize, Serialize};

/// Knobs for the lazy auto-rebalancing policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Smallest shard count the policy may target (`>= 1`).
    pub min_shards: usize,
    /// Largest shard count the policy may target (`>= min_shards`).
    pub max_shards: usize,
    /// Switching cost per shard powered up, in the same units as the
    /// imbalance cost — the paper's `beta` for the induced instance.
    /// Calibrate as *(per-tenant migration cost) × (tenants per shard)*:
    /// consistent hashing moves ~`tenants / (n+1)` tenants per added
    /// shard, and each move is a full snapshot/restore.
    pub switch_cost: f64,
    /// Fixed per-shard, per-tick overhead (thread, memory, WAL segment)
    /// in cost units. The imbalance cost of running `s` shards against
    /// `E` events for one tick is `E / s + shard_cost * s`. Ignored in
    /// priced mode, where the modeled energy bill replaces it.
    pub shard_cost: f64,
    /// Minimum ticks between applied topology changes; also the length of
    /// the admission migration window opened after each change (during
    /// which new admits are deferred and rate-limited buckets refill at
    /// half rate). `0` applies every bound crossing immediately.
    pub cooldown: u64,
    /// Priced mode: when set, the per-shard overhead term of the induced
    /// cost is the **modeled, priced energy bill** of running the shards
    /// instead of `shard_cost * s` — see
    /// [`tick_cost`](TopologyConfig::tick_cost). `None` (the default)
    /// keeps the original event-counting mode.
    pub pricing: Option<PowerConfig>,
}

impl TopologyConfig {
    /// Policy over `[min, max]` shards with default cost knobs:
    /// `switch_cost = 8`, `shard_cost = 1`, `cooldown = 2`, counting
    /// (unpriced) mode.
    pub fn new(min_shards: usize, max_shards: usize) -> TopologyConfig {
        TopologyConfig {
            min_shards,
            max_shards,
            switch_cost: 8.0,
            shard_cost: 1.0,
            cooldown: 2,
            pricing: None,
        }
    }

    /// Reject configurations the tracker arithmetic cannot serve.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_shards < 1 {
            return Err(format!("min_shards must be >= 1, got {}", self.min_shards));
        }
        if self.max_shards < self.min_shards {
            return Err(format!(
                "max_shards {} must be >= min_shards {}",
                self.max_shards, self.min_shards
            ));
        }
        if self.max_shards - self.min_shards > 255 {
            return Err(format!(
                "shard range {}..={} is wider than 256 states",
                self.min_shards, self.max_shards
            ));
        }
        for (name, v) in [
            ("switch_cost", self.switch_cost),
            ("shard_cost", self.shard_cost),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be finite and > 0, got {v}"));
            }
        }
        if let Some(pricing) = &self.pricing {
            pricing.validate()?;
        }
        Ok(())
    }

    /// Number of policy states: `max - min + 1` shard counts.
    fn states(&self) -> u32 {
        (self.max_shards - self.min_shards) as u32
    }

    /// The induced per-tick cost function over policy states
    /// (`x = shards - min_shards`) for logical tick `tick` ingesting
    /// `events` events.
    ///
    /// **Counting mode** (`pricing: None`, the original):
    /// `f(x) = events / s + shard_cost * s` with `s = min + x` — serial
    /// work per shard plus a fixed per-shard overhead. `tick` is ignored.
    ///
    /// **Priced mode** (`pricing: Some`): the overhead term becomes the
    /// modeled energy bill,
    /// `f(x) = events / s + price(tick) * s * watts(events / (s * capacity))`
    /// — each shard is one machine of the power model, its utilization is
    /// the events it would serve against its capacity (*unclamped*:
    /// overload extrapolates the model's final segment, which keeps the
    /// energy term convex in `s` — for [`Linear`](rsdc_power::Linear) it
    /// is exactly `s * idle + const`), and the price schedule makes the
    /// bill time-varying. The serial-work delay term stays unpriced, so
    /// expensive windows penalize *extra shards*, not serving load —
    /// that asymmetry is what defers grow migrations into cheap windows.
    ///
    /// Both modes are convex in `x` (1/s terms plus, in priced mode, the
    /// perspective `s * watts(E / (s * cap))` of a convex watt curve), so
    /// the LCP bound machinery — and the offline DP the differential
    /// tests compare against — applies verbatim, tick by tick.
    pub fn tick_cost(&self, tick: u64, events: f64) -> Cost {
        let vals = (self.min_shards..=self.max_shards)
            .map(|s| {
                let serial = events / s as f64;
                match &self.pricing {
                    None => serial + self.shard_cost * s as f64,
                    Some(p) => {
                        let util = events / (s as f64 * p.capacity);
                        serial + p.price.price_at(tick) * s as f64 * p.model.watts(util)
                    }
                }
            })
            .collect();
        Cost::table(vals)
    }
}

/// A point-in-time view of the policy, reported by the wire `stats` op
/// (`autoscale` field) and the `autoscale` read-back.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologyStatus {
    /// The configuration in force.
    pub config: TopologyConfig,
    /// Shard count of the engine the policy is steering (last applied).
    pub shards: usize,
    /// Shard count the LCP plan currently wants.
    pub target: usize,
    /// Lower LCP bound, in shards (`min_shards + x^L`).
    pub lower: usize,
    /// Upper LCP bound, in shards (`min_shards + x^U`).
    pub upper: usize,
    /// Logical ticks observed.
    pub ticks: u64,
    /// Accrued imbalance/operating cost (sum of `tick_cost` evaluated at
    /// the applied topology).
    pub imbalance_cost: f64,
    /// Accrued switching cost (`switch_cost` per shard powered up).
    pub switch_cost_accrued: f64,
    /// Topology changes the policy has triggered.
    pub migrations: u64,
    /// Tenants moved by those changes (each one a snapshot/restore).
    pub tenants_moved: u64,
    /// Per-shard event-load skew observed last tick: max over mean
    /// (`1.0` = perfectly balanced, or no traffic yet).
    pub event_skew: f64,
    /// In priced mode, the energy price the *next* tick will be charged
    /// at; `None` in counting mode.
    pub price_now: Option<f64>,
    /// Per-shard event counts from the last observed tick.
    pub last_events: Vec<u64>,
    /// Last known per-shard live-tenant counts (from batch replies).
    pub last_tenants: Vec<usize>,
}

/// The lazy auto-rebalancing policy: per-shard load observations in,
/// hysteretic shard-count targets out.
///
/// Owned by the [`Engine`](crate::Engine) handle behind a mutex, fed by
/// [`step_batch`](crate::Engine::step_batch) aggregates (one
/// [`observe`](TopologyPolicy::observe) per ingested batch), and applied
/// by [`maybe_autoscale`](crate::Engine::maybe_autoscale) as incremental
/// migrations. Usable standalone too — the differential tests drive it
/// directly against the offline optimum.
#[derive(Debug, Clone)]
pub struct TopologyPolicy {
    cfg: TopologyConfig,
    tracker: BoundTracker,
    /// The LCP plan, in policy states (`shards = min + state`).
    state: u32,
    /// Shard count last applied to the engine.
    applied: usize,
    ticks: u64,
    last_change: u64,
    imbalance_cost: f64,
    switch_cost_accrued: f64,
    migrations: u64,
    tenants_moved: u64,
    last_events: Vec<u64>,
    last_tenants: Vec<usize>,
}

impl TopologyPolicy {
    /// Policy for an engine currently running `shards` shards. The LCP
    /// plan itself starts at `min_shards` (the paper's `x_0 = 0`): an
    /// over-provisioned engine is right-sized toward the observed load
    /// within the first few ticks.
    pub fn new(cfg: TopologyConfig, shards: usize) -> Result<TopologyPolicy, String> {
        cfg.validate()?;
        Ok(TopologyPolicy {
            tracker: BoundTracker::new(cfg.states(), cfg.switch_cost),
            state: 0,
            applied: shards,
            ticks: 0,
            last_change: 0,
            imbalance_cost: 0.0,
            switch_cost_accrued: 0.0,
            migrations: 0,
            tenants_moved: 0,
            last_events: Vec::new(),
            last_tenants: Vec::new(),
            cfg,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &TopologyConfig {
        &self.cfg
    }

    /// Ingest one tick of per-shard aggregates: `events[i]` is the number
    /// of events shard `i` received this batch, and `tenants` carries the
    /// `(shard, live-tenant-count)` pulses piggybacked on the batch
    /// replies (shards that received no events keep their last known
    /// count). Advances the LCP bounds by one step of the induced cost
    /// function and returns the shard count the engine *should* move to —
    /// `Some` only when the plan disagrees with the applied topology and
    /// the cooldown has elapsed.
    pub fn observe(&mut self, events: &[u64], tenants: &[(usize, usize)]) -> Option<usize> {
        // The tick being observed is 0-based — the same numbering the
        // energy meter charges, so priced instances see one consistent
        // schedule.
        let tick = self.ticks;
        self.ticks += 1;
        self.last_events = events.to_vec();
        self.last_tenants
            .resize(events.len().max(self.last_tenants.len()), 0);
        for &(shard, count) in tenants {
            if shard < self.last_tenants.len() {
                self.last_tenants[shard] = count;
            }
        }
        let total: u64 = events.iter().sum();
        let f = self.cfg.tick_cost(tick, total as f64);
        // Imbalance accrues at the *applied* topology — the cost the
        // engine actually paid this tick.
        self.imbalance_cost += f.eval(
            (self.applied.clamp(self.cfg.min_shards, self.cfg.max_shards) - self.cfg.min_shards)
                as u32,
        );
        self.tracker.step(&f);
        // Eq. 13: lazily project the previous plan into [x^L, x^U].
        self.state = self.state.clamp(self.tracker.x_low(), self.tracker.x_up());
        self.pending()
    }

    /// The shard count the engine should move to now, if any: the plan
    /// disagrees with the applied topology and the cooldown has elapsed
    /// since the last topology change — the policy's own *or* an
    /// operator's (so an autoscaler never instantly undoes a manual
    /// rebalance; it re-decides only after the window it opened).
    pub fn pending(&self) -> Option<usize> {
        let target = self.target();
        if target == self.applied {
            return None;
        }
        if self.ticks < self.last_change + self.cfg.cooldown {
            return None;
        }
        Some(target)
    }

    /// The shard count the LCP plan currently wants.
    pub fn target(&self) -> usize {
        self.cfg.min_shards + self.state as usize
    }

    /// Record that a *policy-triggered* topology change (from `from` to
    /// `to` shards, moving `moved` tenants) was applied — charges the
    /// switching cost for the growth and restarts the cooldown clock.
    pub fn record_applied(&mut self, from: usize, to: usize, moved: usize) {
        let grew = to.saturating_sub(from);
        self.switch_cost_accrued += self.cfg.switch_cost * grew as f64;
        self.note_topology(to);
        self.migrations += 1;
        self.tenants_moved += moved as u64;
    }

    /// Sync the policy with the engine's actual shard count without
    /// charging policy accounting — called by the engine after **every**
    /// successful rebalance, including operator-requested ones, so the
    /// policy never reasons (or reports) against a stale topology. An
    /// operator override also restarts the cooldown clock: the policy may
    /// still steer back toward its own plan afterwards (enabling
    /// autoscale delegates the topology), but never inside the window the
    /// operator's change just opened.
    pub fn note_topology(&mut self, shards: usize) {
        self.applied = shards;
        self.last_tenants.resize(shards, 0);
        self.last_change = self.ticks;
    }

    /// Per-shard event skew from the last tick: max over mean (`1.0` when
    /// balanced or idle).
    pub fn event_skew(&self) -> f64 {
        skew_of(&self.last_events)
    }

    /// Point-in-time status for reporting.
    pub fn status(&self) -> TopologyStatus {
        TopologyStatus {
            config: self.cfg.clone(),
            shards: self.applied,
            target: self.target(),
            lower: self.cfg.min_shards + self.tracker.x_low() as usize,
            upper: self.cfg.min_shards + self.tracker.x_up() as usize,
            ticks: self.ticks,
            imbalance_cost: self.imbalance_cost,
            switch_cost_accrued: self.switch_cost_accrued,
            migrations: self.migrations,
            tenants_moved: self.tenants_moved,
            event_skew: self.event_skew(),
            price_now: self
                .cfg
                .pricing
                .as_ref()
                .map(|p| p.price.price_at(self.ticks)),
            last_events: self.last_events.clone(),
            last_tenants: self.last_tenants.clone(),
        }
    }
}

/// Max-over-mean skew of a count vector.
///
/// The degenerate cases are pinned deliberately: an **empty vector** or a
/// window in which **every shard saw zero events** reports `1.0` —
/// "perfectly balanced", never `0.0`, `NaN` or `±inf`. Downstream math
/// (energy/utilization accounting, the wire `stats` skew fields, trace
/// events) treats skew as a safe divisor and a safe comparison operand,
/// so this function's contract is: the result is always finite and
/// `>= 1.0`. The unit test `skew_of_handles_degenerate_vectors` holds it
/// to that.
pub fn skew_of(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if counts.is_empty() || total == 0 {
        return 1.0;
    }
    let mean = total as f64 / counts.len() as f64;
    let max = counts.iter().copied().max().unwrap_or(0) as f64;
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stationary(policy: &mut TopologyPolicy, events_per_tick: u64, ticks: usize) -> Vec<usize> {
        let mut applied = Vec::with_capacity(ticks);
        for _ in 0..ticks {
            if let Some(target) = policy.observe(&[events_per_tick], &[(0, 1)]) {
                let from = policy.status().shards;
                policy.record_applied(from, target, 0);
            }
            applied.push(policy.target());
        }
        applied
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(TopologyConfig::new(1, 4).validate().is_ok());
        assert!(TopologyConfig::new(0, 4).validate().is_err());
        assert!(TopologyConfig::new(4, 2).validate().is_err());
        assert!(TopologyConfig::new(1, 300).validate().is_err());
        let mut cfg = TopologyConfig::new(1, 4);
        cfg.switch_cost = 0.0;
        assert!(cfg.validate().is_err());
        cfg = TopologyConfig::new(1, 4);
        cfg.shard_cost = f64::NAN;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn tick_cost_is_convex_and_minimized_near_the_ideal() {
        let cfg = TopologyConfig::new(1, 8);
        let f = cfg.tick_cost(0, 16.0);
        // f(x) = 16/(1+x) + (1+x): minimized at s = 4, i.e. x = 3.
        let vals: Vec<f64> = (0..8).map(|x| f.eval(x)).collect();
        let best = (0..8).min_by(|&a, &b| vals[a].partial_cmp(&vals[b]).unwrap());
        assert_eq!(best, Some(3));
        for w in vals.windows(3) {
            assert!(w[1] - w[0] <= w[2] - w[1] + 1e-12, "convexity: {w:?}");
        }
    }

    #[test]
    fn priced_tick_cost_follows_the_schedule_and_stays_convex() {
        use rsdc_power::{PowerConfig, PowerSpec, PriceSchedule};
        let mut cfg = TopologyConfig::new(1, 8);
        cfg.pricing = Some(PowerConfig {
            model: PowerSpec::Linear {
                idle: 1.0,
                peak: 3.0,
            },
            capacity: 4.0,
            price: PriceSchedule::Step {
                period: 2,
                prices: vec![1.0, 10.0],
            },
        });
        assert!(cfg.validate().is_ok());
        // Linear model, so the energy term is s*idle + (peak-idle)*E/cap
        // regardless of s: at tick 0 (price 1) and s = 2, E = 16:
        // f = 16/2 + 1 * (2*1 + 2*(16/8 - 1)*... ) — check via the model:
        // util = 16/(2*4) = 2.0, watts = 1 + 2*2 = 5, term = 2*5 = 10.
        let cheap = cfg.tick_cost(0, 16.0);
        assert!((cheap.eval(1) - (8.0 + 10.0)).abs() < 1e-12);
        // The expensive window scales only the energy term by 10.
        let dear = cfg.tick_cost(2, 16.0);
        assert!((dear.eval(1) - (8.0 + 100.0)).abs() < 1e-12);
        // Convex in the state for both windows.
        for f in [cheap, dear] {
            let vals: Vec<f64> = (0..8).map(|x| f.eval(x)).collect();
            for w in vals.windows(3) {
                assert!(w[1] - w[0] <= w[2] - w[1] + 1e-9, "convexity: {w:?}");
            }
        }
        // Counting mode ignores the tick entirely.
        let plain = TopologyConfig::new(1, 8);
        for x in 0..8 {
            assert_eq!(
                plain.tick_cost(0, 16.0).eval(x),
                plain.tick_cost(7, 16.0).eval(x)
            );
        }
        // A bad pricing config is rejected with the rest of validation.
        let mut bad = cfg.clone();
        bad.pricing.as_mut().unwrap().capacity = -1.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn sustained_load_grows_lazily_and_idles_shrink_lazily() {
        let mut cfg = TopologyConfig::new(1, 8);
        cfg.cooldown = 0;
        let mut policy = TopologyPolicy::new(cfg, 1).unwrap();
        // Heavy stationary load: the plan should climb to the ideal (4
        // shards for 16 events/tick) but not on the very first tick —
        // the switching cost must be earned first.
        let applied = stationary(&mut policy, 16, 40);
        assert_eq!(*applied.last().unwrap(), 4, "converges to the ideal");
        assert!(applied[0] < 4, "growth is lazy, not instant");
        // Now the load vanishes; the plan shrinks only after the idle
        // per-shard overhead has accumulated past the switching cost.
        let before = policy.target();
        let applied = stationary(&mut policy, 0, 60);
        assert!(applied[0] == before, "shrink is lazy too");
        assert_eq!(*applied.last().unwrap(), 1, "idle fleet right-sizes down");
    }

    #[test]
    fn stationary_load_never_flaps() {
        for events in [0u64, 3, 10, 40, 200] {
            let mut cfg = TopologyConfig::new(1, 6);
            cfg.cooldown = 0;
            let mut policy = TopologyPolicy::new(cfg, 1).unwrap();
            let applied = stationary(&mut policy, events, 120);
            for w in applied.windows(2) {
                assert!(
                    w[1] >= w[0],
                    "stationary load must never shrink after growing: {applied:?}"
                );
            }
        }
    }

    #[test]
    fn cooldown_defers_application_but_not_the_plan() {
        let mut cfg = TopologyConfig::new(1, 8);
        cfg.cooldown = 10;
        let mut policy = TopologyPolicy::new(cfg, 1).unwrap();
        let mut applied_changes = 0;
        for _ in 0..12 {
            if let Some(t) = policy.observe(&[400], &[(0, 1)]) {
                let from = policy.status().shards;
                policy.record_applied(from, t, 0);
                applied_changes += 1;
            }
        }
        // The first change applies immediately (no migration yet); further
        // changes wait out the cooldown even though the plan wants more.
        assert!(applied_changes >= 1);
        assert!(
            applied_changes <= 2,
            "cooldown must batch changes, applied {applied_changes}"
        );
        assert!(policy.target() >= policy.status().shards);
    }

    #[test]
    fn status_reports_costs_and_skew() {
        let cfg = TopologyConfig::new(2, 4);
        let mut policy = TopologyPolicy::new(cfg, 2).unwrap();
        policy.observe(&[9, 3], &[(0, 5), (1, 2)]);
        let status = policy.status();
        assert_eq!(status.shards, 2);
        assert_eq!(status.ticks, 1);
        assert!(status.imbalance_cost > 0.0);
        assert_eq!(status.switch_cost_accrued, 0.0);
        assert_eq!(status.last_events, vec![9, 3]);
        assert_eq!(status.last_tenants, vec![5, 2]);
        // max 9 over mean 6.
        assert!((status.event_skew - 1.5).abs() < 1e-12);
        assert!(status.lower >= 2 && status.upper <= 4);
        // Applying a growth charges the switching cost per shard.
        policy.record_applied(2, 4, 7);
        let status = policy.status();
        assert_eq!(status.shards, 4);
        assert_eq!(status.migrations, 1);
        assert_eq!(status.tenants_moved, 7);
        assert!((status.switch_cost_accrued - 2.0 * policy.config().switch_cost).abs() < 1e-12);
    }

    #[test]
    fn skew_of_handles_degenerate_vectors() {
        // A window where every shard saw zero events pins to exactly 1.0
        // ("balanced"), never 0/NaN/inf — energy and utilization math
        // divides by skew-shaped aggregates unchecked, so this value is a
        // documented contract, not an implementation accident.
        assert_eq!(skew_of(&[]), 1.0);
        assert_eq!(skew_of(&[0, 0]), 1.0);
        assert_eq!(skew_of(&[0; 16]), 1.0);
        assert_eq!(skew_of(&[4, 4]), 1.0);
        assert!((skew_of(&[6, 2]) - 1.5).abs() < 1e-12);
        for counts in [&[][..], &[0, 0][..], &[0, 7, 0][..], &[9, 9, 9][..]] {
            let s = skew_of(counts);
            assert!(s.is_finite() && s >= 1.0, "always a safe divisor: {s}");
        }
    }

    #[test]
    fn single_state_range_is_inert() {
        let mut policy = TopologyPolicy::new(TopologyConfig::new(3, 3), 3).unwrap();
        for _ in 0..20 {
            assert_eq!(
                policy.observe(&[100, 100, 100], &[(0, 1), (1, 1), (2, 1)]),
                None
            );
        }
        assert_eq!(policy.target(), 3);
    }
}
