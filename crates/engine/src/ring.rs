//! Consistent-hash ring with virtual nodes: the engine's tenant → shard
//! partitioner.
//!
//! The seed engine routed with a bare `hash(id) % shards`, which reassigns
//! almost every tenant when the shard count changes. The ring hashes each
//! shard onto the unit circle at `vnodes` points ("virtual nodes") and
//! routes a tenant to the first point clockwise of its own hash, so
//! growing from `n` to `n+1` shards moves only `~1/(n+1)` of the tenants —
//! the property that makes [`Engine::rebalance`](crate::Engine::rebalance)
//! cheap, since every moved tenant is a full snapshot/restore migration.
//!
//! Determinism matters as much as hash quality here: the ring is rebuilt
//! from `(shards, vnodes)` on every process start (it is *not* persisted —
//! only the two integers are, in checkpoint documents and `Rebalance`
//! journal records), so two engines with the same topology always agree on
//! every tenant's placement. Both the point hashes and the lookup key use
//! FNV-1a (the seed partitioner's hash) pushed through a splitmix64
//! finalizer: bare FNV-1a has weak avalanche on short similar strings
//! (`ring-0-17` vs `ring-0-18`, `t1` vs `t2`), which bunches a shard's
//! vnodes together on the circle and defeats the balancing they exist
//! for — the mixer spreads them to within a few percent of uniform.

use serde::{Deserialize, Serialize};

/// FNV-1a, the engine's routing hash.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// splitmix64 finalizer: full-avalanche bit mixer over the FNV digest.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^= h >> 31;
    h
}

/// Position of a byte string on the ring circle.
fn ring_hash(bytes: &[u8]) -> u64 {
    mix(fnv1a(bytes))
}

/// Ring topology: everything needed to rebuild the ring bit-identically.
/// This is what checkpoints and `Rebalance` journal records persist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingSpec {
    /// Shard (worker thread) count, `>= 1`.
    pub shards: usize,
    /// Virtual nodes per shard, `>= 1`. More vnodes spread tenants more
    /// evenly and shrink per-rebalance movement variance, at O(shards ·
    /// vnodes · log) lookup-table cost.
    pub vnodes: usize,
}

impl RingSpec {
    /// Clamp both counts to at least 1.
    pub fn new(shards: usize, vnodes: usize) -> RingSpec {
        RingSpec {
            shards: shards.max(1),
            vnodes: vnodes.max(1),
        }
    }
}

/// Default virtual nodes per shard: enough that an 8-shard ring is within
/// a few percent of uniform, small enough that building the ring is
/// negligible next to spawning the worker threads.
pub const DEFAULT_VNODES: usize = 64;

/// A consistent-hash ring: sorted `(hash, shard)` points, one lookup per
/// routed tenant (binary search + wrap).
#[derive(Debug, Clone)]
pub struct HashRing {
    spec: RingSpec,
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Build the ring for a topology. Deterministic: the point for shard
    /// `s`, vnode `v` hashes the text `ring-<s>-<v>`; ties (vanishingly
    /// rare under FNV-1a but possible) break toward the lower shard index
    /// so every engine resolves them identically.
    pub fn new(spec: RingSpec) -> HashRing {
        let mut points = Vec::with_capacity(spec.shards * spec.vnodes);
        for shard in 0..spec.shards {
            for vnode in 0..spec.vnodes {
                points.push((ring_hash(format!("ring-{shard}-{vnode}").as_bytes()), shard));
            }
        }
        points.sort_unstable();
        HashRing { spec, points }
    }

    /// The topology this ring was built from.
    pub fn spec(&self) -> RingSpec {
        self.spec
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.spec.shards
    }

    /// Route a tenant id: the shard owning the first ring point at or
    /// clockwise of `hash(id)`.
    pub fn route(&self, id: &str) -> usize {
        let key = ring_hash(id.as_bytes());
        let at = self.points.partition_point(|&(h, _)| h < key);
        self.points[if at == self.points.len() { 0 } else { at }].1
    }
}

/// The ids whose placement differs between two rings — the **exact**
/// tenant set an incremental migration from `old` to `new` must move (and
/// the set it is forbidden to exceed; the migration tests assert equality
/// both ways). Order follows the input.
pub fn moved_ids<'a>(
    old: &HashRing,
    new: &HashRing,
    ids: impl IntoIterator<Item = &'a str>,
) -> Vec<String> {
    ids.into_iter()
        .filter(|id| old.route(id) != new.route(id))
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("tenant-{i}")).collect()
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let a = HashRing::new(RingSpec::new(5, 32));
        let b = HashRing::new(RingSpec::new(5, 32));
        for id in ids(500) {
            let s = a.route(&id);
            assert!(s < 5);
            assert_eq!(s, b.route(&id), "same topology must agree on {id}");
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let ring = HashRing::new(RingSpec::new(1, DEFAULT_VNODES));
        for id in ids(64) {
            assert_eq!(ring.route(&id), 0);
        }
    }

    #[test]
    fn load_spreads_across_shards() {
        let shards = 4;
        let ring = HashRing::new(RingSpec::new(shards, DEFAULT_VNODES));
        let mut counts = vec![0usize; shards];
        let n = 4000;
        for id in ids(n) {
            counts[ring.route(&id)] += 1;
        }
        let ideal = n / shards;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > ideal / 2 && c < 2 * ideal,
                "shard {s} got {c} of {n} (ideal {ideal})"
            );
        }
    }

    #[test]
    fn growing_the_ring_moves_a_minority_of_tenants() {
        // The consistent-hashing property the rebalance cost model rests
        // on: n → n+1 shards moves roughly 1/(n+1) of the tenants, and
        // never remaps a tenant between two surviving shards.
        let n = 2000;
        for shards in [2usize, 4, 7] {
            let old = HashRing::new(RingSpec::new(shards, DEFAULT_VNODES));
            let new = HashRing::new(RingSpec::new(shards + 1, DEFAULT_VNODES));
            let mut moved = 0;
            for id in ids(n) {
                let (from, to) = (old.route(&id), new.route(&id));
                if from != to {
                    moved += 1;
                    assert_eq!(to, shards, "a moved tenant only moves to the new shard");
                }
            }
            let expected = n / (shards + 1);
            assert!(
                moved < 2 * expected,
                "{shards}→{} moved {moved}, expected ~{expected}",
                shards + 1
            );
            assert!(moved > 0, "growth must move someone");
        }
    }

    #[test]
    fn moved_ids_is_exactly_the_route_diff() {
        let old = HashRing::new(RingSpec::new(3, DEFAULT_VNODES));
        let new = HashRing::new(RingSpec::new(4, DEFAULT_VNODES));
        let all = ids(600);
        let moved = moved_ids(&old, &new, all.iter().map(|s| s.as_str()));
        assert!(!moved.is_empty() && moved.len() < all.len());
        for id in &all {
            let should_move = old.route(id) != new.route(id);
            assert_eq!(moved.contains(id), should_move, "{id}");
        }
        // Identical rings move nothing.
        let same = HashRing::new(RingSpec::new(3, DEFAULT_VNODES));
        assert!(moved_ids(&old, &same, all.iter().map(|s| s.as_str())).is_empty());
    }

    #[test]
    fn clamps_degenerate_specs() {
        let spec = RingSpec::new(0, 0);
        assert_eq!(
            spec,
            RingSpec {
                shards: 1,
                vnodes: 1
            }
        );
        assert_eq!(HashRing::new(spec).route("x"), 0);
    }
}
