//! Admission control and per-tenant QoS: the gate in front of the engine.
//!
//! Two knobs, both off by default:
//!
//! * **max tenants** — `admit` (and a `restore` that would install a *new*
//!   tenant) is refused with [`AdmissionError::Rejected`] once the fleet
//!   is full; and
//! * **per-tenant rate limits** — a token bucket per tenant: each step
//!   event spends one token, buckets hold at most `burst` tokens and
//!   refill `rate` tokens per *tick*. Events arriving on an empty bucket
//!   fail with [`AdmissionError::Throttled`].
//!
//! The clock is logical, not wall time: one tick per batch the engine
//! ingests ([`Engine::step_batch_loads`](crate::Engine::step_batch_loads)
//! advances it once per call, and the wire session flushes one batch per
//! run of consecutive `step` lines). In fleet mode one batch is one slot,
//! so `rate` reads as "sustained events per tenant per slot" and `burst`
//! as the tolerated backlog. A logical clock keeps the control plane
//! deterministic: the same JSONL input always throttles the same lines.
//!
//! Throttling happens **before journaling** — a throttled event never
//! reaches the WAL, so crash-recovery replay (which bypasses admission
//! entirely) reproduces exactly the accepted stream and stays
//! byte-identical regardless of the limits configured at recovery time.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Control-plane limits. `Default` disables everything.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Maximum live tenants (0 = unlimited).
    pub max_tenants: usize,
    /// Token-bucket refill per tick, in events (0 = unlimited, no
    /// throttling).
    pub rate: f64,
    /// Token-bucket capacity, in events. Clamped up to at least `rate`
    /// (a bucket smaller than one refill would leak tokens).
    pub burst: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_tenants: 0,
            rate: 0.0,
            burst: 0.0,
        }
    }
}

impl AdmissionConfig {
    /// True when rate limiting is active.
    pub fn limits_rate(&self) -> bool {
        self.rate > 0.0
    }

    /// The effective bucket capacity: at least one refill's worth.
    pub fn effective_burst(&self) -> f64 {
        self.burst.max(self.rate)
    }

    /// Reject non-finite or negative knobs before they poison bucket
    /// arithmetic.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [("rate", self.rate), ("burst", self.burst)] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be finite and >= 0, got {v}"));
            }
        }
        Ok(())
    }
}

/// Typed control-plane refusals.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// A new tenant was refused (fleet is at `max_tenants`).
    Rejected {
        /// Tenant that was refused.
        id: String,
        /// The cap in force.
        max_tenants: usize,
    },
    /// A step event was refused (the tenant's token bucket is empty).
    Throttled {
        /// Tenant whose event was dropped.
        id: String,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Rejected { id, max_tenants } => write!(
                f,
                "tenant {id:?} rejected: engine is at its cap of {max_tenants} tenants"
            ),
            AdmissionError::Throttled { id } => {
                write!(f, "tenant {id:?} throttled: per-tenant rate limit exceeded")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// How many ticks between bucket-prune sweeps (amortizes the map scan).
const PRUNE_EVERY: u64 = 256;

/// One tenant's token bucket, refilled lazily against the shared tick.
#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    tokens: f64,
    as_of_tick: u64,
}

/// The admission gate: config, logical clock, and per-tenant buckets.
/// Lives in the [`Engine`](crate::Engine) handle; shard workers never see
/// refused traffic.
#[derive(Debug, Default)]
pub struct AdmissionControl {
    cfg: AdmissionConfig,
    tick: u64,
    buckets: HashMap<String, TokenBucket>,
}

impl AdmissionControl {
    /// Gate with the given limits (normalized as in
    /// [`set_config`](AdmissionControl::set_config)).
    pub fn new(cfg: AdmissionConfig) -> AdmissionControl {
        let mut gate = AdmissionControl::default();
        gate.set_config(cfg);
        gate
    }

    /// The limits in force.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Replace the limits. Buckets keep their levels (tightening `burst`
    /// caps them at the next refill); disabling rate limits drops all
    /// bucket state. `burst` is normalized to the effective (rate-clamped)
    /// capacity on the way in, so [`config`](AdmissionControl::config) —
    /// and therefore the wire `limits` read-back — always reports the
    /// bucket size actually enforced.
    pub fn set_config(&mut self, mut cfg: AdmissionConfig) {
        if cfg.limits_rate() {
            cfg.burst = cfg.effective_burst();
        }
        self.cfg = cfg;
        if !cfg.limits_rate() {
            self.buckets.clear();
        }
    }

    /// Would admitting one more tenant (current live count `tenants`)
    /// exceed the cap?
    pub fn check_admit(&self, id: &str, tenants: usize) -> Result<(), AdmissionError> {
        if self.cfg.max_tenants > 0 && tenants >= self.cfg.max_tenants {
            return Err(AdmissionError::Rejected {
                id: id.to_string(),
                max_tenants: self.cfg.max_tenants,
            });
        }
        Ok(())
    }

    /// Advance the logical clock by one tick (one ingested batch).
    ///
    /// Periodically prunes buckets that have refilled to capacity: a full
    /// bucket carries no information (a fresh one starts full), so ids
    /// that stop arriving — evicted tenants, typos, hostile id floods —
    /// are reclaimed instead of accumulating forever.
    pub fn tick(&mut self) {
        self.tick += 1;
        if self.tick.is_multiple_of(PRUNE_EVERY) && !self.buckets.is_empty() {
            let rate = self.cfg.rate;
            let burst = self.cfg.effective_burst();
            let now = self.tick;
            self.buckets
                .retain(|_, b| b.tokens + now.saturating_sub(b.as_of_tick) as f64 * rate < burst);
        }
    }

    /// Spend one token from `id`'s bucket, refilling it first.
    pub fn check_step(&mut self, id: &str) -> Result<(), AdmissionError> {
        if !self.cfg.limits_rate() {
            return Ok(());
        }
        let burst = self.cfg.effective_burst();
        let bucket = self.buckets.entry(id.to_string()).or_insert(TokenBucket {
            tokens: burst,
            as_of_tick: self.tick,
        });
        let elapsed = self.tick.saturating_sub(bucket.as_of_tick);
        bucket.tokens = (bucket.tokens + elapsed as f64 * self.cfg.rate).min(burst);
        bucket.as_of_tick = self.tick;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            Err(AdmissionError::Throttled { id: id.to_string() })
        }
    }

    /// Drop a tenant's bucket (on evict).
    pub fn forget(&mut self, id: &str) {
        self.buckets.remove(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_fully_open() {
        let mut gate = AdmissionControl::default();
        gate.check_admit("a", usize::MAX - 1).unwrap();
        for _ in 0..10_000 {
            gate.check_step("a").unwrap();
        }
        assert!(gate.buckets.is_empty(), "open gate keeps no bucket state");
    }

    #[test]
    fn tenant_cap_rejects_at_the_limit() {
        let gate = AdmissionControl::new(AdmissionConfig {
            max_tenants: 2,
            ..AdmissionConfig::default()
        });
        gate.check_admit("a", 0).unwrap();
        gate.check_admit("b", 1).unwrap();
        let err = gate.check_admit("c", 2).unwrap_err();
        assert_eq!(
            err,
            AdmissionError::Rejected {
                id: "c".into(),
                max_tenants: 2
            }
        );
        assert!(err.to_string().contains("cap of 2"));
    }

    #[test]
    fn token_bucket_throttles_and_refills() {
        let mut gate = AdmissionControl::new(AdmissionConfig {
            max_tenants: 0,
            rate: 1.0,
            burst: 3.0,
        });
        // Fresh bucket starts full: the burst passes, the 4th event fails.
        for _ in 0..3 {
            gate.check_step("a").unwrap();
        }
        assert_eq!(
            gate.check_step("a").unwrap_err(),
            AdmissionError::Throttled { id: "a".into() }
        );
        // Other tenants have their own buckets.
        gate.check_step("b").unwrap();
        // One tick refills one token; two events still exceed it.
        gate.tick();
        gate.check_step("a").unwrap();
        assert!(gate.check_step("a").is_err());
        // Many idle ticks cap at burst, not unbounded credit.
        for _ in 0..100 {
            gate.tick();
        }
        for _ in 0..3 {
            gate.check_step("a").unwrap();
        }
        assert!(gate.check_step("a").is_err());
    }

    #[test]
    fn fractional_rates_accumulate_across_ticks() {
        let mut gate = AdmissionControl::new(AdmissionConfig {
            max_tenants: 0,
            rate: 0.5,
            burst: 1.0,
        });
        gate.check_step("a").unwrap();
        assert!(gate.check_step("a").is_err(), "burst of 1 is spent");
        gate.tick();
        assert!(gate.check_step("a").is_err(), "half a token is not enough");
        gate.tick();
        gate.check_step("a").unwrap();
    }

    #[test]
    fn burst_is_clamped_up_to_rate() {
        let cfg = AdmissionConfig {
            max_tenants: 0,
            rate: 4.0,
            burst: 1.0,
        };
        assert_eq!(cfg.effective_burst(), 4.0);
        assert!(AdmissionConfig {
            rate: f64::NAN,
            ..AdmissionConfig::default()
        }
        .validate()
        .is_err());
        assert!(AdmissionConfig {
            burst: -1.0,
            ..AdmissionConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn idle_buckets_are_pruned() {
        let mut gate = AdmissionControl::new(AdmissionConfig {
            max_tenants: 0,
            rate: 1.0,
            burst: 4.0,
        });
        // A burst of distinct ids (typos, hostile floods, evicted
        // tenants) must not pin memory forever.
        for i in 0..1000 {
            let _ = gate.check_step(&format!("ghost-{i}"));
        }
        assert_eq!(gate.buckets.len(), 1000);
        for _ in 0..2 * PRUNE_EVERY {
            gate.tick();
        }
        assert!(gate.buckets.is_empty(), "idle buckets refill and drop");
        // An id kept busy (spending faster than it refills, so its bucket
        // stays below capacity) survives the sweep.
        for _ in 0..PRUNE_EVERY + 8 {
            let _ = gate.check_step("busy");
            let _ = gate.check_step("busy");
            gate.tick();
        }
        assert!(gate.buckets.contains_key("busy"));
    }

    #[test]
    fn forget_and_reconfigure_reset_buckets() {
        let mut gate = AdmissionControl::new(AdmissionConfig {
            max_tenants: 0,
            rate: 1.0,
            burst: 1.0,
        });
        gate.check_step("a").unwrap();
        assert!(gate.check_step("a").is_err());
        // Evicting the tenant drops its bucket; a re-admitted tenant
        // starts with a full one.
        gate.forget("a");
        gate.check_step("a").unwrap();
        // Disabling limits clears state; re-enabling starts fresh.
        gate.set_config(AdmissionConfig::default());
        assert!(gate.buckets.is_empty());
    }
}
