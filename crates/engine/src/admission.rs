//! Admission control and per-tenant QoS: the gate in front of the engine.
//!
//! Two knobs, both off by default:
//!
//! * **max tenants** — `admit` (and a `restore` that would install a *new*
//!   tenant) is refused with [`AdmissionError::Rejected`] once the fleet
//!   is full; and
//! * **per-tenant rate limits** — a token bucket per tenant: each step
//!   event spends one token, buckets hold at most `burst` tokens and
//!   refill `rate` tokens per *tick*. Events arriving on an empty bucket
//!   fail with [`AdmissionError::Throttled`].
//!
//! The clock is logical, not wall time: one tick per batch the engine
//! ingests ([`Engine::step_batch_loads`](crate::Engine::step_batch_loads)
//! advances it once per call, and the wire session flushes one batch per
//! run of consecutive `step` lines). In fleet mode one batch is one slot,
//! so `rate` reads as "sustained events per tenant per slot" and `burst`
//! as the tolerated backlog. A logical clock keeps the control plane
//! deterministic: the same JSONL input always throttles the same lines.
//!
//! Throttling happens **before journaling** — a throttled event never
//! reaches the WAL, so crash-recovery replay (which bypasses admission
//! entirely) reproduces exactly the accepted stream and stays
//! byte-identical regardless of the limits configured at recovery time.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Control-plane limits. `Default` disables everything.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Maximum live tenants (0 = unlimited).
    pub max_tenants: usize,
    /// Token-bucket refill per tick, in events (0 = unlimited, no
    /// throttling).
    pub rate: f64,
    /// Token-bucket capacity, in events. Clamped up to at least `rate`
    /// (a bucket smaller than one refill would leak tokens).
    pub burst: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_tenants: 0,
            rate: 0.0,
            burst: 0.0,
        }
    }
}

impl AdmissionConfig {
    /// True when rate limiting is active.
    pub fn limits_rate(&self) -> bool {
        self.rate > 0.0
    }

    /// The effective bucket capacity: at least one refill's worth.
    pub fn effective_burst(&self) -> f64 {
        self.burst.max(self.rate)
    }

    /// Reject non-finite or negative knobs before they poison bucket
    /// arithmetic.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [("rate", self.rate), ("burst", self.burst)] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be finite and >= 0, got {v}"));
            }
        }
        Ok(())
    }
}

/// Typed control-plane refusals.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// A new tenant was refused (fleet is at `max_tenants`).
    Rejected {
        /// Tenant that was refused.
        id: String,
        /// The cap in force.
        max_tenants: usize,
    },
    /// A step event was refused (the tenant's token bucket is empty).
    Throttled {
        /// Tenant whose event was dropped.
        id: String,
    },
    /// A new tenant was deferred because a topology migration window is
    /// open (admitting mid-migration would shift the fleet under the
    /// topology the policy just settled; retry after the window).
    Migrating {
        /// Tenant whose admit was deferred.
        id: String,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::Rejected { id, max_tenants } => write!(
                f,
                "tenant {id:?} rejected: engine is at its cap of {max_tenants} tenants"
            ),
            AdmissionError::Throttled { id } => {
                write!(f, "tenant {id:?} throttled: per-tenant rate limit exceeded")
            }
            AdmissionError::Migrating { id } => write!(
                f,
                "tenant {id:?} deferred: topology migration window is open"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// How many ticks between bucket-prune sweeps (amortizes the map scan).
const PRUNE_EVERY: u64 = 256;

/// One tenant's token bucket, refilled lazily against the shared tick.
#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    tokens: f64,
    as_of_tick: u64,
}

/// The admission gate: config, logical clock, and per-tenant buckets.
/// Lives in the [`Engine`](crate::Engine) handle; shard workers never see
/// refused traffic.
#[derive(Debug, Default)]
pub struct AdmissionControl {
    cfg: AdmissionConfig,
    tick: u64,
    buckets: HashMap<String, TokenBucket>,
    /// Tick (exclusive) until which a topology-migration window is open:
    /// new admits are deferred and rate-limited buckets refill at half
    /// rate, so the topology settles before the fleet shifts under it
    /// again. Deferred admits age the window too (see `check_admit`).
    migration_until: u64,
}

impl AdmissionControl {
    /// Gate with the given limits (normalized as in
    /// [`set_config`](AdmissionControl::set_config)).
    pub fn new(cfg: AdmissionConfig) -> AdmissionControl {
        let mut gate = AdmissionControl::default();
        gate.set_config(cfg);
        gate
    }

    /// The limits in force.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// The gate's logical clock: ticks advanced so far, one per ingested
    /// batch. This is the engine's logical time — rebalance reports and
    /// trace events are stamped with it.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Replace the limits. Buckets keep their levels (tightening `burst`
    /// caps them at the next refill); disabling rate limits drops all
    /// bucket state. `burst` is normalized to the effective (rate-clamped)
    /// capacity on the way in, so [`config`](AdmissionControl::config) —
    /// and therefore the wire `limits` read-back — always reports the
    /// bucket size actually enforced.
    pub fn set_config(&mut self, mut cfg: AdmissionConfig) {
        if cfg.limits_rate() {
            cfg.burst = cfg.effective_burst();
        }
        self.cfg = cfg;
        if !cfg.limits_rate() {
            self.buckets.clear();
        }
    }

    /// Open (or extend) the migration window for the next `ticks` ticks.
    /// Called by the engine when an auto-triggered incremental migration
    /// lands. `0` closes nothing and opens nothing.
    ///
    /// Every bucket is settled (refilled at the full rate) up to the
    /// opening tick first, so idle spans that *straddle* the boundary are
    /// not retroactively halved — pre-window ticks fund at the full rate,
    /// only in-window ticks at half (`check_step` splits the other
    /// boundary symmetrically).
    pub fn begin_migration_window(&mut self, ticks: u64) {
        if self.cfg.limits_rate() {
            let (rate, burst, now) = (self.cfg.rate, self.cfg.effective_burst(), self.tick);
            for bucket in self.buckets.values_mut() {
                let elapsed = now.saturating_sub(bucket.as_of_tick);
                bucket.tokens = (bucket.tokens + elapsed as f64 * rate).min(burst);
                bucket.as_of_tick = now;
            }
        }
        self.migration_until = self.migration_until.max(self.tick.saturating_add(ticks));
    }

    /// Is a topology-migration window currently open?
    pub fn in_migration_window(&self) -> bool {
        self.tick < self.migration_until
    }

    /// Would admitting one more tenant (current live count `tenants`)
    /// exceed the cap — or land inside an open migration window?
    ///
    /// A deferred admit also **ages the window by one tick-equivalent**:
    /// the window is measured on the batch clock, so without this a
    /// client that paused its step stream (and therefore stopped the
    /// clock) could be told to retry forever. Either traffic or retries
    /// close the window after at most `cooldown` steps.
    pub fn check_admit(&mut self, id: &str, tenants: usize) -> Result<(), AdmissionError> {
        if self.in_migration_window() {
            self.migration_until -= 1;
            return Err(AdmissionError::Migrating { id: id.to_string() });
        }
        if self.cfg.max_tenants > 0 && tenants >= self.cfg.max_tenants {
            return Err(AdmissionError::Rejected {
                id: id.to_string(),
                max_tenants: self.cfg.max_tenants,
            });
        }
        Ok(())
    }

    /// Advance the logical clock by one tick (one ingested batch).
    ///
    /// Periodically prunes buckets that have refilled to capacity: a full
    /// bucket carries no information (a fresh one starts full), so ids
    /// that stop arriving — evicted tenants, typos, hostile id floods —
    /// are reclaimed instead of accumulating forever.
    pub fn tick(&mut self) {
        self.tick += 1;
        // The sweep estimates refill at the full rate, which overshoots
        // inside a migration window (half-rate refill) — and a pruned
        // bucket resurrects full. Windows are short; skip the sweep.
        if self.tick.is_multiple_of(PRUNE_EVERY)
            && !self.buckets.is_empty()
            && !self.in_migration_window()
        {
            let rate = self.cfg.rate;
            let burst = self.cfg.effective_burst();
            let now = self.tick;
            self.buckets
                .retain(|_, b| b.tokens + now.saturating_sub(b.as_of_tick) as f64 * rate < burst);
        }
    }

    /// Spend one token from `id`'s bucket, refilling it first. Inside a
    /// migration window buckets refill at **half** the configured rate —
    /// rate-limited tenants are throttled to half their sustained rate
    /// while a just-applied topology change settles, but never starved
    /// outright (a full bucket still serves its burst; unlimited tenants
    /// are unaffected: the window defers admits, not traffic, when no
    /// rate limit is configured).
    pub fn check_step(&mut self, id: &str) -> Result<(), AdmissionError> {
        if !self.cfg.limits_rate() {
            return Ok(());
        }
        let burst = self.cfg.effective_burst();
        let bucket = self.buckets.entry(id.to_string()).or_insert(TokenBucket {
            tokens: burst,
            as_of_tick: self.tick,
        });
        let elapsed = self.tick.saturating_sub(bucket.as_of_tick);
        // Split the elapsed span at the window's closing boundary: ticks
        // inside the window refill at half rate, ticks after it at full.
        // `begin_migration_window` settled all buckets at the opening
        // boundary, so `as_of_tick` never predates an open window and the
        // split below is exact.
        let halved = self
            .migration_until
            .saturating_sub(bucket.as_of_tick)
            .min(elapsed);
        let refill =
            halved as f64 * self.cfg.rate * 0.5 + (elapsed - halved) as f64 * self.cfg.rate;
        bucket.tokens = (bucket.tokens + refill).min(burst);
        bucket.as_of_tick = self.tick;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            Err(AdmissionError::Throttled { id: id.to_string() })
        }
    }

    /// Drop a tenant's bucket (on evict).
    pub fn forget(&mut self, id: &str) {
        self.buckets.remove(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_fully_open() {
        let mut gate = AdmissionControl::default();
        gate.check_admit("a", usize::MAX - 1).unwrap();
        for _ in 0..10_000 {
            gate.check_step("a").unwrap();
        }
        assert!(gate.buckets.is_empty(), "open gate keeps no bucket state");
    }

    #[test]
    fn tenant_cap_rejects_at_the_limit() {
        let mut gate = AdmissionControl::new(AdmissionConfig {
            max_tenants: 2,
            ..AdmissionConfig::default()
        });
        gate.check_admit("a", 0).unwrap();
        gate.check_admit("b", 1).unwrap();
        let err = gate.check_admit("c", 2).unwrap_err();
        assert_eq!(
            err,
            AdmissionError::Rejected {
                id: "c".into(),
                max_tenants: 2
            }
        );
        assert!(err.to_string().contains("cap of 2"));
    }

    #[test]
    fn token_bucket_throttles_and_refills() {
        let mut gate = AdmissionControl::new(AdmissionConfig {
            max_tenants: 0,
            rate: 1.0,
            burst: 3.0,
        });
        // Fresh bucket starts full: the burst passes, the 4th event fails.
        for _ in 0..3 {
            gate.check_step("a").unwrap();
        }
        assert_eq!(
            gate.check_step("a").unwrap_err(),
            AdmissionError::Throttled { id: "a".into() }
        );
        // Other tenants have their own buckets.
        gate.check_step("b").unwrap();
        // One tick refills one token; two events still exceed it.
        gate.tick();
        gate.check_step("a").unwrap();
        assert!(gate.check_step("a").is_err());
        // Many idle ticks cap at burst, not unbounded credit.
        for _ in 0..100 {
            gate.tick();
        }
        for _ in 0..3 {
            gate.check_step("a").unwrap();
        }
        assert!(gate.check_step("a").is_err());
    }

    #[test]
    fn fractional_rates_accumulate_across_ticks() {
        let mut gate = AdmissionControl::new(AdmissionConfig {
            max_tenants: 0,
            rate: 0.5,
            burst: 1.0,
        });
        gate.check_step("a").unwrap();
        assert!(gate.check_step("a").is_err(), "burst of 1 is spent");
        gate.tick();
        assert!(gate.check_step("a").is_err(), "half a token is not enough");
        gate.tick();
        gate.check_step("a").unwrap();
    }

    #[test]
    fn burst_is_clamped_up_to_rate() {
        let cfg = AdmissionConfig {
            max_tenants: 0,
            rate: 4.0,
            burst: 1.0,
        };
        assert_eq!(cfg.effective_burst(), 4.0);
        assert!(AdmissionConfig {
            rate: f64::NAN,
            ..AdmissionConfig::default()
        }
        .validate()
        .is_err());
        assert!(AdmissionConfig {
            burst: -1.0,
            ..AdmissionConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn idle_buckets_are_pruned() {
        let mut gate = AdmissionControl::new(AdmissionConfig {
            max_tenants: 0,
            rate: 1.0,
            burst: 4.0,
        });
        // A burst of distinct ids (typos, hostile floods, evicted
        // tenants) must not pin memory forever.
        for i in 0..1000 {
            let _ = gate.check_step(&format!("ghost-{i}"));
        }
        assert_eq!(gate.buckets.len(), 1000);
        for _ in 0..2 * PRUNE_EVERY {
            gate.tick();
        }
        assert!(gate.buckets.is_empty(), "idle buckets refill and drop");
        // An id kept busy (spending faster than it refills, so its bucket
        // stays below capacity) survives the sweep.
        for _ in 0..PRUNE_EVERY + 8 {
            let _ = gate.check_step("busy");
            let _ = gate.check_step("busy");
            gate.tick();
        }
        assert!(gate.buckets.contains_key("busy"));
    }

    #[test]
    fn migration_window_defers_admits_and_halves_refill() {
        let mut gate = AdmissionControl::new(AdmissionConfig {
            max_tenants: 0,
            rate: 2.0,
            burst: 2.0,
        });
        assert!(!gate.in_migration_window());
        gate.begin_migration_window(4);
        assert!(gate.in_migration_window());
        // Admits are deferred even with no tenant cap configured.
        let err = gate.check_admit("new", 0).unwrap_err();
        assert_eq!(err, AdmissionError::Migrating { id: "new".into() });
        assert!(err.to_string().contains("migration window"));
        // The burst still serves — the window throttles, never starves.
        gate.check_step("a").unwrap();
        gate.check_step("a").unwrap();
        assert!(gate.check_step("a").is_err());
        // Inside the window one tick refills at half rate: 1 token, not 2.
        gate.tick();
        assert!(gate.in_migration_window());
        gate.check_step("a").unwrap();
        assert!(gate.check_step("a").is_err(), "half refill serves one");
        // Past the window, refill and admits return to normal.
        gate.tick();
        gate.tick();
        gate.tick();
        assert!(!gate.in_migration_window());
        gate.check_admit("new", 0).unwrap();
        gate.check_step("a").unwrap();
        gate.check_step("a").unwrap();
        // A zero-length window never opens.
        let mut idle = AdmissionControl::default();
        idle.begin_migration_window(0);
        assert!(!idle.in_migration_window());
    }

    #[test]
    fn window_refill_splits_at_the_opening_boundary() {
        let mut gate = AdmissionControl::new(AdmissionConfig {
            max_tenants: 0,
            rate: 2.0,
            burst: 4.0,
        });
        // Drain the bucket at tick 0, idle one full-rate tick, then open
        // the window and idle one half-rate tick: the straddling span
        // must fund 2 + 1 = 3 tokens, not 2 (retroactive halving) or 4.
        for _ in 0..4 {
            gate.check_step("a").unwrap();
        }
        assert!(gate.check_step("a").is_err());
        gate.tick();
        gate.begin_migration_window(8);
        gate.tick();
        for _ in 0..3 {
            gate.check_step("a").unwrap();
        }
        assert!(
            gate.check_step("a").is_err(),
            "pre-window ticks fund at full rate, in-window ticks at half"
        );
    }

    #[test]
    fn window_refill_splits_at_the_closing_boundary() {
        let mut gate = AdmissionControl::new(AdmissionConfig {
            max_tenants: 0,
            rate: 2.0,
            burst: 10.0,
        });
        // Drain at tick 0 with a 2-tick window open; spend again at tick
        // 4: the span covers 2 in-window ticks (half rate, 1 each) and 2
        // post-window ticks (full rate, 2 each) = 6 tokens — not 8 (the
        // whole span retroactively at full rate once the window closed).
        gate.begin_migration_window(2);
        for _ in 0..10 {
            gate.check_step("a").unwrap();
        }
        assert!(gate.check_step("a").is_err());
        for _ in 0..4 {
            gate.tick();
        }
        assert!(!gate.in_migration_window());
        for _ in 0..6 {
            gate.check_step("a").unwrap();
        }
        assert!(gate.check_step("a").is_err(), "in-window ticks stay halved");
    }

    #[test]
    fn deferred_admits_age_the_window_shut() {
        // The window is measured on the batch clock; a client that pauses
        // its step stream must still be able to retry its way in.
        let mut gate = AdmissionControl::default();
        gate.begin_migration_window(3);
        for _ in 0..3 {
            assert!(gate.check_admit("new", 0).is_err());
        }
        gate.check_admit("new", 0)
            .expect("refusals age the window shut without any ticks");
    }

    #[test]
    fn migration_window_without_rate_limits_leaves_steps_alone() {
        let mut gate = AdmissionControl::default();
        gate.begin_migration_window(5);
        for _ in 0..100 {
            gate.check_step("a").unwrap();
        }
        assert!(gate.check_admit("b", 0).is_err());
    }

    #[test]
    fn forget_and_reconfigure_reset_buckets() {
        let mut gate = AdmissionControl::new(AdmissionConfig {
            max_tenants: 0,
            rate: 1.0,
            burst: 1.0,
        });
        gate.check_step("a").unwrap();
        assert!(gate.check_step("a").is_err());
        // Evicting the tenant drops its bucket; a re-admitted tenant
        // starts with a full one.
        gate.forget("a");
        gate.check_step("a").unwrap();
        // Disabling limits clears state; re-enabling starts fresh.
        gate.set_config(AdmissionConfig::default());
        assert!(gate.buckets.is_empty());
    }
}
