//! The engine handle: tenant routing, batched dispatch, lifecycle.

use crate::shard::{Event, Request, Shard, ShardStats, StepOutcome};
use crate::tenant::{TenantConfig, TenantReport, TenantSnapshot};
use crate::EngineError;
use rsdc_core::Cost;
use std::sync::mpsc::{channel, Sender};
use std::thread::JoinHandle;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of shard worker threads (tenants are hash-partitioned).
    pub shards: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
        }
    }
}

impl EngineConfig {
    /// Config with an explicit shard count (`>= 1`).
    pub fn with_shards(shards: usize) -> Self {
        EngineConfig {
            shards: shards.max(1),
        }
    }
}

/// A sharded multi-tenant streaming engine.
///
/// Tenants are hash-partitioned across `shards` worker threads; every
/// operation routes by tenant id, and batched ingestion
/// ([`Engine::step_batch`]) fans a mixed batch out to all shards in one
/// message per shard. See the crate docs for the full lifecycle.
pub struct Engine {
    senders: Vec<Sender<Request>>,
    handles: Vec<JoinHandle<()>>,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Engine {
    /// Start the shard workers.
    pub fn new(cfg: EngineConfig) -> Engine {
        let n = cfg.shards.max(1);
        let mut senders = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for index in 0..n {
            let (tx, rx) = channel();
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rsdc-shard-{index}"))
                    .spawn(move || Shard::run(index, rx))
                    .expect("spawn shard worker"),
            );
        }
        Engine { senders, handles }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    fn shard_of(&self, id: &str) -> usize {
        (fnv1a(id.as_bytes()) % self.senders.len() as u64) as usize
    }

    fn send<T>(
        &self,
        shard: usize,
        make: impl FnOnce(Sender<Result<T, EngineError>>) -> Request,
    ) -> Result<T, EngineError> {
        let (tx, rx) = channel();
        self.senders[shard]
            .send(make(tx))
            .map_err(|_| EngineError::ShardDown(shard))?;
        rx.recv().map_err(|_| EngineError::ShardDown(shard))?
    }

    /// Admit a new tenant.
    pub fn admit(&self, cfg: TenantConfig) -> Result<(), EngineError> {
        let shard = self.shard_of(&cfg.id);
        self.send(shard, |tx| Request::Admit(cfg, tx))
    }

    /// Feed one cost function to one tenant; returns the states committed
    /// by this event (empty while a lookahead window fills).
    pub fn step(&self, id: &str, cost: Cost) -> Result<Vec<u32>, EngineError> {
        let outcomes = self.step_batch(vec![(id.to_string(), cost)])?;
        match outcomes.into_iter().next() {
            Some(o) if o.error.is_none() => Ok(o.states),
            _ => Err(EngineError::UnknownTenant(id.to_string())),
        }
    }

    /// Feed a batch of `(tenant, cost)` events. Events are fanned out to
    /// the owning shards in one message per shard; per-tenant order is
    /// preserved, and outcomes come back in submission order.
    pub fn step_batch(&self, events: Vec<(String, Cost)>) -> Result<Vec<StepOutcome>, EngineError> {
        self.step_batch_loads(events.into_iter().map(|(id, c)| (id, c, None)).collect())
    }

    /// [`Engine::step_batch`] with per-event offered load, which also feeds
    /// the shard-level metrics.
    pub fn step_batch_loads(
        &self,
        events: Vec<(String, Cost, Option<f64>)>,
    ) -> Result<Vec<StepOutcome>, EngineError> {
        let n = events.len();
        let mut per_shard: Vec<Vec<Event>> = (0..self.senders.len()).map(|_| Vec::new()).collect();
        for (index, (id, cost, load)) in events.into_iter().enumerate() {
            let shard = self.shard_of(&id);
            per_shard[shard].push(Event {
                index,
                id,
                cost,
                load,
            });
        }
        let mut replies = Vec::new();
        for (shard, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let (tx, rx) = channel();
            self.senders[shard]
                .send(Request::Batch(batch, tx))
                .map_err(|_| EngineError::ShardDown(shard))?;
            replies.push((shard, rx));
        }
        let mut indexed: Vec<(usize, StepOutcome)> = Vec::with_capacity(n);
        for (shard, rx) in replies {
            indexed.extend(rx.recv().map_err(|_| EngineError::ShardDown(shard))??);
        }
        indexed.sort_by_key(|(index, _)| *index);
        Ok(indexed.into_iter().map(|(_, o)| o).collect())
    }

    /// End-of-stream for one tenant: flush pending lookahead states.
    pub fn finish(&self, id: &str) -> Result<Vec<u32>, EngineError> {
        let shard = self.shard_of(id);
        self.send(shard, |tx| Request::Finish(id.to_string(), tx))
            .map(|o| o.states)
    }

    /// Capture a tenant's full state.
    pub fn snapshot(&self, id: &str) -> Result<TenantSnapshot, EngineError> {
        let shard = self.shard_of(id);
        self.send(shard, |tx| Request::Snapshot(id.to_string(), tx))
    }

    /// Re-install a tenant from a snapshot (replaces any existing tenant
    /// with the same id).
    pub fn restore(&self, snapshot: TenantSnapshot) -> Result<(), EngineError> {
        let shard = self.shard_of(&snapshot.config.id);
        self.send(shard, |tx| Request::Restore(Box::new(snapshot), tx))
    }

    /// Remove a tenant, returning its final report.
    pub fn evict(&self, id: &str) -> Result<TenantReport, EngineError> {
        let shard = self.shard_of(id);
        self.send(shard, |tx| Request::Evict(id.to_string(), tx))
    }

    /// Report for one tenant.
    pub fn report(&self, id: &str) -> Result<TenantReport, EngineError> {
        let shard = self.shard_of(id);
        let mut reports = self.send(shard, |tx| Request::Report(Some(id.to_string()), tx))?;
        reports
            .pop()
            .ok_or_else(|| EngineError::UnknownTenant(id.to_string()))
    }

    /// Reports for every tenant, sorted by id.
    pub fn report_all(&self) -> Result<Vec<TenantReport>, EngineError> {
        let mut replies = Vec::new();
        for (shard, tx_req) in self.senders.iter().enumerate() {
            let (tx, rx) = channel();
            tx_req
                .send(Request::Report(None, tx))
                .map_err(|_| EngineError::ShardDown(shard))?;
            replies.push((shard, rx));
        }
        let mut all = Vec::new();
        for (shard, rx) in replies {
            all.extend(rx.recv().map_err(|_| EngineError::ShardDown(shard))??);
        }
        all.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(all)
    }

    /// Aggregate per-shard statistics.
    pub fn shard_stats(&self) -> Result<Vec<ShardStats>, EngineError> {
        let mut replies = Vec::new();
        for (shard, tx_req) in self.senders.iter().enumerate() {
            let (tx, rx) = channel();
            tx_req
                .send(Request::Stats(tx))
                .map_err(|_| EngineError::ShardDown(shard))?;
            replies.push((shard, rx));
        }
        let mut all = Vec::new();
        for (shard, rx) in replies {
            all.push(rx.recv().map_err(|_| EngineError::ShardDown(shard))?);
        }
        Ok(all)
    }

    /// Stop all shard workers and join their threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Request::Shutdown);
        }
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
