//! The engine handle: tenant routing, batched dispatch, lifecycle,
//! checkpointing and crash recovery.

use crate::journal::{CheckpointDoc, JournalRecord};
use crate::shard::{Event, Request, Shard, ShardStats, StepOutcome};
use crate::tenant::{TenantConfig, TenantReport, TenantSnapshot};
use crate::EngineError;
use rsdc_core::Cost;
use rsdc_store::{Durability, NullStore};
use serde::{Deserialize, Serialize};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of shard worker threads (tenants are hash-partitioned).
    pub shards: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
        }
    }
}

impl EngineConfig {
    /// Config with an explicit shard count (`>= 1`).
    pub fn with_shards(shards: usize) -> Self {
        EngineConfig {
            shards: shards.max(1),
        }
    }
}

/// A sharded multi-tenant streaming engine.
///
/// Tenants are hash-partitioned across `shards` worker threads; every
/// operation routes by tenant id, and batched ingestion
/// ([`Engine::step_batch`]) fans a mixed batch out to all shards in one
/// message per shard. See the crate docs for the full lifecycle.
pub struct Engine {
    senders: Vec<Sender<Request>>,
    handles: Vec<JoinHandle<()>>,
    store: Arc<dyn Durability>,
}

/// What [`Engine::checkpoint`] produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointReport {
    /// Checkpoint sequence number.
    pub seq: u64,
    /// Tenants captured.
    pub tenants: usize,
    /// False when the engine runs on a [`NullStore`] (nothing persisted).
    pub durable: bool,
}

/// What [`Engine::recover`] reconstructed from disk.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Sequence of the checkpoint the engine was rebuilt from (0 = none,
    /// the WAL alone carried the state).
    pub checkpoint_seq: u64,
    /// Tenants restored from the checkpoint.
    pub tenants_restored: usize,
    /// Whether shard-level aggregates (stats, load metrics) were restored;
    /// false when the recovering engine's shard count differs from the
    /// checkpoint's (tenant state is still exact either way).
    pub shard_meta_restored: bool,
    /// WAL segments replayed.
    pub segments: usize,
    /// WAL records replayed.
    pub records_replayed: usize,
    /// Stream events re-applied from replayed batch records.
    pub events_replayed: usize,
    /// Records that failed to decode or re-apply (deterministic failures
    /// such as a journaled duplicate admit count here too).
    pub replay_errors: usize,
    /// Segments whose torn/corrupt tail was truncated back to the last
    /// valid record.
    pub corrupt_segments: usize,
    /// Newer-but-invalid checkpoint files skipped by the store scan.
    pub checkpoints_skipped: usize,
    /// Sequence of the fresh checkpoint written right after recovery.
    pub post_checkpoint_seq: u64,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Engine {
    /// Start the shard workers with no durability (a [`NullStore`]).
    pub fn new(cfg: EngineConfig) -> Engine {
        Engine::spawn(cfg, Arc::new(NullStore))
    }

    /// Start a durable engine journaling through `store`. Fails when the
    /// store already holds state — recover with [`Engine::recover`]
    /// instead of silently appending a second, inconsistent history.
    pub fn with_store(
        cfg: EngineConfig,
        store: Arc<dyn Durability>,
    ) -> Result<Engine, EngineError> {
        if store.has_state().map_err(EngineError::from_store)? {
            return Err(EngineError::Store(
                "store already holds a checkpoint or WAL data; use Engine::recover".into(),
            ));
        }
        let engine = Engine::spawn(cfg, store);
        engine.attach_store()?;
        Ok(engine)
    }

    fn spawn(cfg: EngineConfig, store: Arc<dyn Durability>) -> Engine {
        let n = cfg.shards.max(1);
        let mut senders = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for index in 0..n {
            let (tx, rx) = channel();
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rsdc-shard-{index}"))
                    .spawn(move || Shard::run(index, rx))
                    .expect("spawn shard worker"),
            );
        }
        Engine {
            senders,
            handles,
            store,
        }
    }

    /// Hand every shard its journaling handle. Mutations before this point
    /// are not journaled, which is exactly what recovery replay needs.
    fn attach_store(&self) -> Result<(), EngineError> {
        for shard in 0..self.senders.len() {
            let store = self.store.clone();
            self.send_plain(shard, move |tx| Request::AttachStore(store, tx))?;
        }
        Ok(())
    }

    /// The durability backend this engine journals through.
    pub fn store(&self) -> &Arc<dyn Durability> {
        &self.store
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    fn shard_of(&self, id: &str) -> usize {
        (fnv1a(id.as_bytes()) % self.senders.len() as u64) as usize
    }

    fn send<T>(
        &self,
        shard: usize,
        make: impl FnOnce(Sender<Result<T, EngineError>>) -> Request,
    ) -> Result<T, EngineError> {
        self.send_plain(shard, make)?
    }

    fn send_plain<T>(
        &self,
        shard: usize,
        make: impl FnOnce(Sender<T>) -> Request,
    ) -> Result<T, EngineError> {
        let (tx, rx) = channel();
        self.senders[shard]
            .send(make(tx))
            .map_err(|_| EngineError::ShardDown(shard))?;
        rx.recv().map_err(|_| EngineError::ShardDown(shard))
    }

    /// Admit a new tenant.
    pub fn admit(&self, cfg: TenantConfig) -> Result<(), EngineError> {
        let shard = self.shard_of(&cfg.id);
        self.send(shard, |tx| Request::Admit(cfg, tx))
    }

    /// Classify a per-event error string back into the [`EngineError`] it
    /// was rendered from: the unknown-tenant rendering is produced in
    /// exactly one place (the shard's batch loop), everything else is a
    /// policy-level step failure.
    fn classify_event_error(id: &str, message: String) -> EngineError {
        if message == EngineError::UnknownTenant(id.to_string()).to_string() {
            EngineError::UnknownTenant(id.to_string())
        } else {
            // Per-event errors are rendered rsdc_core::Errors; strip the
            // rendering prefix before re-wrapping so the message is not
            // double-prefixed on display.
            let message = message
                .strip_prefix("invalid parameter: ")
                .map(str::to_string)
                .unwrap_or(message);
            EngineError::Policy(rsdc_core::Error::InvalidParameter(message))
        }
    }

    /// Feed one cost function to one tenant; returns the states committed
    /// by this event (empty while a lookahead window fills).
    pub fn step(&self, id: &str, cost: Cost) -> Result<Vec<u32>, EngineError> {
        let outcomes = self.step_batch(vec![(id.to_string(), cost)])?;
        match outcomes.into_iter().next() {
            Some(o) => match o.error {
                None => Ok(o.states),
                Some(message) => Err(Engine::classify_event_error(id, message)),
            },
            None => Err(EngineError::UnknownTenant(id.to_string())),
        }
    }

    /// Fetch a tenant's static configuration.
    pub fn tenant_config(&self, id: &str) -> Result<crate::TenantConfig, EngineError> {
        let shard = self.shard_of(id);
        self.send(shard, |tx| Request::Config(id.to_string(), tx))
    }

    /// Feed one offered load to one **heterogeneous** tenant; returns the
    /// full outcome (total-machine states plus the committed
    /// configurations). Scalar tenants are rejected: their loads must be
    /// priced into a [`Cost`] first (the wire session does this through
    /// the tenant's cost model) — silently ingesting an unpriced load
    /// would produce wrong accounting with an `Ok` result.
    pub fn step_load(&self, id: &str, load: f64) -> Result<StepOutcome, EngineError> {
        if !self.tenant_config(id)?.policy.is_hetero() {
            return Err(EngineError::Policy(rsdc_core::Error::InvalidParameter(
                format!("tenant {id:?} is not heterogeneous: price the load into a Cost and use step instead"),
            )));
        }
        let outcomes = self.step_batch_loads(vec![(id.to_string(), Cost::Zero, Some(load))])?;
        let outcome = outcomes
            .into_iter()
            .next()
            .ok_or_else(|| EngineError::UnknownTenant(id.to_string()))?;
        match outcome.error {
            None => Ok(outcome),
            Some(message) => Err(Engine::classify_event_error(id, message)),
        }
    }

    /// Feed a batch of `(tenant, cost)` events. Events are fanned out to
    /// the owning shards in one message per shard; per-tenant order is
    /// preserved, and outcomes come back in submission order.
    pub fn step_batch(&self, events: Vec<(String, Cost)>) -> Result<Vec<StepOutcome>, EngineError> {
        self.step_batch_loads(events.into_iter().map(|(id, c)| (id, c, None)).collect())
    }

    /// [`Engine::step_batch`] with per-event offered load, which also feeds
    /// the shard-level metrics.
    pub fn step_batch_loads(
        &self,
        events: Vec<(String, Cost, Option<f64>)>,
    ) -> Result<Vec<StepOutcome>, EngineError> {
        let n = events.len();
        let mut per_shard: Vec<Vec<Event>> = (0..self.senders.len()).map(|_| Vec::new()).collect();
        for (index, (id, cost, load)) in events.into_iter().enumerate() {
            let shard = self.shard_of(&id);
            per_shard[shard].push(Event {
                index,
                id,
                cost,
                load,
            });
        }
        let mut replies = Vec::new();
        for (shard, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let (tx, rx) = channel();
            self.senders[shard]
                .send(Request::Batch(batch, tx))
                .map_err(|_| EngineError::ShardDown(shard))?;
            replies.push((shard, rx));
        }
        let mut indexed: Vec<(usize, StepOutcome)> = Vec::with_capacity(n);
        for (shard, rx) in replies {
            indexed.extend(rx.recv().map_err(|_| EngineError::ShardDown(shard))??);
        }
        indexed.sort_by_key(|(index, _)| *index);
        Ok(indexed.into_iter().map(|(_, o)| o).collect())
    }

    /// End-of-stream for one tenant: flush pending lookahead states.
    pub fn finish(&self, id: &str) -> Result<Vec<u32>, EngineError> {
        let shard = self.shard_of(id);
        self.send(shard, |tx| Request::Finish(id.to_string(), tx))
            .map(|o| o.states)
    }

    /// Capture a tenant's full state.
    pub fn snapshot(&self, id: &str) -> Result<TenantSnapshot, EngineError> {
        let shard = self.shard_of(id);
        self.send(shard, |tx| Request::Snapshot(id.to_string(), tx))
    }

    /// Re-install a tenant from a snapshot (replaces any existing tenant
    /// with the same id).
    pub fn restore(&self, snapshot: TenantSnapshot) -> Result<(), EngineError> {
        let shard = self.shard_of(&snapshot.config.id);
        self.send(shard, |tx| Request::Restore(Box::new(snapshot), tx))
    }

    /// Remove a tenant, returning its final report.
    pub fn evict(&self, id: &str) -> Result<TenantReport, EngineError> {
        let shard = self.shard_of(id);
        self.send(shard, |tx| Request::Evict(id.to_string(), tx))
    }

    /// Report for one tenant.
    pub fn report(&self, id: &str) -> Result<TenantReport, EngineError> {
        let shard = self.shard_of(id);
        let mut reports = self.send(shard, |tx| Request::Report(Some(id.to_string()), tx))?;
        reports
            .pop()
            .ok_or_else(|| EngineError::UnknownTenant(id.to_string()))
    }

    /// Reports for every tenant, sorted by id.
    pub fn report_all(&self) -> Result<Vec<TenantReport>, EngineError> {
        let mut replies = Vec::new();
        for (shard, tx_req) in self.senders.iter().enumerate() {
            let (tx, rx) = channel();
            tx_req
                .send(Request::Report(None, tx))
                .map_err(|_| EngineError::ShardDown(shard))?;
            replies.push((shard, rx));
        }
        let mut all = Vec::new();
        for (shard, rx) in replies {
            all.extend(rx.recv().map_err(|_| EngineError::ShardDown(shard))??);
        }
        all.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(all)
    }

    /// Aggregate per-shard statistics.
    pub fn shard_stats(&self) -> Result<Vec<ShardStats>, EngineError> {
        let mut replies = Vec::new();
        for (shard, tx_req) in self.senders.iter().enumerate() {
            let (tx, rx) = channel();
            tx_req
                .send(Request::Stats(tx))
                .map_err(|_| EngineError::ShardDown(shard))?;
            replies.push((shard, rx));
        }
        let mut all = Vec::new();
        for (shard, rx) in replies {
            all.push(rx.recv().map_err(|_| EngineError::ShardDown(shard))?);
        }
        Ok(all)
    }

    /// Ids of every tenant across all shards, sorted.
    pub fn tenant_ids(&self) -> Result<Vec<String>, EngineError> {
        let mut replies = Vec::new();
        for (shard, tx_req) in self.senders.iter().enumerate() {
            let (tx, rx) = channel();
            tx_req
                .send(Request::TenantIds(tx))
                .map_err(|_| EngineError::ShardDown(shard))?;
            replies.push((shard, rx));
        }
        let mut all = Vec::new();
        for (shard, rx) in replies {
            all.extend(rx.recv().map_err(|_| EngineError::ShardDown(shard))?);
        }
        all.sort_unstable();
        Ok(all)
    }

    /// Capture a full-state checkpoint and truncate the write-ahead log.
    ///
    /// Each shard rotates its WAL at the exact request-stream position of
    /// its snapshot, so the published document plus the (now empty) new
    /// segments are equivalent to the old checkpoint plus the old WAL —
    /// committing the document then deletes the superseded files. On a
    /// [`NullStore`] engine this is a consistent no-op dump
    /// (`durable: false`).
    pub fn checkpoint(&self) -> Result<CheckpointReport, EngineError> {
        let durable = self.store.is_durable();
        let seq = self
            .store
            .begin_checkpoint()
            .map_err(EngineError::from_store)?;
        let mut replies = Vec::new();
        for (shard, tx_req) in self.senders.iter().enumerate() {
            let (tx, rx) = channel();
            tx_req
                .send(Request::Checkpoint(seq, tx))
                .map_err(|_| EngineError::ShardDown(shard))?;
            replies.push((shard, rx));
        }
        let mut tenants = Vec::new();
        let mut shard_meta = Vec::new();
        for (shard, rx) in replies {
            let dump = rx.recv().map_err(|_| EngineError::ShardDown(shard))??;
            tenants.extend(dump.snapshots);
            shard_meta.push(dump.meta);
        }
        tenants.sort_by(|a, b| a.config.id.cmp(&b.config.id));
        let count = tenants.len();
        if durable {
            let doc = CheckpointDoc {
                seq,
                shards: self.shards(),
                tenants,
                shard_meta,
            };
            self.store
                .commit_checkpoint(seq, &doc.encode())
                .map_err(EngineError::from_store)?;
        }
        Ok(CheckpointReport {
            seq,
            tenants: count,
            durable,
        })
    }

    /// Rebuild the pre-crash engine from a store: load the newest valid
    /// checkpoint, replay the WAL tail on top of it, then write a fresh
    /// checkpoint so the next restart starts from a compact log.
    ///
    /// Replay happens before the store is attached to the shards, so
    /// replayed operations are not re-journaled. Per-tenant state is exact
    /// for any shard count; shard-level aggregates are only carried over
    /// when the shard count matches the checkpoint's.
    pub fn recover(
        cfg: EngineConfig,
        store: Arc<dyn Durability>,
    ) -> Result<(Engine, RecoveryReport), EngineError> {
        let recovery = store.recover().map_err(EngineError::from_store)?;
        let engine = Engine::spawn(cfg, store);
        let mut report = RecoveryReport {
            checkpoints_skipped: recovery.checkpoints_skipped,
            ..RecoveryReport::default()
        };
        if let Some(blob) = &recovery.checkpoint {
            let doc = CheckpointDoc::decode(&blob.payload).map_err(EngineError::Store)?;
            report.checkpoint_seq = doc.seq;
            for snapshot in doc.tenants {
                engine.restore(snapshot)?;
                report.tenants_restored += 1;
            }
            if doc.shards == engine.shards() {
                for meta in doc.shard_meta {
                    let shard = meta.shard;
                    engine.send_plain(shard, move |tx| Request::InstallMeta(Box::new(meta), tx))?;
                }
                report.shard_meta_restored = true;
            }
        }
        for segment in &recovery.segments {
            report.segments += 1;
            if segment.dropped_bytes > 0 {
                report.corrupt_segments += 1;
            }
            for bytes in &segment.records {
                report.records_replayed += 1;
                match JournalRecord::decode(bytes) {
                    Err(_) => report.replay_errors += 1,
                    Ok(record) => engine.replay(record, &mut report),
                }
            }
        }
        engine.attach_store()?;
        report.post_checkpoint_seq = engine.checkpoint()?.seq;
        Ok((engine, report))
    }

    /// Re-apply one journaled operation during recovery. Failures are
    /// counted, not fatal: a journaled operation that failed originally
    /// (e.g. an evict raced with an admit) fails identically here.
    fn replay(&self, record: JournalRecord, report: &mut RecoveryReport) {
        let outcome = match record {
            JournalRecord::Admit(cfg) => self.admit(cfg),
            JournalRecord::Batch(events) => {
                match self
                    .step_batch_loads(events.into_iter().map(|e| (e.id, e.cost, e.load)).collect())
                {
                    Ok(outcomes) => {
                        report.events_replayed += outcomes.len();
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            }
            JournalRecord::Finish(id) => self.finish(&id).map(|_| ()),
            JournalRecord::Evict(id) => self.evict(&id).map(|_| ()),
            JournalRecord::Restore(snapshot) => self.restore(*snapshot),
        };
        if outcome.is_err() {
            report.replay_errors += 1;
        }
    }

    /// Stop all shard workers and join their threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Request::Shutdown);
        }
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
