//! The engine handle: tenant routing, batched dispatch, lifecycle,
//! admission control, checkpointing, crash recovery, live ring
//! rebalancing (full and incremental), and lazy auto-rebalancing.

use crate::admission::{AdmissionConfig, AdmissionControl, AdmissionError};
use crate::intern::{Interner, UNKNOWN_KEY};
use crate::journal::{CheckpointDoc, JournalRecord};
use crate::obs::EngineObs;
use crate::power::PowerRuntime;
use crate::ring::{moved_ids, HashRing, RingSpec, DEFAULT_VNODES};
use crate::shard::{Event, Request, Shard, ShardMeta, ShardStats, StepOutcome};
use crate::statelist::StateList;
use crate::tenant::{TenantConfig, TenantReport, TenantSnapshot};
use crate::topology::{TopologyConfig, TopologyPolicy, TopologyStatus};
use crate::EngineError;
use rsdc_core::Cost;
use rsdc_power::{EnergyStatus, PowerConfig};
use rsdc_store::{Durability, InstrumentedStore, NullStore};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of shard worker threads (tenants are partitioned by the
    /// consistent-hash ring).
    pub shards: usize,
    /// Virtual nodes per shard on the ring.
    pub vnodes: usize,
    /// Whether the metrics registry records anything. `false` bakes a
    /// no-op flag into every handle (the ingestion hot path pays one
    /// branch). Metrics live outside journaled state either way: this
    /// flag never changes a journaled or recovered byte.
    pub metrics: bool,
    /// Control-plane trace ring capacity, in events (clamped to `>= 1`;
    /// tracing is off whenever `metrics` is off).
    pub trace_capacity: usize,
}

/// Default control-plane trace capacity, in events.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            vnodes: DEFAULT_VNODES,
            metrics: true,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }
}

impl EngineConfig {
    /// Config with an explicit shard count (`>= 1`) and the default ring.
    pub fn with_shards(shards: usize) -> Self {
        EngineConfig {
            shards: shards.max(1),
            vnodes: DEFAULT_VNODES,
            metrics: true,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// Config with an explicit shard count and virtual-node count.
    pub fn with_topology(shards: usize, vnodes: usize) -> Self {
        EngineConfig {
            shards: shards.max(1),
            vnodes: vnodes.max(1),
            metrics: true,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// The ring topology this config describes.
    pub fn ring_spec(&self) -> RingSpec {
        RingSpec::new(self.shards, self.vnodes)
    }
}

/// A sharded multi-tenant streaming engine.
///
/// Tenants are partitioned across `shards` worker threads by a
/// consistent-hash ring ([`crate::ring`]); every operation routes by
/// tenant id, and batched ingestion ([`Engine::step_batch`]) fans a mixed
/// batch out to all shards in one message per shard. The handle also owns
/// the control plane: admission limits ([`Engine::set_limits`]) are
/// enforced here, before anything reaches a shard or its WAL, and
/// [`Engine::rebalance`] migrates tenants onto a new topology without a
/// restart. See the crate docs for the full lifecycle.
pub struct Engine {
    senders: Vec<Sender<Request>>,
    handles: Vec<JoinHandle<()>>,
    ring: HashRing,
    /// The journaling handle shards write through: `raw_store` wrapped in
    /// an [`InstrumentedStore`] reporting to `obs`.
    store: Arc<dyn Durability>,
    /// The backend as constructed, before instrumentation — what recovery
    /// re-wraps, so stores never nest observers.
    raw_store: Arc<dyn Durability>,
    obs: Arc<EngineObs>,
    attached: AtomicBool,
    admission: Mutex<AdmissionControl>,
    topology: Mutex<Option<TopologyPolicy>>,
    power: Mutex<Option<PowerRuntime>>,
    /// Tenant-id intern table: hash once at admit, route on the integer.
    intern: Mutex<Interner>,
    /// Reusable fan-out buffers for the batched ingest path.
    dispatch: Mutex<DispatchPool>,
}

/// A step event with its tenant id already resolved against the engine's
/// intern table: the shared id string plus the slab key shards index by.
/// Build these once with [`Engine::resolve`] and feed them through
/// [`Engine::step_events`] with reused buffers — the steady-state path
/// then performs zero per-event allocations.
pub struct StepEvent {
    /// Interned tenant id.
    pub id: Arc<str>,
    /// Slab key ([`crate::intern::UNKNOWN_KEY`] for never-admitted ids).
    pub key: u32,
    /// Cost function for this slot.
    pub cost: Cost,
    /// Offered load, when known.
    pub load: Option<f64>,
}

/// Reusable buffers behind [`Engine::step_events`]: one event vector per
/// shard (recycled through the [`crate::shard::BatchReply`]) and the
/// order-restoring outcome staging area. Lives behind its own mutex so
/// concurrent callers serialize on dispatch, not on tenant state.
#[derive(Default)]
struct DispatchPool {
    per_shard: Vec<Vec<Event>>,
    indexed: Vec<(usize, StepOutcome)>,
}

/// What [`Engine::checkpoint`] produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointReport {
    /// Checkpoint sequence number.
    pub seq: u64,
    /// Tenants captured.
    pub tenants: usize,
    /// False when the engine runs on a [`NullStore`] (nothing persisted).
    pub durable: bool,
}

/// What [`Engine::rebalance`] / [`Engine::rebalance_incremental`] did.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RebalanceReport {
    /// Shard count after the rebalance.
    pub shards: usize,
    /// Virtual nodes per shard after the rebalance.
    pub vnodes: usize,
    /// Live tenants the operation re-installed onto workers: the whole
    /// fleet for a full rebalance (every tenant restarts on a fresh
    /// worker thread), only the ring diff for an incremental one.
    pub tenants: usize,
    /// Tenants whose ring placement changed (the consistent-hashing
    /// minority; the rest stayed on a same-index shard).
    pub moved: usize,
    /// The moved tenants themselves, sorted by id. Populated only by the
    /// incremental path, where "exactly the ring diff moved" is the
    /// contract the migration tests hold it to; the full path reports an
    /// empty list (everything was re-installed anyway).
    pub moved_ids: Vec<String>,
    /// True for an incremental (diff-only) migration, false for a full
    /// drain-everything rebalance.
    pub incremental: bool,
    /// Sequence of the fencing checkpoint (0 on a non-durable engine).
    pub seq: u64,
    /// Whether the topology change was fenced by a durable checkpoint.
    pub durable: bool,
    /// The engine's logical clock (admission-gate ticks, one per ingested
    /// batch) when the operation ran — correlates the report with trace
    /// events and `autoscale` read-backs.
    pub tick: u64,
}

/// What [`Engine::recover`] reconstructed from disk.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Sequence of the checkpoint the engine was rebuilt from (0 = none,
    /// the WAL alone carried the state).
    pub checkpoint_seq: u64,
    /// Tenants restored from the checkpoint.
    pub tenants_restored: usize,
    /// Whether shard-level aggregates (stats, load metrics) were restored;
    /// false when the recovering engine's shard count differs from the
    /// checkpoint's (tenant state is still exact either way).
    pub shard_meta_restored: bool,
    /// WAL segments replayed.
    pub segments: usize,
    /// WAL records replayed.
    pub records_replayed: usize,
    /// Stream events re-applied from replayed batch records.
    pub events_replayed: usize,
    /// Records that failed to decode or re-apply (deterministic failures
    /// such as a journaled duplicate admit count here too).
    pub replay_errors: usize,
    /// Segments whose torn/corrupt tail was truncated back to the last
    /// valid record.
    pub corrupt_segments: usize,
    /// Newer-but-invalid checkpoint files skipped by the store scan.
    pub checkpoints_skipped: usize,
    /// Interrupted `Rebalance` records found in the WAL tail. The last
    /// topology record's spec (`Rebalance` or `Migrate`, whichever came
    /// later) is applied after replay, completing the change the crash
    /// cut short.
    pub rebalances_replayed: usize,
    /// Interrupted incremental `Migrate` records found in the WAL tail —
    /// counted separately so an operator can tell which migration path
    /// the crash interrupted (both are completed the same way).
    pub migrations_replayed: usize,
    /// Sequence of the fresh checkpoint written right after recovery.
    pub post_checkpoint_seq: u64,
}

impl Engine {
    /// Start the shard workers with no durability (a [`NullStore`]).
    pub fn new(cfg: EngineConfig) -> Engine {
        Engine::spawn(cfg, Arc::new(NullStore))
    }

    /// Start a durable engine journaling through `store`. Fails when the
    /// store already holds state — recover with [`Engine::recover`]
    /// instead of silently appending a second, inconsistent history.
    pub fn with_store(
        cfg: EngineConfig,
        store: Arc<dyn Durability>,
    ) -> Result<Engine, EngineError> {
        if store.has_state().map_err(EngineError::from_store)? {
            return Err(EngineError::Store(
                "store already holds a checkpoint or WAL data; use Engine::recover".into(),
            ));
        }
        let engine = Engine::spawn(cfg, store);
        engine.attach_store()?;
        Ok(engine)
    }

    fn spawn_workers(
        n: usize,
        obs: &Arc<EngineObs>,
    ) -> (Vec<Sender<Request>>, Vec<JoinHandle<()>>) {
        Engine::spawn_worker_range(0, n, obs)
    }

    /// Spawn workers for shard indices `from..to` (an incremental grow
    /// spawns only the new indices).
    fn spawn_worker_range(
        from: usize,
        to: usize,
        obs: &Arc<EngineObs>,
    ) -> (Vec<Sender<Request>>, Vec<JoinHandle<()>>) {
        let mut senders = Vec::with_capacity(to.saturating_sub(from));
        let mut handles = Vec::with_capacity(to.saturating_sub(from));
        for index in from..to {
            let (tx, rx) = channel();
            senders.push(tx);
            let obs = obs.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rsdc-shard-{index}"))
                    .spawn(move || Shard::run(index, rx, obs))
                    .expect("spawn shard worker"),
            );
        }
        (senders, handles)
    }

    fn spawn(cfg: EngineConfig, store: Arc<dyn Durability>) -> Engine {
        let spec = cfg.ring_spec();
        let obs = Arc::new(EngineObs::new(cfg.metrics, cfg.trace_capacity));
        // Shards journal through the instrumented wrapper; the raw handle
        // is kept for recovery (which must not re-wrap a wrapper).
        let raw_store = store;
        let store: Arc<dyn Durability> =
            Arc::new(InstrumentedStore::new(raw_store.clone(), obs.clone()));
        let (senders, handles) = Engine::spawn_workers(spec.shards, &obs);
        Engine {
            senders,
            handles,
            ring: HashRing::new(spec),
            store,
            raw_store,
            obs,
            attached: AtomicBool::new(false),
            admission: Mutex::new(AdmissionControl::default()),
            topology: Mutex::new(None),
            power: Mutex::new(None),
            intern: Mutex::new(Interner::new()),
            dispatch: Mutex::new(DispatchPool::default()),
        }
    }

    /// Hand every shard its journaling handle. Mutations before this point
    /// are not journaled, which is exactly what recovery replay needs.
    fn attach_store(&self) -> Result<(), EngineError> {
        for shard in 0..self.senders.len() {
            let store = self.store.clone();
            self.send_plain(shard, move |tx| Request::AttachStore(store, tx))?;
        }
        self.attached.store(true, Ordering::Release);
        Ok(())
    }

    /// The durability backend this engine journals through (the
    /// metrics-instrumented wrapper).
    pub fn store(&self) -> &Arc<dyn Durability> {
        &self.store
    }

    /// The durability backend as constructed, without the metrics
    /// wrapper — what a restart should hand back to [`Engine::recover`].
    pub fn raw_store(&self) -> &Arc<dyn Durability> {
        &self.raw_store
    }

    /// The engine's observability state: metrics registry, control-plane
    /// trace, WAL write-volume counters.
    pub fn obs(&self) -> &Arc<EngineObs> {
        &self.obs
    }

    /// The engine's logical clock: admission-gate ticks, one per ingested
    /// batch. Stamped onto rebalance reports and trace events.
    pub fn logical_tick(&self) -> u64 {
        self.gate().now()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The routing-ring topology.
    pub fn ring_spec(&self) -> RingSpec {
        self.ring.spec()
    }

    /// The admission limits in force.
    pub fn limits(&self) -> AdmissionConfig {
        self.gate().config()
    }

    /// Install new admission limits (tenant cap, per-tenant rate limit).
    /// Applies to subsequent operations only; limits are control-plane
    /// state, deliberately not journaled — recovery replays exactly the
    /// traffic that was admitted, whatever the limits were.
    pub fn set_limits(&self, cfg: AdmissionConfig) -> Result<(), EngineError> {
        cfg.validate()
            .map_err(|m| EngineError::Policy(rsdc_core::Error::InvalidParameter(m)))?;
        self.gate().set_config(cfg);
        Ok(())
    }

    fn gate(&self) -> std::sync::MutexGuard<'_, AdmissionControl> {
        self.admission.lock().expect("admission gate poisoned")
    }

    fn policy(&self) -> std::sync::MutexGuard<'_, Option<TopologyPolicy>> {
        self.topology.lock().expect("topology policy poisoned")
    }

    fn power_runtime(&self) -> std::sync::MutexGuard<'_, Option<PowerRuntime>> {
        self.power.lock().expect("power runtime poisoned")
    }

    fn interner(&self) -> std::sync::MutexGuard<'_, Interner> {
        self.intern.lock().expect("intern table poisoned")
    }

    fn dispatch_pool(&self) -> std::sync::MutexGuard<'_, DispatchPool> {
        self.dispatch.lock().expect("dispatch pool poisoned")
    }

    /// Resolve a tenant id against the intern table without inserting:
    /// admitted ids come back as their shared string plus slab key, ids
    /// never admitted get a fresh string and [`UNKNOWN_KEY`] (the owning
    /// shard will report `UnknownTenant` for them). This is the one
    /// allocation a caller pays per *distinct* id, not per event — hold
    /// the returned pair and reuse it across [`Engine::step_events`]
    /// batches.
    pub fn resolve(&self, id: &str) -> (Arc<str>, u32) {
        match self.interner().lookup(id) {
            Some((arc, key, _)) => (arc, key),
            None => (Arc::from(id), UNKNOWN_KEY),
        }
    }

    /// Enable (`Some`) or disable (`None`) energy accounting. Installing
    /// a config starts a **fresh** meter (totals reset to zero); like the
    /// metrics registry and the topology policy, the energy runtime is
    /// control-plane process state, deliberately not journaled — recovery
    /// restarts the meter, it never replays watt-hours.
    ///
    /// Once enabled, every ingested batch meters one logical tick:
    /// per-shard utilization (events over committed machines times the
    /// configured capacity) drives the power model, joules integrate over
    /// the logical clock, and the price schedule turns them into cost.
    pub fn set_power(&self, cfg: Option<PowerConfig>) -> Result<(), EngineError> {
        let runtime = match cfg {
            Some(cfg) => {
                cfg.validate()
                    .map_err(|m| EngineError::Policy(rsdc_core::Error::InvalidParameter(m)))?;
                Some(PowerRuntime::new(cfg))
            }
            None => None,
        };
        *self.power_runtime() = runtime;
        Ok(())
    }

    /// The power configuration in force (`None` when energy accounting is
    /// disabled).
    pub fn power_config(&self) -> Option<PowerConfig> {
        self.power_runtime()
            .as_ref()
            .map(|rt| rt.meter().config().clone())
    }

    /// Point-in-time energy read-back: configuration, totals, and the
    /// last tick's per-shard physics (`None` when disabled).
    pub fn energy_status(&self) -> Option<EnergyStatus> {
        self.power_runtime().as_ref().map(|rt| rt.meter().status())
    }

    /// Fill a report's `energy` field from the attribution map.
    fn decorate_energy(&self, report: &mut TenantReport) {
        report.energy = self
            .power_runtime()
            .as_ref()
            .and_then(|rt| rt.tenant_energy(&report.id));
    }

    /// Enable (`Some`) or disable (`None`) the lazy auto-rebalancing
    /// policy ([`crate::topology`]). Like admission limits, the policy is
    /// control-plane process state — deliberately not journaled; each
    /// deployment states its own knobs and a restarted engine re-learns
    /// the load within a few ticks.
    ///
    /// Once enabled, every ingested batch feeds the policy one
    /// observation tick; call [`Engine::maybe_autoscale`] (the wire
    /// session does this after every batch) to apply pending decisions as
    /// incremental migrations.
    pub fn set_autoscale(&self, cfg: Option<TopologyConfig>) -> Result<(), EngineError> {
        let policy = match cfg {
            Some(cfg) => Some(
                TopologyPolicy::new(cfg, self.shards())
                    .map_err(|m| EngineError::Policy(rsdc_core::Error::InvalidParameter(m)))?,
            ),
            None => None,
        };
        *self.policy() = policy;
        Ok(())
    }

    /// Point-in-time status of the auto-rebalancing policy (`None` when
    /// disabled).
    pub fn autoscale_status(&self) -> Option<TopologyStatus> {
        self.policy().as_ref().map(|p| p.status())
    }

    /// Apply the auto-rebalancing policy's pending decision, if any, as
    /// an **incremental** migration (only the ring-diff tenants move).
    /// Returns the migration report when a topology change was applied.
    /// A no-op when the policy is disabled, satisfied, or cooling down.
    /// Opens the admission migration window for the policy's cooldown
    /// (new admits are deferred, rate-limited buckets refill at half
    /// rate) so the topology settles before the fleet shifts under it
    /// again.
    pub fn maybe_autoscale(&mut self) -> Result<Option<RebalanceReport>, EngineError> {
        let (target, cooldown, status) = match self.policy().as_ref() {
            Some(policy) => (
                policy.pending(),
                policy.config().cooldown,
                Some(policy.status()),
            ),
            None => (None, 0, None),
        };
        let Some(shards) = target else {
            return Ok(None);
        };
        let from = self.shards();
        if let Some(status) = &status {
            // The decision record carries the live LCP state that forced
            // it: both bounds, and the accrued costs whose comparison is
            // the paper's trigger condition.
            self.obs.event(
                self.logical_tick(),
                "autoscale_decision",
                vec![
                    ("from", from.into()),
                    ("target", shards.into()),
                    ("lower", status.lower.into()),
                    ("upper", status.upper.into()),
                    ("imbalance_cost", status.imbalance_cost.into()),
                    ("switch_cost_accrued", status.switch_cost_accrued.into()),
                    ("event_skew", status.event_skew.into()),
                ],
            );
        }
        let report = self.rebalance_incremental(shards, None)?;
        if let Some(policy) = self.policy().as_mut() {
            policy.record_applied(from, report.shards, report.moved);
        }
        self.gate().begin_migration_window(cooldown);
        if cooldown > 0 {
            self.obs.note_window(self.logical_tick(), true);
        }
        Ok(Some(report))
    }

    /// Keep the autoscale policy's view of the topology in sync after a
    /// successful rebalance of either kind — including operator-requested
    /// ones, which would otherwise leave the policy reasoning (and
    /// reporting) against a stale shard count.
    fn sync_policy_topology(&self, shards: usize) {
        if let Some(policy) = self.policy().as_mut() {
            policy.note_topology(shards);
        }
    }

    /// Live tenants across all shards.
    pub fn live_tenants(&self) -> Result<usize, EngineError> {
        Ok(self.shard_stats()?.iter().map(|s| s.tenants).sum())
    }

    fn shard_of(&self, id: &str) -> usize {
        self.ring.route(id)
    }

    fn send<T>(
        &self,
        shard: usize,
        make: impl FnOnce(Sender<Result<T, EngineError>>) -> Request,
    ) -> Result<T, EngineError> {
        self.send_plain(shard, make)?
    }

    fn send_plain<T>(
        &self,
        shard: usize,
        make: impl FnOnce(Sender<T>) -> Request,
    ) -> Result<T, EngineError> {
        Engine::send_to(&self.senders, shard, make)
    }

    /// Request/reply against an explicit worker set (used during a
    /// rebalance, when the replacement workers are not yet installed).
    fn send_to<T>(
        senders: &[Sender<Request>],
        shard: usize,
        make: impl FnOnce(Sender<T>) -> Request,
    ) -> Result<T, EngineError> {
        let (tx, rx) = channel();
        senders[shard]
            .send(make(tx))
            .map_err(|_| EngineError::ShardDown(shard))?;
        rx.recv().map_err(|_| EngineError::ShardDown(shard))
    }

    /// Admit a new tenant. Refused with a typed
    /// [`Rejected`](crate::AdmissionError::Rejected) error when the engine
    /// is at its [`max_tenants`](AdmissionConfig::max_tenants) cap.
    pub fn admit(&self, cfg: TenantConfig) -> Result<(), EngineError> {
        // The gate guard is held across the count *and* the insert, so
        // concurrent cap-checked admits serialize — a check-then-act race
        // cannot push the fleet past `max_tenants`. Shard threads never
        // take this lock, so the round trips inside cannot deadlock.
        let mut gate = self.gate();
        if gate.config().max_tenants > 0 || gate.in_migration_window() {
            // The live count is only fetched when a cap could bite.
            let live = if gate.config().max_tenants > 0 {
                self.live_tenants()?
            } else {
                0
            };
            gate.check_admit(&cfg.id, live).map_err(|e| {
                self.obs.count_refusal(&e);
                EngineError::Admission(e)
            })?;
        }
        self.admit_unchecked(cfg)
    }

    /// Admit bypassing admission control (recovery replay, migrations).
    /// This is where a tenant id is interned: hashed once, routed once,
    /// and handed to its shard as a stable slab key.
    fn admit_unchecked(&self, cfg: TenantConfig) -> Result<(), EngineError> {
        let (_, key, shard) = self.interner().intern(&cfg.id, &self.ring);
        self.send(shard, |tx| Request::Admit(cfg, key, tx))
    }

    /// Classify a per-event error string back into the [`EngineError`] it
    /// was rendered from: the unknown-tenant and throttled renderings are
    /// each produced in exactly one place, everything else is a
    /// policy-level step failure.
    fn classify_event_error(id: &str, message: String) -> EngineError {
        let throttled = AdmissionError::Throttled { id: id.to_string() };
        if message == EngineError::UnknownTenant(id.to_string()).to_string() {
            EngineError::UnknownTenant(id.to_string())
        } else if message == throttled.to_string() {
            EngineError::Admission(throttled)
        } else {
            // Per-event errors are rendered rsdc_core::Errors; strip the
            // rendering prefix before re-wrapping so the message is not
            // double-prefixed on display.
            let message = message
                .strip_prefix("invalid parameter: ")
                .map(str::to_string)
                .unwrap_or(message);
            EngineError::Policy(rsdc_core::Error::InvalidParameter(message))
        }
    }

    /// Feed one cost function to one tenant; returns the states committed
    /// by this event (empty while a lookahead window fills).
    pub fn step(&self, id: &str, cost: Cost) -> Result<Vec<u32>, EngineError> {
        let outcomes = self.step_batch(vec![(id.to_string(), cost)])?;
        match outcomes.into_iter().next() {
            Some(o) => match o.error {
                None => Ok(o.states.to_vec()),
                Some(message) => Err(Engine::classify_event_error(id, message)),
            },
            None => Err(EngineError::UnknownTenant(id.to_string())),
        }
    }

    /// Fetch a tenant's static configuration.
    pub fn tenant_config(&self, id: &str) -> Result<crate::TenantConfig, EngineError> {
        let shard = self.shard_of(id);
        self.send(shard, |tx| Request::Config(id.to_string(), tx))
    }

    /// Feed one offered load to one **heterogeneous** tenant; returns the
    /// full outcome (total-machine states plus the committed
    /// configurations). Scalar tenants are rejected: their loads must be
    /// priced into a [`Cost`] first (the wire session does this through
    /// the tenant's cost model) — silently ingesting an unpriced load
    /// would produce wrong accounting with an `Ok` result.
    pub fn step_load(&self, id: &str, load: f64) -> Result<StepOutcome, EngineError> {
        if !self.tenant_config(id)?.policy.is_hetero() {
            return Err(EngineError::Policy(rsdc_core::Error::InvalidParameter(
                format!("tenant {id:?} is not heterogeneous: price the load into a Cost and use step instead"),
            )));
        }
        let outcomes = self.step_batch_loads(vec![(id.to_string(), Cost::Zero, Some(load))])?;
        let outcome = outcomes
            .into_iter()
            .next()
            .ok_or_else(|| EngineError::UnknownTenant(id.to_string()))?;
        match outcome.error {
            None => Ok(outcome),
            Some(message) => Err(Engine::classify_event_error(id, message)),
        }
    }

    /// Feed a batch of `(tenant, cost)` events. Events are fanned out to
    /// the owning shards in one message per shard; per-tenant order is
    /// preserved, and outcomes come back in submission order.
    pub fn step_batch(&self, events: Vec<(String, Cost)>) -> Result<Vec<StepOutcome>, EngineError> {
        self.step_batch_loads(events.into_iter().map(|(id, c)| (id, c, None)).collect())
    }

    /// [`Engine::step_batch`] with per-event offered load, which also feeds
    /// the shard-level metrics.
    ///
    /// Each call advances the admission gate's logical clock by one tick;
    /// when a per-tenant rate limit is configured, events that find their
    /// tenant's token bucket empty come back as per-event
    /// [`Throttled`](crate::AdmissionError::Throttled) errors **without
    /// reaching the owning shard or its WAL** — a throttled event never
    /// poisons the rest of the batch, and never reappears on replay.
    pub fn step_batch_loads(
        &self,
        events: Vec<(String, Cost, Option<f64>)>,
    ) -> Result<Vec<StepOutcome>, EngineError> {
        let throttled = self.tick_gate(&mut events.iter().map(|(id, _, _)| id.as_str()));
        let mut resolved = {
            let interner = self.interner();
            events
                .into_iter()
                .map(|(id, cost, load)| {
                    let (id, key) = match interner.lookup(&id) {
                        Some((arc, key, _)) => (arc, key),
                        None => (Arc::from(id), UNKNOWN_KEY),
                    };
                    StepEvent {
                        id,
                        key,
                        cost,
                        load,
                    }
                })
                .collect::<Vec<_>>()
        };
        let mut out = Vec::with_capacity(resolved.len());
        self.dispatch_resolved(&mut resolved, &throttled, true, &mut out)?;
        Ok(out)
    }

    /// [`Engine::step_batch_loads`] over pre-resolved events with reused
    /// buffers — the zero-allocation ingest path. `events` is drained (its
    /// capacity survives for the caller's next batch); outcomes are
    /// appended to `out` in submission order. Resolve ids once with
    /// [`Engine::resolve`] and recycle both vectors across batches:
    /// steady-state ingest then allocates nothing per event.
    pub fn step_events(
        &self,
        events: &mut Vec<StepEvent>,
        out: &mut Vec<StepOutcome>,
    ) -> Result<(), EngineError> {
        let throttled = self.tick_gate(&mut events.iter().map(|ev| &*ev.id));
        self.dispatch_resolved(events, &throttled, true, out)
    }

    /// Advance the admission gate one tick for a batch and compute its
    /// throttle mask (empty when no rate limit is configured — the common
    /// case allocates nothing).
    fn tick_gate(&self, ids: &mut dyn Iterator<Item = &str>) -> Vec<bool> {
        let (throttled, tick, window_open) = {
            let mut gate = self.gate();
            gate.tick();
            let throttled: Vec<bool> = if gate.config().limits_rate() {
                ids.map(|id| gate.check_step(id).is_err()).collect()
            } else {
                Vec::new()
            };
            (throttled, gate.now(), gate.in_migration_window())
        };
        // Window close is observed lazily (the gate has no timer): the
        // first tick past the cooldown records the close edge.
        self.obs.note_window(tick, window_open);
        let throttled_events = throttled.iter().filter(|&&t| t).count() as u64;
        if throttled_events > 0 {
            self.obs.admission_throttled.add(throttled_events);
            self.obs.events_dropped.add(throttled_events);
        }
        throttled
    }

    /// Fan events out to shards, short-circuiting throttled ones into
    /// local error outcomes. `throttled` is empty (nothing throttled) or
    /// parallel to `events`. With `observe`, the per-shard batch sizes and
    /// the live-tenant pulses piggybacked on the batch replies feed the
    /// auto-rebalancing policy one tick (recovery replay passes `false`:
    /// replayed traffic is history, not load).
    ///
    /// The per-shard fan-out buffers live in the engine's dispatch pool
    /// and round-trip through the shards (a [`crate::shard::BatchReply`]
    /// hands the drained vector back), so steady-state batches reuse the
    /// same allocations end to end. Shard routing comes from the intern
    /// table's cached routes; only never-admitted ids fall back to hashing
    /// the ring.
    fn dispatch_resolved(
        &self,
        events: &mut Vec<StepEvent>,
        throttled: &[bool],
        observe: bool,
        out: &mut Vec<StepOutcome>,
    ) -> Result<(), EngineError> {
        let shards = self.senders.len();
        let mut pool = self.dispatch_pool();
        let pool = &mut *pool;
        if pool.per_shard.len() < shards {
            pool.per_shard.resize_with(shards, Vec::new);
        }
        pool.indexed.clear();
        {
            let interner = self.interner();
            for (index, ev) in events.drain(..).enumerate() {
                if throttled.get(index).copied().unwrap_or(false) {
                    pool.indexed.push((
                        index,
                        StepOutcome {
                            error: Some(
                                AdmissionError::Throttled {
                                    id: ev.id.to_string(),
                                }
                                .to_string(),
                            ),
                            id: ev.id,
                            states: StateList::new(),
                            configs: None,
                        },
                    ));
                    continue;
                }
                let shard = match interner.entry(ev.key) {
                    Some(e) => e.shard as usize,
                    None => self.ring.route(&ev.id),
                };
                pool.per_shard[shard].push(Event {
                    index,
                    id: ev.id,
                    key: ev.key,
                    cost: ev.cost,
                    load: ev.load,
                });
            }
        }
        let mut shard_events = vec![0u64; shards];
        let mut pulses: Vec<(usize, usize)> = Vec::new();
        let mut machines: Vec<(usize, u64)> = Vec::new();
        let mut replies = Vec::new();
        for (shard, count) in shard_events.iter_mut().enumerate() {
            if pool.per_shard[shard].is_empty() {
                continue;
            }
            let batch = std::mem::take(&mut pool.per_shard[shard]);
            *count = batch.len() as u64;
            let (tx, rx) = channel();
            self.senders[shard]
                .send(Request::Batch(batch, tx))
                .map_err(|_| EngineError::ShardDown(shard))?;
            replies.push((shard, rx));
        }
        for (shard, rx) in replies {
            let reply = rx.recv().map_err(|_| EngineError::ShardDown(shard))??;
            pulses.push((shard, reply.tenants));
            machines.push((shard, reply.machines));
            pool.indexed.extend(reply.outcomes);
            // The shard drained its batch in place and handed the empty
            // vector back; park it for the next dispatch.
            pool.per_shard[shard] = reply.events;
        }
        if observe {
            if let Some(policy) = self.policy().as_mut() {
                policy.observe(&shard_events, &pulses);
            }
            if let Some(runtime) = self.power_runtime().as_mut() {
                // One metered tick: the shard samples drive the meter,
                // the committed outcomes refresh per-tenant attribution.
                // Shard routing is recomputed from the ring (identical to
                // the dispatch above — the ring did not change mid-call).
                let commits: Vec<(&str, u32, usize)> = pool
                    .indexed
                    .iter()
                    .filter(|(_, o)| o.error.is_none())
                    .filter_map(|(_, o)| {
                        o.states
                            .last()
                            .map(|&last| (&*o.id, last, self.shard_of(&o.id)))
                    })
                    .collect();
                runtime.observe(
                    self.logical_tick(),
                    &shard_events,
                    &machines,
                    &commits,
                    &self.obs,
                );
            }
        }
        // Unstable sort: indexes are distinct, so stability is moot, and
        // (unlike the stable sort) it does not allocate a merge buffer.
        pool.indexed.sort_unstable_by_key(|(index, _)| *index);
        out.extend(pool.indexed.drain(..).map(|(_, o)| o));
        Ok(())
    }

    /// End-of-stream for one tenant: flush pending lookahead states.
    pub fn finish(&self, id: &str) -> Result<Vec<u32>, EngineError> {
        let shard = self.shard_of(id);
        self.send(shard, |tx| Request::Finish(id.to_string(), tx))
            .map(|o| o.states.to_vec())
    }

    /// Capture a tenant's full state.
    pub fn snapshot(&self, id: &str) -> Result<TenantSnapshot, EngineError> {
        let shard = self.shard_of(id);
        self.send(shard, |tx| Request::Snapshot(id.to_string(), tx))
    }

    /// Re-install a tenant from a snapshot (replaces any existing tenant
    /// with the same id). Installing a *new* tenant this way counts
    /// against the [`max_tenants`](AdmissionConfig::max_tenants) cap,
    /// exactly like `admit`.
    pub fn restore(&self, snapshot: TenantSnapshot) -> Result<(), EngineError> {
        // Same guard discipline as `admit`: existence check, cap check and
        // install all happen under the gate so concurrent restores cannot
        // race past the cap. Only a *new* tenant is gated — re-installing
        // an existing one is neither an admit nor a migration hazard.
        let mut gate = self.gate();
        if (gate.config().max_tenants > 0 || gate.in_migration_window())
            && self.tenant_config(&snapshot.config.id).is_err()
        {
            let live = if gate.config().max_tenants > 0 {
                self.live_tenants()?
            } else {
                0
            };
            gate.check_admit(&snapshot.config.id, live).map_err(|e| {
                self.obs.count_refusal(&e);
                EngineError::Admission(e)
            })?;
        }
        self.restore_unchecked(snapshot)
    }

    fn restore_unchecked(&self, snapshot: TenantSnapshot) -> Result<(), EngineError> {
        let (_, key, shard) = self.interner().intern(&snapshot.config.id, &self.ring);
        self.send(shard, |tx| Request::Restore(Box::new(snapshot), key, tx))
    }

    /// Remove a tenant, returning its final report (with its attributed
    /// energy, when accounting is on — the attribution entry is dropped
    /// with the tenant).
    pub fn evict(&self, id: &str) -> Result<TenantReport, EngineError> {
        let shard = self.shard_of(id);
        let mut report = self.send(shard, |tx| Request::Evict(id.to_string(), tx))?;
        self.gate().forget(id);
        if let Some(runtime) = self.power_runtime().as_mut() {
            report.energy = runtime.tenant_energy(id);
            runtime.forget(id);
        }
        Ok(report)
    }

    /// Report for one tenant.
    pub fn report(&self, id: &str) -> Result<TenantReport, EngineError> {
        let shard = self.shard_of(id);
        let mut reports = self.send(shard, |tx| Request::Report(Some(id.to_string()), tx))?;
        let mut report = reports
            .pop()
            .ok_or_else(|| EngineError::UnknownTenant(id.to_string()))?;
        self.decorate_energy(&mut report);
        Ok(report)
    }

    /// Reports for every tenant, sorted by id.
    pub fn report_all(&self) -> Result<Vec<TenantReport>, EngineError> {
        let mut replies = Vec::new();
        for (shard, tx_req) in self.senders.iter().enumerate() {
            let (tx, rx) = channel();
            tx_req
                .send(Request::Report(None, tx))
                .map_err(|_| EngineError::ShardDown(shard))?;
            replies.push((shard, rx));
        }
        let mut all = Vec::new();
        for (shard, rx) in replies {
            all.extend(rx.recv().map_err(|_| EngineError::ShardDown(shard))??);
        }
        all.sort_by(|a, b| a.id.cmp(&b.id));
        if let Some(runtime) = self.power_runtime().as_ref() {
            for report in &mut all {
                report.energy = runtime.tenant_energy(&report.id);
            }
        }
        Ok(all)
    }

    /// Aggregate per-shard statistics.
    pub fn shard_stats(&self) -> Result<Vec<ShardStats>, EngineError> {
        let mut replies = Vec::new();
        for (shard, tx_req) in self.senders.iter().enumerate() {
            let (tx, rx) = channel();
            tx_req
                .send(Request::Stats(tx))
                .map_err(|_| EngineError::ShardDown(shard))?;
            replies.push((shard, rx));
        }
        let mut all = Vec::new();
        for (shard, rx) in replies {
            all.push(rx.recv().map_err(|_| EngineError::ShardDown(shard))?);
        }
        Ok(all)
    }

    /// Ids of every tenant across all shards, sorted.
    pub fn tenant_ids(&self) -> Result<Vec<String>, EngineError> {
        let mut replies = Vec::new();
        for (shard, tx_req) in self.senders.iter().enumerate() {
            let (tx, rx) = channel();
            tx_req
                .send(Request::TenantIds(tx))
                .map_err(|_| EngineError::ShardDown(shard))?;
            replies.push((shard, rx));
        }
        let mut all = Vec::new();
        for (shard, rx) in replies {
            all.extend(rx.recv().map_err(|_| EngineError::ShardDown(shard))?);
        }
        all.sort_unstable();
        Ok(all)
    }

    /// Capture each shard's checkpoint contribution (rotating its WAL to
    /// `seq` at the capture point when journaling is live), returning the
    /// tenant snapshots sorted by id plus the per-shard aggregates in
    /// shard order.
    fn capture_all(&self, seq: u64) -> Result<(Vec<TenantSnapshot>, Vec<ShardMeta>), EngineError> {
        Engine::capture_set(&self.senders, seq)
    }

    /// Capture a full-state checkpoint and truncate the write-ahead log.
    ///
    /// Each shard rotates its WAL at the exact request-stream position of
    /// its snapshot, so the published document plus the (now empty) new
    /// segments are equivalent to the old checkpoint plus the old WAL —
    /// committing the document then deletes the superseded files. On a
    /// [`NullStore`] engine this is a consistent no-op dump
    /// (`durable: false`).
    pub fn checkpoint(&self) -> Result<CheckpointReport, EngineError> {
        let lap = self.obs.clock();
        let durable = self.store.is_durable();
        let seq = self
            .store
            .begin_checkpoint()
            .map_err(EngineError::from_store)?;
        let (tenants, shard_meta) = self.capture_all(seq)?;
        let count = tenants.len();
        if durable {
            let spec = self.ring.spec();
            let doc = CheckpointDoc {
                seq,
                shards: spec.shards,
                vnodes: spec.vnodes,
                tenants,
                shard_meta,
            };
            self.store
                .commit_checkpoint(seq, &doc.encode())
                .map_err(EngineError::from_store)?;
        }
        self.obs.lap(&self.obs.checkpoint_ns, lap);
        Ok(CheckpointReport {
            seq,
            tenants: count,
            durable,
        })
    }

    /// Re-partition the engine onto a new ring topology, live: drain and
    /// capture every shard, migrate all tenants bit-exactly (snapshot →
    /// restore) onto a fresh worker set routed by the new ring, and swap.
    ///
    /// Crash safety on a durable engine follows the WAL discipline:
    ///
    /// 1. a [`JournalRecord::Rebalance`] is journaled (shard 0's WAL)
    ///    *before* anything moves, so a crash mid-migration leaves a
    ///    record that [`Engine::recover`] replays to finish the job;
    /// 2. the capture rotates every shard's WAL, and the migration is
    ///    *fenced* by committing a full-state checkpoint carrying the new
    ///    topology — the commit is the migration's atomic commit point
    ///    (before it: old checkpoint + WAL incl. the `Rebalance` record;
    ///    after it: new-topology checkpoint, record truncated away).
    ///
    /// Per-shard aggregates merge onto the new shard 0 (fleet totals are
    /// exact; per-shard attribution restarts). On failure the engine keeps
    /// serving on its old workers. `vnodes = None` keeps the current ring
    /// density. Passing the current topology re-shuffles onto fresh
    /// workers and reports `moved: 0`.
    pub fn rebalance(
        &mut self,
        new_shards: usize,
        vnodes: Option<usize>,
    ) -> Result<RebalanceReport, EngineError> {
        let spec = RingSpec::new(new_shards, vnodes.unwrap_or(self.ring.spec().vnodes));
        self.rebalance_inner(spec, true)
    }

    /// The migration itself. `fence` selects the durable protocol above;
    /// recovery passes `false` (pure in-memory re-partition — the caller
    /// writes its own checkpoint afterwards).
    fn rebalance_inner(
        &mut self,
        spec: RingSpec,
        fence: bool,
    ) -> Result<RebalanceReport, EngineError> {
        let durable = fence && self.store.is_durable() && self.attached.load(Ordering::Acquire);
        let lap = self.obs.clock();
        let tick = self.logical_tick();
        self.obs.event(
            tick,
            "rebalance_begin",
            vec![
                ("mode", "full".into()),
                ("shards", spec.shards.into()),
                ("vnodes", spec.vnodes.into()),
                ("fenced", durable.into()),
            ],
        );
        if durable {
            // Write-ahead: the topology change is journaled before any
            // tenant moves, through shard 0's thread (which owns that WAL).
            let record = JournalRecord::Rebalance {
                shards: spec.shards,
                vnodes: spec.vnodes,
            };
            self.send(0, move |tx| Request::Journal(Box::new(record), tx))?;
        }
        let seq = self
            .store
            .begin_checkpoint()
            .map_err(EngineError::from_store)?;
        let (tenants, old_meta) = self.capture_all(seq)?;
        let ring = HashRing::new(spec);
        let moved = tenants
            .iter()
            .filter(|s| ring.route(&s.config.id) != self.ring.route(&s.config.id))
            .count();
        // Fleet-total counters survive the topology change by merging every
        // old shard's aggregates onto the new shard 0, in shard order.
        let mut merged = ShardMeta {
            shard: 0,
            events: 0,
            states: 0,
            metrics: rsdc_sim::metrics::Metrics::default(),
        };
        for meta in &old_meta {
            merged.events += meta.events;
            merged.states += meta.states;
            merged.metrics.merge(&meta.metrics);
        }
        let count = tenants.len();
        // The snapshots are moved into the (future fencing-checkpoint)
        // document up front: the restore loop borrows them from there, so
        // the full fleet state is never deep-cloned a second time.
        let doc = CheckpointDoc {
            seq,
            shards: spec.shards,
            vnodes: spec.vnodes,
            tenants,
            shard_meta: vec![merged.clone()],
        };
        let (senders, handles) = Engine::spawn_workers(spec.shards, &self.obs);
        let migrate = || -> Result<(), EngineError> {
            for snapshot in &doc.tenants {
                let shard = ring.route(&snapshot.config.id);
                // Key only — routes are re-cached when the ring is swapped.
                let (_, key, _) = self.interner().intern(&snapshot.config.id, &ring);
                Engine::send_to(&senders, shard, |tx| {
                    Request::Restore(Box::new(snapshot.clone()), key, tx)
                })??;
            }
            Engine::send_to(&senders, 0, |tx| Request::InstallMeta(Box::new(merged), tx))?;
            if durable {
                // The fence: committing this checkpoint is the migration's
                // commit point, and truncates the Rebalance record away.
                self.store
                    .commit_checkpoint(seq, &doc.encode())
                    .map_err(EngineError::from_store)?;
                self.obs
                    .event(tick, "rebalance_fence", vec![("seq", seq.into())]);
            }
            Ok(())
        };
        if let Err(e) = migrate() {
            self.obs.event(
                tick,
                "rebalance_abort",
                vec![("mode", "full".into()), ("error", e.to_string().into())],
            );
            // Abort: tear down the half-built replacement workers and keep
            // serving on the old topology.
            for tx in &senders {
                let _ = tx.send(Request::Shutdown);
            }
            for handle in handles {
                let _ = handle.join();
            }
            // The half-run migration may have cached new-ring routes in
            // the intern table; re-derive them from the ring we kept.
            self.interner().reroute(&self.ring);
            if durable {
                // Neutralize the write-ahead Rebalance record: the
                // migration did not happen, so a crash before the next
                // checkpoint must not replay it. Recovery takes the *last*
                // record's topology, so re-journaling the current one
                // restores the truth (best-effort — if this append fails
                // too, the next successful checkpoint truncates both).
                let current = self.ring.spec();
                let record = JournalRecord::Rebalance {
                    shards: current.shards,
                    vnodes: current.vnodes,
                };
                let _ = self.send(0, move |tx| Request::Journal(Box::new(record), tx));
            }
            return Err(e);
        }
        let old_senders = std::mem::replace(&mut self.senders, senders);
        let old_handles = std::mem::replace(&mut self.handles, handles);
        for tx in &old_senders {
            let _ = tx.send(Request::Shutdown);
        }
        drop(old_senders);
        for handle in old_handles {
            let _ = handle.join();
        }
        self.ring = ring;
        self.interner().reroute(&self.ring);
        if self.attached.load(Ordering::Acquire) {
            self.attach_store()?;
        }
        self.sync_policy_topology(spec.shards);
        self.obs.lap(&self.obs.migration_ns, lap);
        self.obs.migration_tenants_moved.add(moved as u64);
        self.obs.event(
            tick,
            "rebalance_commit",
            vec![
                ("mode", "full".into()),
                ("shards", spec.shards.into()),
                ("moved", moved.into()),
                ("seq", seq.into()),
            ],
        );
        Ok(RebalanceReport {
            shards: spec.shards,
            vnodes: spec.vnodes,
            tenants: count,
            moved,
            moved_ids: Vec::new(),
            incremental: false,
            seq: if durable { seq } else { 0 },
            durable,
            tick,
        })
    }

    /// Re-partition onto a new ring topology by moving **only** the
    /// tenants whose placement the ring change affects (the old-ring/new-
    /// ring route diff), instead of draining and re-installing the whole
    /// fleet.
    ///
    /// Mechanics: surviving shard workers keep running (their unmoved
    /// tenants, aggregates and per-shard attribution stay in place), a
    /// grow spawns only the new indices, a shrink retires only the dead
    /// ones (their historical aggregates merge onto shard 0), and each
    /// moved tenant is extracted from its old shard and installed on its
    /// new one bit-exactly — through journal-bypassing plumbing requests,
    /// because crash safety is owned by the protocol, not per-tenant
    /// records:
    ///
    /// 1. a [`JournalRecord::Migrate`] (carrying the target spec and the
    ///    moved-id list) is journaled write-ahead to shard 0's WAL, so a
    ///    crash mid-migration leaves a record [`Engine::recover`] replays
    ///    to finish the topology change;
    /// 2. the migration is *fenced* by a full-state checkpoint carrying
    ///    the new topology, captured after the moves — its commit is the
    ///    atomic commit point, truncating the `Migrate` record away. The
    ///    fence is what makes the diff-only move safe under the
    ///    per-shard-ordered WAL: before it, every journaled record was
    ///    routed by the old ring; after it, the WAL restarts empty on the
    ///    new ring. No record ever spans a tenant's move.
    ///
    /// On failure before the fence commits, the extracted tenants are
    /// re-installed on their old shards and the engine keeps serving on
    /// its old topology; an error in the bookkeeping *after* the commit
    /// point is reported with the engine already on the new topology
    /// (matching the committed checkpoint — the migration happened).
    /// `vnodes = None` keeps the current ring density. Requesting the
    /// current topology is a true no-op: `moved: 0`, no journal record,
    /// no fence, no worker touched.
    pub fn rebalance_incremental(
        &mut self,
        new_shards: usize,
        vnodes: Option<usize>,
    ) -> Result<RebalanceReport, EngineError> {
        let spec = RingSpec::new(new_shards, vnodes.unwrap_or(self.ring.spec().vnodes));
        self.migrate_diff(spec)
    }

    fn migrate_diff(&mut self, spec: RingSpec) -> Result<RebalanceReport, EngineError> {
        let old_shards = self.senders.len();
        if spec == self.ring.spec() {
            // The documented no-op: identical topology means an empty
            // diff — nothing to journal, fence, or touch.
            self.sync_policy_topology(spec.shards);
            return Ok(RebalanceReport {
                shards: spec.shards,
                vnodes: spec.vnodes,
                tenants: 0,
                moved: 0,
                moved_ids: Vec::new(),
                incremental: true,
                seq: 0,
                durable: false,
                tick: self.logical_tick(),
            });
        }
        let ring = HashRing::new(spec);
        let ids = self.tenant_ids()?;
        let mut moved = moved_ids(&self.ring, &ring, ids.iter().map(|s| s.as_str()));
        moved.sort_unstable();
        let durable = self.store.is_durable() && self.attached.load(Ordering::Acquire);
        let lap = self.obs.clock();
        let tick = self.logical_tick();
        self.obs.event(
            tick,
            "rebalance_begin",
            vec![
                ("mode", "incremental".into()),
                ("shards", spec.shards.into()),
                ("vnodes", spec.vnodes.into()),
                ("moved", moved.len().into()),
                ("fenced", durable.into()),
            ],
        );
        if durable {
            // Write-ahead: the topology change (and its intended diff) is
            // journaled before any tenant moves.
            let record = JournalRecord::Migrate {
                shards: spec.shards,
                vnodes: spec.vnodes,
                moved: moved.clone(),
            };
            self.send(0, move |tx| Request::Journal(Box::new(record), tx))?;
        }
        let seq = self
            .store
            .begin_checkpoint()
            .map_err(EngineError::from_store)?;
        // Fresh workers for a grow; they see no store until the fence
        // commits, so nothing they do before the swap is journaled.
        let (fresh_senders, fresh_handles) =
            Engine::spawn_worker_range(old_shards, spec.shards, &self.obs);
        // The post-migration worker set: surviving indices + fresh ones.
        let new_senders: Vec<Sender<Request>> = self
            .senders
            .iter()
            .take(spec.shards)
            .cloned()
            .chain(fresh_senders.iter().cloned())
            .collect();
        // Extract every moved tenant from its old shard, then install on
        // its new one. Both sides bypass the journal (see Request::Extract):
        // crash safety is owned by the Migrate record + fence, and a
        // journaled per-tenant record would corrupt replay.
        let mut extracted: Vec<crate::tenant::TenantSnapshot> = Vec::with_capacity(moved.len());
        let mut installed: Vec<String> = Vec::with_capacity(moved.len());
        let mut retired_meta: Vec<ShardMeta> = Vec::new();
        let migrate = |extracted: &mut Vec<crate::tenant::TenantSnapshot>,
                       installed: &mut Vec<String>,
                       retired_meta: &mut Vec<ShardMeta>|
         -> Result<(), EngineError> {
            for id in &moved {
                let from = self.ring.route(id);
                let snapshot = self.send(from, |tx| Request::Extract(id.clone(), tx))?;
                extracted.push(snapshot);
            }
            // Popping (rather than moving the whole vector) keeps every
            // not-yet-attempted snapshot inside `extracted` if an install
            // fails mid-loop — the abort path re-installs exactly what is
            // left there. (The one in-flight snapshot of a failed install
            // is gone with its worker; everything behind it survives.)
            while let Some(snapshot) = extracted.pop() {
                let id = snapshot.config.id.clone();
                let to = ring.route(&id);
                // A moved tenant is already interned; its key follows it.
                let (_, key, _) = self.interner().intern(&id, &self.ring);
                Engine::send_to(&new_senders, to, |tx| {
                    Request::Install(Box::new(snapshot), key, tx)
                })??;
                installed.push(id);
            }
            // Retired shards must be empty now (every tenant they held was
            // in the route diff by construction). Capture their aggregates;
            // they are folded into the fence document here and merged onto
            // the live shard 0 only after the commit point, so an abort
            // never double-counts.
            for shard in spec.shards..old_shards {
                let dump = self.send(shard, |tx| Request::Checkpoint(seq, tx))?;
                debug_assert!(
                    dump.snapshots.is_empty(),
                    "retired shard {shard} still held tenants"
                );
                retired_meta.push(dump.meta);
            }
            if durable {
                // The fence: capture every post-migration shard (rotating
                // its WAL to this sequence), fold the retired shards'
                // history onto the document's shard 0, and commit a
                // full-state checkpoint carrying the new topology.
                let (tenants, mut shard_meta) = Engine::capture_set(&new_senders, seq)?;
                for meta in retired_meta.iter() {
                    shard_meta[0].events += meta.events;
                    shard_meta[0].states += meta.states;
                    shard_meta[0].metrics.merge(&meta.metrics);
                }
                let doc = CheckpointDoc {
                    seq,
                    shards: spec.shards,
                    vnodes: spec.vnodes,
                    tenants,
                    shard_meta,
                };
                self.store
                    .commit_checkpoint(seq, &doc.encode())
                    .map_err(EngineError::from_store)?;
                self.obs
                    .event(tick, "rebalance_fence", vec![("seq", seq.into())]);
            }
            Ok(())
        };
        if let Err(e) = migrate(&mut extracted, &mut installed, &mut retired_meta) {
            self.obs.event(
                tick,
                "rebalance_abort",
                vec![
                    ("mode", "incremental".into()),
                    ("error", e.to_string().into()),
                ],
            );
            // Abort: pull back any tenant already installed on its new
            // shard, re-install it (and the extracted-but-not-installed
            // ones) on its old shard, tear down the fresh workers, and
            // keep serving on the old topology.
            for id in installed {
                if let Ok(Ok(snapshot)) = Engine::send_to(&new_senders, ring.route(&id), |tx| {
                    Request::Extract(id.clone(), tx)
                }) {
                    extracted.push(snapshot);
                }
            }
            for snapshot in extracted {
                let from = self.ring.route(&snapshot.config.id);
                let (_, key, _) = self.interner().intern(&snapshot.config.id, &self.ring);
                let _ = self.send_plain(from, |tx| Request::Install(Box::new(snapshot), key, tx));
            }
            for tx in &fresh_senders {
                let _ = tx.send(Request::Shutdown);
            }
            for handle in fresh_handles {
                let _ = handle.join();
            }
            if durable {
                // Neutralize the write-ahead Migrate record (same
                // last-record-wins discipline as a failed full rebalance).
                let current = self.ring.spec();
                let record = JournalRecord::Migrate {
                    shards: current.shards,
                    vnodes: current.vnodes,
                    moved: Vec::new(),
                };
                let _ = self.send(0, move |tx| Request::Journal(Box::new(record), tx));
            }
            return Err(e);
        }
        // Past the commit point: the migration *happened* (on a durable
        // engine the fence is on disk), so the swap — pure in-memory,
        // infallible — comes first. Any error in the bookkeeping below is
        // reported with the engine already on the new topology, matching
        // the store; returning the old topology here would tell the
        // caller a committed migration failed.
        let retired: Vec<Sender<Request>> =
            self.senders.drain(spec.shards.min(old_shards)..).collect();
        for tx in &retired {
            let _ = tx.send(Request::Shutdown);
        }
        drop(retired);
        let mut retired_handles: Vec<JoinHandle<()>> =
            self.handles.drain(spec.shards.min(old_shards)..).collect();
        for handle in retired_handles.drain(..) {
            let _ = handle.join();
        }
        self.senders.extend(fresh_senders);
        self.handles.extend(fresh_handles);
        self.ring = ring;
        self.interner().reroute(&self.ring);
        self.sync_policy_topology(spec.shards);
        // The in-memory shard 0 absorbs the retired shards' history
        // (matching what the fence document recorded).
        for meta in retired_meta {
            self.send_plain(0, |tx| Request::MergeMeta(Box::new(meta), tx))?;
        }
        if self.attached.load(Ordering::Acquire) {
            // Idempotent for the survivors; hands the fresh workers their
            // journaling handle.
            self.attach_store()?;
        }
        self.obs.lap(&self.obs.migration_ns, lap);
        self.obs.migration_tenants_moved.add(moved.len() as u64);
        self.obs.event(
            tick,
            "rebalance_commit",
            vec![
                ("mode", "incremental".into()),
                ("shards", spec.shards.into()),
                ("moved", moved.len().into()),
                ("seq", seq.into()),
            ],
        );
        Ok(RebalanceReport {
            shards: spec.shards,
            vnodes: spec.vnodes,
            tenants: moved.len(),
            moved: moved.len(),
            moved_ids: moved,
            incremental: true,
            seq: if durable { seq } else { 0 },
            durable,
            tick,
        })
    }

    /// The capture loop behind [`Engine::capture_all`], against an
    /// explicit worker set — the incremental migration fences over its
    /// post-migration workers before they are installed on the handle.
    fn capture_set(
        senders: &[Sender<Request>],
        seq: u64,
    ) -> Result<(Vec<TenantSnapshot>, Vec<ShardMeta>), EngineError> {
        let mut replies = Vec::new();
        for (shard, tx_req) in senders.iter().enumerate() {
            let (tx, rx) = channel();
            tx_req
                .send(Request::Checkpoint(seq, tx))
                .map_err(|_| EngineError::ShardDown(shard))?;
            replies.push((shard, rx));
        }
        let mut tenants = Vec::new();
        let mut shard_meta = Vec::new();
        for (shard, rx) in replies {
            let dump = rx.recv().map_err(|_| EngineError::ShardDown(shard))??;
            tenants.extend(dump.snapshots);
            shard_meta.push(dump.meta);
        }
        tenants.sort_by(|a, b| a.config.id.cmp(&b.config.id));
        Ok((tenants, shard_meta))
    }

    /// Rebuild the pre-crash engine from a store: load the newest valid
    /// checkpoint, replay the WAL tail on top of it, then write a fresh
    /// checkpoint so the next restart starts from a compact log.
    ///
    /// Replay happens before the store is attached to the shards, so
    /// replayed operations are not re-journaled, and bypasses admission
    /// control (the journaled stream *is* the admitted traffic). Per-tenant
    /// state is exact for any shard count; shard-level aggregates are only
    /// carried over when the shard count matches the checkpoint's. An
    /// interrupted rebalance (a [`JournalRecord::Rebalance`] surviving in
    /// the WAL tail) is completed: the engine re-partitions onto the
    /// journaled topology after replay, before the fresh checkpoint.
    pub fn recover(
        cfg: EngineConfig,
        store: Arc<dyn Durability>,
    ) -> Result<(Engine, RecoveryReport), EngineError> {
        let recovery = store.recover().map_err(EngineError::from_store)?;
        let mut engine = Engine::spawn(cfg, store);
        let mut report = RecoveryReport {
            checkpoints_skipped: recovery.checkpoints_skipped,
            ..RecoveryReport::default()
        };
        if let Some(blob) = &recovery.checkpoint {
            let doc = CheckpointDoc::decode(&blob.payload).map_err(EngineError::Store)?;
            report.checkpoint_seq = doc.seq;
            for snapshot in doc.tenants {
                engine.restore_unchecked(snapshot)?;
                report.tenants_restored += 1;
            }
            if doc.shards == engine.shards() {
                for meta in doc.shard_meta {
                    let shard = meta.shard;
                    engine.send_plain(shard, move |tx| Request::InstallMeta(Box::new(meta), tx))?;
                }
                report.shard_meta_restored = true;
            }
            engine.obs.event(
                0,
                "recovery_checkpoint_restored",
                vec![
                    ("seq", report.checkpoint_seq.into()),
                    ("tenants", report.tenants_restored.into()),
                ],
            );
        }
        let mut interrupted: Option<RingSpec> = None;
        for segment in &recovery.segments {
            report.segments += 1;
            if segment.dropped_bytes > 0 {
                report.corrupt_segments += 1;
            }
            for bytes in &segment.records {
                report.records_replayed += 1;
                match JournalRecord::decode(bytes) {
                    Err(_) => report.replay_errors += 1,
                    Ok(JournalRecord::Rebalance { shards, vnodes }) => {
                        // Applied after replay: tenant state is topology-
                        // independent, so order against other shards' WALs
                        // does not matter — only the last topology does.
                        interrupted = Some(RingSpec::new(shards, vnodes));
                        report.rebalances_replayed += 1;
                    }
                    Ok(JournalRecord::Migrate { shards, vnodes, .. }) => {
                        // An interrupted *incremental* migration: finished
                        // the same way (re-partition onto the journaled
                        // spec after replay — the moved list is advisory,
                        // a full in-memory re-route is exact), counted
                        // separately so operators can tell the paths apart.
                        interrupted = Some(RingSpec::new(shards, vnodes));
                        report.migrations_replayed += 1;
                    }
                    Ok(record) => engine.replay(record, &mut report),
                }
            }
        }
        engine
            .obs
            .recovery_records_replayed
            .add(report.records_replayed as u64);
        engine
            .obs
            .recovery_events_replayed
            .add(report.events_replayed as u64);
        engine
            .obs
            .recovery_replay_errors
            .add(report.replay_errors as u64);
        engine.obs.event(
            0,
            "recovery_wal_replayed",
            vec![
                ("segments", report.segments.into()),
                ("records", report.records_replayed.into()),
                ("events", report.events_replayed.into()),
                ("errors", report.replay_errors.into()),
            ],
        );
        if let Some(spec) = interrupted {
            if spec != engine.ring.spec() {
                engine.rebalance_inner(spec, false)?;
            }
            engine.obs.event(
                0,
                "recovery_topology_completed",
                vec![
                    ("shards", spec.shards.into()),
                    ("vnodes", spec.vnodes.into()),
                ],
            );
        }
        engine.attach_store()?;
        report.post_checkpoint_seq = engine.checkpoint()?.seq;
        engine.obs.event(
            0,
            "recovery_complete",
            vec![("post_checkpoint_seq", report.post_checkpoint_seq.into())],
        );
        Ok((engine, report))
    }

    /// Re-apply one journaled operation during recovery. Failures are
    /// counted, not fatal: a journaled operation that failed originally
    /// (e.g. an evict raced with an admit) fails identically here.
    fn replay(&self, record: JournalRecord, report: &mut RecoveryReport) {
        let outcome = match record {
            JournalRecord::Admit(cfg) => self.admit_unchecked(cfg),
            JournalRecord::Batch(events) => {
                let mut resolved = {
                    let interner = self.interner();
                    events
                        .into_iter()
                        .map(|e| {
                            let (id, key) = match interner.lookup(&e.id) {
                                Some((arc, key, _)) => (arc, key),
                                None => (Arc::from(e.id), UNKNOWN_KEY),
                            };
                            StepEvent {
                                id,
                                key,
                                cost: e.cost,
                                load: e.load,
                            }
                        })
                        .collect::<Vec<_>>()
                };
                let mut outcomes = Vec::with_capacity(resolved.len());
                match self.dispatch_resolved(&mut resolved, &[], false, &mut outcomes) {
                    Ok(()) => {
                        report.events_replayed += outcomes.len();
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            }
            JournalRecord::Finish(id) => self.finish(&id).map(|_| ()),
            JournalRecord::Evict(id) => self.evict(&id).map(|_| ()),
            JournalRecord::Restore(snapshot) => self.restore_unchecked(*snapshot),
            // Intercepted by the recovery loop before this point.
            JournalRecord::Rebalance { .. } | JournalRecord::Migrate { .. } => Ok(()),
        };
        if outcome.is_err() {
            report.replay_errors += 1;
        }
    }

    /// Stop all shard workers and join their threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Request::Shutdown);
        }
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
