//! Engine-side observability: the pre-registered metric handles and the
//! control-plane trace the engine records into.
//!
//! One [`EngineObs`] lives in the [`Engine`](crate::Engine) handle (shared
//! with the shard workers and the store seam via `Arc`). Everything here
//! is observation-only state **outside** journaled engine state: enabling
//! or disabling metrics changes no journaled byte, so recovery remains
//! byte-identical with observability on or off — the regression tests
//! hold the engine to that.
//!
//! Metric handles are registered once at engine spawn (registry lookups
//! take a lock; the handles themselves are lock-free), except the
//! per-shard batch-latency histograms, which each shard worker registers
//! for its own index when it starts.

use rsdc_obs::{Counter, FieldValue, Gauge, Histogram, MetricId, Registry, TraceBuffer};
use rsdc_store::{StoreObserver, StoreOp};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// The engine's metric handles + control-plane trace ring.
pub struct EngineObs {
    registry: Registry,
    trace: TraceBuffer,

    /// Events applied by shard workers.
    pub(crate) events_ingested: Counter,
    /// Events that did not apply: throttled at the gate, unknown tenant,
    /// or a deterministic per-event policy failure.
    pub(crate) events_dropped: Counter,
    /// Admits refused at the tenant cap (`reason="rejected"`).
    pub(crate) admission_rejected: Counter,
    /// Step events refused by a token bucket (`reason="throttled"`).
    pub(crate) admission_throttled: Counter,
    /// Admits deferred by an open migration window (`reason="deferred"`).
    pub(crate) admission_deferred: Counter,
    /// Wall time of [`Engine::checkpoint`](crate::Engine::checkpoint).
    pub(crate) checkpoint_ns: Histogram,
    /// Wall time of a rebalance/migration (either path), successful only.
    pub(crate) migration_ns: Histogram,
    /// Tenants moved by completed rebalances/migrations.
    pub(crate) migration_tenants_moved: Counter,
    /// WAL records replayed by recovery.
    pub(crate) recovery_records_replayed: Counter,
    /// Stream events re-applied from replayed batch records.
    pub(crate) recovery_events_replayed: Counter,
    /// Replay failures (counted, not fatal — see recovery docs).
    pub(crate) recovery_replay_errors: Counter,
    /// Whole joules metered by the energy runtime (floor-diff emission:
    /// the meter keeps the authoritative `f64`, the counter trails it by
    /// less than one joule).
    pub(crate) energy_joules: Counter,
    /// Milli-units of priced energy cost (same floor-diff emission).
    pub(crate) energy_cost_milli: Counter,

    // Wire connection I/O, folded in after every feed by the framing
    // layers ([`crate::binwire::BinSession`] counts frames,
    // [`crate::wire::LineSession`] counts lines).
    /// Request frames/lines decoded (including corrupt ones that errored).
    pub(crate) wire_frames_in: Counter,
    /// Response frames/lines emitted.
    pub(crate) wire_frames_out: Counter,
    /// Raw connection bytes received (preamble included).
    pub(crate) wire_bytes_in: Counter,
    /// Raw connection bytes sent (preamble included).
    pub(crate) wire_bytes_out: Counter,

    // Store-seam metrics, fed by the `StoreObserver` impl below.
    wal_append_ns: Histogram,
    wal_fsync_ns: Histogram,
    wal_checkpoint_commit_ns: Histogram,
    wal_appended_records: Counter,
    wal_appended_bytes: Counter,
    wal_fsyncs: Counter,

    // Always-on WAL volume counters: the `wal_stats` wire op reports
    // these even when the registry is disabled, so write-volume
    // accounting survives `--no-metrics`.
    volume_records: AtomicU64,
    volume_bytes: AtomicU64,
    volume_syncs: AtomicU64,

    /// Last observed admission-window state, for open/close edge traces.
    window_open: AtomicBool,
}

impl EngineObs {
    /// Build the engine's observability state. `metrics = false` bakes a
    /// no-op flag into every handle; `trace_capacity` bounds the ring.
    pub fn new(metrics: bool, trace_capacity: usize) -> EngineObs {
        let registry = Registry::new(metrics);
        let c = |name: &str| registry.counter(MetricId::plain(name));
        let refused = |reason: &str| {
            registry.counter(MetricId::labelled(
                "engine_admission_refused",
                "reason",
                reason,
            ))
        };
        let h = |name: &str| registry.histogram(MetricId::plain(name));
        EngineObs {
            events_ingested: c("engine_events_ingested"),
            events_dropped: c("engine_events_dropped"),
            admission_rejected: refused("rejected"),
            admission_throttled: refused("throttled"),
            admission_deferred: refused("deferred"),
            checkpoint_ns: h("engine_checkpoint_ns"),
            migration_ns: h("engine_migration_ns"),
            migration_tenants_moved: c("engine_migration_tenants_moved"),
            recovery_records_replayed: c("engine_recovery_records_replayed"),
            recovery_events_replayed: c("engine_recovery_events_replayed"),
            recovery_replay_errors: c("engine_recovery_replay_errors"),
            energy_joules: c("engine_energy_joules"),
            energy_cost_milli: c("engine_energy_cost_milli"),
            wire_frames_in: registry.counter(MetricId::labelled("engine_wire_frames", "dir", "in")),
            wire_frames_out: registry.counter(MetricId::labelled(
                "engine_wire_frames",
                "dir",
                "out",
            )),
            wire_bytes_in: registry.counter(MetricId::labelled("engine_wire_bytes", "dir", "in")),
            wire_bytes_out: registry.counter(MetricId::labelled("engine_wire_bytes", "dir", "out")),
            wal_append_ns: h("wal_append_ns"),
            wal_fsync_ns: h("wal_fsync_ns"),
            wal_checkpoint_commit_ns: h("wal_checkpoint_commit_ns"),
            wal_appended_records: c("wal_appended_records"),
            wal_appended_bytes: c("wal_appended_bytes"),
            wal_fsyncs: c("wal_fsyncs"),
            volume_records: AtomicU64::new(0),
            volume_bytes: AtomicU64::new(0),
            volume_syncs: AtomicU64::new(0),
            window_open: AtomicBool::new(false),
            trace: TraceBuffer::new(metrics, trace_capacity),
            registry,
        }
    }

    /// Whether metric handles record anything.
    pub fn metrics_enabled(&self) -> bool {
        self.registry.enabled()
    }

    /// The metrics registry (snapshot/exposition surface).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The control-plane trace ring.
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Cumulative WAL write volume through this engine's store handle:
    /// `(records appended, payload bytes appended, explicit syncs)`.
    /// Always counted, independent of the metrics flag.
    pub fn wal_volume(&self) -> (u64, u64, u64) {
        (
            self.volume_records.load(Ordering::Relaxed),
            self.volume_bytes.load(Ordering::Relaxed),
            self.volume_syncs.load(Ordering::Relaxed),
        )
    }

    /// Record a control-plane trace event (no-op when disabled).
    pub(crate) fn event(
        &self,
        tick: u64,
        kind: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        self.trace.record(tick, kind, fields);
    }

    /// Start a wall-clock lap, only when the registry will record it.
    pub(crate) fn clock(&self) -> Option<Instant> {
        if self.registry.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Record a lap started by [`clock`](EngineObs::clock) into `hist`.
    pub(crate) fn lap(&self, hist: &Histogram, start: Option<Instant>) {
        if let Some(start) = start {
            hist.record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    /// Count one admission refusal by reason.
    pub(crate) fn count_refusal(&self, e: &crate::AdmissionError) {
        match e {
            crate::AdmissionError::Rejected { .. } => self.admission_rejected.inc(),
            crate::AdmissionError::Throttled { .. } => self.admission_throttled.inc(),
            crate::AdmissionError::Migrating { .. } => self.admission_deferred.inc(),
        }
    }

    /// The watts gauge for one shard, registered on first use (the shard
    /// set changes under rebalancing, so the energy runtime grows its
    /// gauge vector lazily rather than pre-registering a fixed count).
    pub(crate) fn shard_watts_gauge(&self, shard: usize) -> Gauge {
        self.registry.gauge(MetricId::labelled(
            "engine_shard_watts",
            "shard",
            &shard.to_string(),
        ))
    }

    /// Trace admission-window open/close *edges*: called with the current
    /// window state, records an event only on a transition.
    pub(crate) fn note_window(&self, tick: u64, open: bool) {
        let was = self.window_open.swap(open, Ordering::Relaxed);
        if was != open {
            let kind = if open {
                "admission_window_open"
            } else {
                "admission_window_close"
            };
            self.event(tick, kind, Vec::new());
        }
    }
}

impl StoreObserver for EngineObs {
    fn observe(&self, op: StoreOp, nanos: u64, bytes: u64) {
        match op {
            StoreOp::Append => {
                self.volume_records.fetch_add(1, Ordering::Relaxed);
                self.volume_bytes.fetch_add(bytes, Ordering::Relaxed);
                self.wal_appended_records.inc();
                self.wal_appended_bytes.add(bytes);
                self.wal_append_ns.record(nanos);
            }
            StoreOp::Sync => {
                self.volume_syncs.fetch_add(1, Ordering::Relaxed);
                self.wal_fsyncs.inc();
                self.wal_fsync_ns.record(nanos);
            }
            StoreOp::CommitCheckpoint => {
                self.wal_checkpoint_commit_ns.record(nanos);
            }
        }
    }

    fn timing_enabled(&self) -> bool {
        self.registry.enabled()
    }
}

/// The slice of [`EngineObs`] a shard worker touches per batch: plain
/// handle clones plus the baked-in enabled flag, so the hot loop never
/// looks anything up.
pub(crate) struct ShardObs {
    pub(crate) enabled: bool,
    pub(crate) batch_ns: Histogram,
    pub(crate) ingested: Counter,
    pub(crate) dropped: Counter,
}

impl ShardObs {
    /// Handles for shard `index` (registers its latency histogram).
    pub(crate) fn for_shard(obs: &EngineObs, index: usize) -> ShardObs {
        ShardObs {
            enabled: obs.metrics_enabled(),
            batch_ns: obs.registry.histogram(MetricId::labelled(
                "engine_batch_ns",
                "shard",
                &index.to_string(),
            )),
            ingested: obs.events_ingested.clone(),
            dropped: obs.events_dropped.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_volume_counts_even_with_metrics_disabled() {
        let obs = EngineObs::new(false, 16);
        obs.observe(StoreOp::Append, 0, 100);
        obs.observe(StoreOp::Append, 0, 50);
        obs.observe(StoreOp::Sync, 0, 0);
        assert_eq!(obs.wal_volume(), (2, 150, 1));
        // ...but the registry-backed counters stayed silent.
        let total: u64 = obs
            .registry()
            .snapshot()
            .iter()
            .filter_map(|m| match &m.value {
                rsdc_obs::MetricValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum();
        assert_eq!(total, 0);
        assert!(!obs.timing_enabled());
    }

    #[test]
    fn window_edges_trace_once() {
        let obs = EngineObs::new(true, 16);
        obs.note_window(1, false); // no edge: starts closed
        obs.note_window(2, true); // open edge
        obs.note_window(3, true); // no edge
        obs.note_window(4, false); // close edge
        let kinds: Vec<&str> = obs.trace().events(None).iter().map(|e| e.kind).collect();
        assert_eq!(kinds, ["admission_window_open", "admission_window_close"]);
    }
}
