//! Tenant-id interning: hash each id once, route on the integer.
//!
//! Every admitted tenant id is interned into a stable dense `u32` key.
//! The hot ingest path then carries `(Arc<str>, key)` pairs: shards index
//! a slab by key instead of hashing a `String` per event, the ring route
//! is computed once per id (and once more per topology change) instead of
//! once per event, and the id string itself is a shared refcounted
//! allocation instead of a per-event clone.
//!
//! Keys are never reused: an evicted tenant keeps its key, so a re-admit
//! of the same id lands in the same slot and stale keys can never alias a
//! different tenant. The table grows with the number of *distinct* ids
//! ever admitted, which is bounded by the admission gate's tenant cap
//! over time.

use crate::ring::HashRing;
use std::collections::HashMap;
use std::sync::Arc;

/// Sentinel key for ids that were never interned (never admitted).
pub const UNKNOWN_KEY: u32 = u32::MAX;

/// One interned id: the shared string and its cached ring route.
#[derive(Debug, Clone)]
pub struct InternEntry {
    /// The tenant id, shared with every in-flight event that names it.
    pub id: Arc<str>,
    /// Cached `ring.route(id)` under the engine's current ring.
    pub shard: u32,
}

/// The id → key table plus the cached routes. Owned by the engine handle
/// behind a mutex; shards only ever see resolved keys.
#[derive(Debug, Default)]
pub struct Interner {
    map: HashMap<Arc<str>, u32>,
    entries: Vec<InternEntry>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct ids ever interned.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Get-or-insert `id`, caching its route under `ring`. Returns the
    /// shared id, its stable key and its current shard.
    pub fn intern(&mut self, id: &str, ring: &HashRing) -> (Arc<str>, u32, usize) {
        if let Some(&key) = self.map.get(id) {
            let e = &self.entries[key as usize];
            return (Arc::clone(&e.id), key, e.shard as usize);
        }
        let arc: Arc<str> = Arc::from(id);
        let shard = ring.route(id) as u32;
        let key = self.entries.len() as u32;
        self.entries.push(InternEntry {
            id: Arc::clone(&arc),
            shard,
        });
        self.map.insert(Arc::clone(&arc), key);
        (arc, key, shard as usize)
    }

    /// Resolve an already-interned id without inserting. The hot step
    /// path uses this: ids that were never admitted stay out of the
    /// table, so hostile streams of garbage ids cannot grow it.
    pub fn lookup(&self, id: &str) -> Option<(Arc<str>, u32, usize)> {
        let &key = self.map.get(id)?;
        let e = &self.entries[key as usize];
        Some((Arc::clone(&e.id), key, e.shard as usize))
    }

    /// The entry for `key`, if in range.
    pub fn entry(&self, key: u32) -> Option<&InternEntry> {
        self.entries.get(key as usize)
    }

    /// Recompute every cached route after a ring change. Called under the
    /// same lock that swaps the engine's ring, so events resolved after
    /// the swap route onto the new topology.
    pub fn reroute(&mut self, ring: &HashRing) {
        for e in &mut self.entries {
            e.shard = ring.route(&e.id) as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingSpec;

    #[test]
    fn keys_are_stable_and_routes_follow_the_ring() {
        let ring2 = HashRing::new(RingSpec::new(2, 16));
        let ring5 = HashRing::new(RingSpec::new(5, 16));
        let mut interner = Interner::new();
        let (id_a, key_a, shard_a) = interner.intern("a", &ring2);
        assert_eq!(&*id_a, "a");
        assert_eq!(shard_a, ring2.route("a"));
        let (_, key_b, _) = interner.intern("b", &ring2);
        assert_ne!(key_a, key_b);
        // Re-interning returns the same key and the same shared string.
        let (id_a2, key_a2, _) = interner.intern("a", &ring2);
        assert_eq!(key_a, key_a2);
        assert!(Arc::ptr_eq(&id_a, &id_a2));
        // Lookup resolves without inserting; unknown ids stay unknown.
        assert_eq!(interner.lookup("a").unwrap().1, key_a);
        assert!(interner.lookup("ghost").is_none());
        assert_eq!(interner.len(), 2);
        // A ring change re-derives every cached route.
        interner.reroute(&ring5);
        assert_eq!(interner.lookup("a").unwrap().2, ring5.route("a"));
        assert_eq!(interner.lookup("b").unwrap().2, ring5.route("b"));
    }
}
