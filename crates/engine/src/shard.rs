//! Shard workers: each shard is one OS thread owning a disjoint set of
//! tenants, driven by batched requests over an MPSC channel.
//!
//! When a durable store is attached, every state-mutating request is
//! journaled to the shard's write-ahead log *before* it is applied
//! (write-ahead discipline), and checkpoint captures rotate the WAL at the
//! exact request-stream position of the snapshot — the shard thread is the
//! serialization point, so the snapshot/WAL boundary is always consistent.
//!
//! Tenants live in a slab indexed by the engine's interned tenant key
//! (see [`crate::intern`]): the per-event path is an array index, not a
//! string hash. A small id → key side map serves the cold control ops
//! (snapshot/evict/report-by-id), which still arrive keyed by id.

use crate::journal::{JournalEvent, JournalRecord};
use crate::obs::{EngineObs, ShardObs};
use crate::statelist::StateList;
use crate::tenant::{StepScratch, Tenant, TenantConfig, TenantReport, TenantSnapshot};
use crate::EngineError;
use rsdc_sim::metrics::{Metrics, SlotRecord};
use rsdc_store::Durability;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

/// One streamed event: a tenant id (shared, interned), its slab key, the
/// next cost function, and (when the event was derived from a load) the
/// offered load — which feeds the shard-level [`Metrics`].
#[derive(Debug)]
pub struct Event {
    /// Original position in the caller's batch (used to reassemble replies
    /// in submission order).
    pub index: usize,
    /// Tenant id (interned; shared with the engine's intern table).
    pub id: Arc<str>,
    /// The tenant's slab key ([`crate::intern::UNKNOWN_KEY`] when the id
    /// was never admitted — the shard reports it unknown without a probe).
    pub key: u32,
    /// Cost function for this slot.
    pub cost: rsdc_core::Cost,
    /// Offered load, when known.
    pub load: Option<f64>,
}

/// States committed in response to one [`Event`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepOutcome {
    /// Tenant id.
    pub id: Arc<str>,
    /// Newly committed states in slot order (empty while a lookahead
    /// window fills). For heterogeneous tenants: total active machines.
    /// Stored inline for the common short lists, so the hot path commits
    /// without a heap allocation.
    pub states: StateList,
    /// Newly committed configurations in slot order (heterogeneous
    /// tenants only; one vector per committed slot).
    pub configs: Option<Vec<Vec<u32>>>,
    /// Per-event failure (e.g. unknown tenant, or a hetero step without a
    /// load). A failed event never poisons the other events of its batch.
    pub error: Option<String>,
}

/// Aggregate statistics for one shard.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Live tenants.
    pub tenants: usize,
    /// Events processed.
    pub events: u64,
    /// States committed.
    pub states: u64,
    /// Slots recorded in the load-aware metrics.
    pub metric_slots: usize,
    /// Total energy proxy (1 unit per committed server per slot).
    pub total_energy: f64,
    /// Fraction of offered load dropped (capacity shortfall).
    pub drop_rate: f64,
    /// Mean committed servers per load-aware slot.
    pub mean_committed: f64,
    /// Total power-up events.
    pub total_wakes: u32,
}

/// Aggregate shard state that lives outside any tenant: the counters and
/// load metrics a checkpoint must carry for the recovered engine to be
/// bit-identical to the pre-crash one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardMeta {
    /// Shard index.
    pub shard: usize,
    /// Events processed.
    pub events: u64,
    /// States committed.
    pub states: u64,
    /// Load-aware metrics accumulated by this shard.
    pub metrics: Metrics,
}

/// What one shard contributes to a checkpoint: every tenant snapshot plus
/// the shard-level aggregates, captured atomically with the WAL rotation.
#[derive(Debug, Clone)]
pub struct ShardDump {
    /// Tenant snapshots, sorted by id.
    pub snapshots: Vec<TenantSnapshot>,
    /// Shard-level aggregate state.
    pub meta: ShardMeta,
}

/// One shard's reply to a [`Request::Batch`]: the per-event outcomes plus
/// the aggregate pulse the topology policy feeds on (the shard's live
/// tenant count after the batch) — piggybacked so observing load costs no
/// extra round trips.
#[derive(Debug)]
pub struct BatchReply {
    /// Outcomes, tagged with their original batch positions.
    pub outcomes: Vec<(usize, StepOutcome)>,
    /// The drained event buffer, handed back so the engine's dispatch
    /// pool can reuse its capacity (steady state allocates no new event
    /// vectors).
    pub events: Vec<Event>,
    /// Live tenants on this shard after the batch.
    pub tenants: usize,
    /// Machines committed across this shard's tenants after the batch
    /// (sum of last committed states) — the energy meter's load sample.
    pub machines: u64,
}

/// Requests a shard worker serves. Slot-addressed requests carry the
/// interned key the engine resolved; id strings ride along for journaling
/// and error messages.
pub enum Request {
    /// Admit a new tenant under the given interned key.
    Admit(TenantConfig, u32, Sender<Result<(), EngineError>>),
    /// Process a batch of events (already routed to this shard).
    Batch(Vec<Event>, Sender<Result<BatchReply, EngineError>>),
    /// End-of-stream for one tenant: flush lookahead states.
    Finish(String, Sender<Result<StepOutcome, EngineError>>),
    /// Capture one tenant's full state.
    Snapshot(String, Sender<Result<TenantSnapshot, EngineError>>),
    /// Fetch one tenant's static configuration.
    Config(String, Sender<Result<TenantConfig, EngineError>>),
    /// Re-install a tenant from a snapshot (admits it if absent).
    Restore(Box<TenantSnapshot>, u32, Sender<Result<(), EngineError>>),
    /// Migration plumbing: remove a tenant and hand back its snapshot
    /// **without journaling** — an incremental migration's moves are
    /// covered by the write-ahead `Migrate` record plus the fencing
    /// checkpoint, so per-tenant records would corrupt replay (a
    /// journaled `Evict` would delete the tenant on recovery).
    Extract(String, Sender<Result<TenantSnapshot, EngineError>>),
    /// Migration plumbing: install a tenant from a snapshot **without
    /// journaling** (counterpart of [`Extract`](Request::Extract); also
    /// used to land tenants on freshly spawned workers).
    Install(Box<TenantSnapshot>, u32, Sender<Result<(), EngineError>>),
    /// Remove a tenant, returning its final report.
    Evict(String, Sender<Result<TenantReport, EngineError>>),
    /// Report one tenant (`Some(id)`) or all tenants on this shard.
    Report(
        Option<String>,
        Sender<Result<Vec<TenantReport>, EngineError>>,
    ),
    /// Shard-level aggregate statistics.
    Stats(Sender<ShardStats>),
    /// Ids of the tenants living on this shard (sorted).
    TenantIds(Sender<Vec<String>>),
    /// Attach a durability backend: subsequent mutations are journaled.
    AttachStore(Arc<dyn Durability>, Sender<()>),
    /// Journal a record to this shard's WAL without applying anything —
    /// the engine handle routes control-plane records (topology changes)
    /// through the owning shard thread so WAL appends stay serialized.
    Journal(Box<JournalRecord>, Sender<Result<(), EngineError>>),
    /// Capture this shard's checkpoint contribution, rotating its WAL to
    /// the segment for the given checkpoint sequence at the capture point.
    Checkpoint(u64, Sender<Result<ShardDump, EngineError>>),
    /// Install shard-level aggregates from a checkpoint (recovery only).
    InstallMeta(Box<ShardMeta>, Sender<()>),
    /// Merge shard-level aggregates *into* this shard's own (used when an
    /// incremental migration retires shards: the retired indices' history
    /// folds onto shard 0 so fleet totals stay exact).
    MergeMeta(Box<ShardMeta>, Sender<()>),
    /// Stop the worker.
    Shutdown,
}

/// State owned by one shard thread.
pub struct Shard {
    index: usize,
    /// Tenant slab, indexed by interned key. Slots for tenants living on
    /// other shards (or evicted) are `None`; the vector grows to the
    /// engine-wide key space high-water mark.
    slots: Vec<Option<Tenant>>,
    /// Cold-path id → key map for the control ops that address by id.
    by_id: HashMap<String, u32>,
    metrics: Metrics,
    events: u64,
    states: u64,
    store: Option<Arc<dyn Durability>>,
    obs: ShardObs,
    scratch: StepScratch,
}

impl Shard {
    /// Worker entry point: serve requests until `Shutdown` or hangup.
    pub fn run(index: usize, rx: Receiver<Request>, obs: Arc<EngineObs>) {
        let mut shard = Shard {
            index,
            slots: Vec::new(),
            by_id: HashMap::new(),
            metrics: Metrics::default(),
            events: 0,
            states: 0,
            store: None,
            obs: ShardObs::for_shard(&obs, index),
            scratch: StepScratch::default(),
        };
        while let Ok(req) = rx.recv() {
            match req {
                Request::Admit(cfg, key, reply) => {
                    let _ = reply.send(shard.admit(cfg, key));
                }
                Request::Batch(events, reply) => {
                    let _ = reply.send(shard.batch(events));
                }
                Request::Finish(id, reply) => {
                    let _ = reply.send(shard.finish(&id));
                }
                Request::Snapshot(id, reply) => {
                    let _ = reply.send(shard.tenant(&id).map(|t| t.snapshot()));
                }
                Request::Config(id, reply) => {
                    let _ = reply.send(shard.tenant(&id).map(|t| t.config().clone()));
                }
                Request::Restore(snapshot, key, reply) => {
                    let _ = reply.send(shard.restore(*snapshot, key));
                }
                Request::Extract(id, reply) => {
                    let _ = reply.send(shard.extract(&id));
                }
                Request::Install(snapshot, key, reply) => {
                    let _ = reply.send(shard.install(*snapshot, key));
                }
                Request::Evict(id, reply) => {
                    let _ = reply.send(shard.evict(&id));
                }
                Request::Report(Some(id), reply) => {
                    let _ = reply.send(shard.tenant(&id).map(|t| vec![t.report()]));
                }
                Request::Report(None, reply) => {
                    let mut reports: Vec<TenantReport> = shard.live().map(|t| t.report()).collect();
                    reports.sort_by(|a, b| a.id.cmp(&b.id));
                    let _ = reply.send(Ok(reports));
                }
                Request::Stats(reply) => {
                    let _ = reply.send(shard.stats());
                }
                Request::TenantIds(reply) => {
                    let mut ids: Vec<String> = shard.by_id.keys().cloned().collect();
                    ids.sort_unstable();
                    let _ = reply.send(ids);
                }
                Request::AttachStore(store, reply) => {
                    shard.store = Some(store);
                    let _ = reply.send(());
                }
                Request::Journal(record, reply) => {
                    let _ = reply.send(shard.journal(&record));
                }
                Request::Checkpoint(seq, reply) => {
                    let _ = reply.send(shard.checkpoint(seq));
                }
                Request::InstallMeta(meta, reply) => {
                    shard.events = meta.events;
                    shard.states = meta.states;
                    shard.metrics = meta.metrics;
                    let _ = reply.send(());
                }
                Request::MergeMeta(meta, reply) => {
                    shard.events += meta.events;
                    shard.states += meta.states;
                    shard.metrics.merge(&meta.metrics);
                    let _ = reply.send(());
                }
                Request::Shutdown => break,
            }
        }
        // Whatever the store buffered reaches disk before the thread dies.
        if let Some(store) = &shard.store {
            let _ = store.sync();
        }
    }

    fn durable(&self) -> bool {
        self.store.as_ref().is_some_and(|s| s.is_durable())
    }

    /// Write-ahead hook: persist `record` to this shard's WAL. Callers
    /// journal *before* mutating, so a crash between the two replays the
    /// mutation instead of losing it.
    fn journal(&self, record: &JournalRecord) -> Result<(), EngineError> {
        if self.durable() {
            let store = self.store.as_ref().expect("durable implies store");
            store
                .append(self.index, &record.encode())
                .map_err(|e| EngineError::Store(e.to_string()))?;
        }
        Ok(())
    }

    fn checkpoint(&mut self, seq: u64) -> Result<ShardDump, EngineError> {
        if self.durable() {
            let store = self.store.as_ref().expect("durable implies store");
            store
                .rotate(self.index, seq)
                .map_err(|e| EngineError::Store(e.to_string()))?;
        }
        let mut snapshots: Vec<TenantSnapshot> = self.live().map(|t| t.snapshot()).collect();
        snapshots.sort_by(|a, b| a.config.id.cmp(&b.config.id));
        Ok(ShardDump {
            snapshots,
            meta: ShardMeta {
                shard: self.index,
                events: self.events,
                states: self.states,
                metrics: self.metrics.clone(),
            },
        })
    }

    /// Iterate the live tenants of this shard.
    fn live(&self) -> impl Iterator<Item = &Tenant> {
        self.slots.iter().flatten()
    }

    fn tenant(&self, id: &str) -> Result<&Tenant, EngineError> {
        self.by_id
            .get(id)
            .and_then(|&key| self.slots.get(key as usize))
            .and_then(|slot| slot.as_ref())
            .ok_or_else(|| EngineError::UnknownTenant(id.to_string()))
    }

    /// Grow the slab to cover `key` and place `tenant` there.
    fn place(&mut self, key: u32, tenant: Tenant) {
        let at = key as usize;
        if at >= self.slots.len() {
            self.slots.resize_with(at + 1, || None);
        }
        let id = tenant.config().id.clone();
        self.slots[at] = Some(tenant);
        self.by_id.insert(id, key);
    }

    fn admit(&mut self, cfg: TenantConfig, key: u32) -> Result<(), EngineError> {
        if self.by_id.contains_key(&cfg.id) {
            return Err(EngineError::DuplicateTenant(cfg.id));
        }
        // Validate (and build) before journaling so an invalid config is
        // rejected without leaving a doomed admit in the WAL.
        let tenant = Tenant::new(cfg.clone()).map_err(EngineError::Policy)?;
        self.journal(&JournalRecord::Admit(cfg))?;
        self.place(key, tenant);
        Ok(())
    }

    fn take(&mut self, id: &str) -> Option<Tenant> {
        let key = self.by_id.remove(id)?;
        self.slots
            .get_mut(key as usize)
            .and_then(|slot| slot.take())
    }

    fn evict(&mut self, id: &str) -> Result<TenantReport, EngineError> {
        if !self.by_id.contains_key(id) {
            return Err(EngineError::UnknownTenant(id.to_string()));
        }
        self.journal(&JournalRecord::Evict(id.to_string()))?;
        Ok(self.take(id).expect("checked above").report())
    }

    /// Remove a tenant and return its snapshot, bypassing the journal
    /// (incremental-migration plumbing; see [`Request::Extract`]).
    fn extract(&mut self, id: &str) -> Result<TenantSnapshot, EngineError> {
        self.take(id)
            .map(|t| t.snapshot())
            .ok_or_else(|| EngineError::UnknownTenant(id.to_string()))
    }

    /// Install a tenant from a snapshot, bypassing the journal
    /// (incremental-migration plumbing; see [`Request::Install`]).
    fn install(&mut self, snapshot: TenantSnapshot, key: u32) -> Result<(), EngineError> {
        let tenant = Tenant::from_snapshot(snapshot).map_err(EngineError::Policy)?;
        self.place(key, tenant);
        Ok(())
    }

    fn batch(&mut self, mut events: Vec<Event>) -> Result<BatchReply, EngineError> {
        // One clock pair per *batch*, journal included, gated on a bool
        // baked in at spawn — with metrics off the hot path pays exactly
        // this branch and two counter no-ops.
        let lap = if self.obs.enabled {
            Some(Instant::now())
        } else {
            None
        };
        if self.durable() {
            // The whole batch is one WAL record, including events that will
            // fail with a per-event error: replay reproduces the outcomes
            // identically either way, and one record per batch is what
            // keeps journaling off the per-event hot path.
            let record = JournalRecord::Batch(
                events
                    .iter()
                    .map(|ev| JournalEvent {
                        id: ev.id.to_string(),
                        cost: ev.cost.clone(),
                        load: ev.load,
                    })
                    .collect(),
            );
            self.journal(&record)?;
        }
        let mut out = Vec::with_capacity(events.len());
        let (mut ingested, mut dropped) = (0u64, 0u64);
        for ev in events.drain(..) {
            let Some(tenant) = self
                .slots
                .get_mut(ev.key as usize)
                .and_then(|slot| slot.as_mut())
            else {
                dropped += 1;
                out.push((
                    ev.index,
                    StepOutcome {
                        error: Some(EngineError::UnknownTenant(ev.id.to_string()).to_string()),
                        id: ev.id,
                        states: StateList::new(),
                        configs: None,
                    },
                ));
                continue;
            };
            match tenant.step_into(&ev.cost, ev.load, &mut self.scratch) {
                Ok(()) => {
                    let effect = &self.scratch.effect;
                    self.events += 1;
                    ingested += 1;
                    self.states += effect.commits.len() as u64;
                    out.push((
                        ev.index,
                        StepOutcome {
                            id: ev.id,
                            states: effect.state_list(),
                            configs: effect.configs(),
                            error: None,
                        },
                    ));
                    self.meter();
                }
                // Deterministic per-event failure (e.g. a hetero step with
                // no load): replay reproduces it identically.
                Err(e) => {
                    dropped += 1;
                    out.push((
                        ev.index,
                        StepOutcome {
                            id: ev.id,
                            states: StateList::new(),
                            configs: None,
                            error: Some(e.to_string()),
                        },
                    ));
                }
            }
        }
        self.obs.ingested.add(ingested);
        self.obs.dropped.add(dropped);
        if let Some(start) = lap {
            self.obs
                .batch_ns
                .record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        Ok(BatchReply {
            outcomes: out,
            events,
            tenants: self.by_id.len(),
            machines: self.live().map(|t| t.last_state() as u64).sum(),
        })
    }

    fn finish(&mut self, id: &str) -> Result<StepOutcome, EngineError> {
        let Some(&key) = self.by_id.get(id) else {
            return Err(EngineError::UnknownTenant(id.to_string()));
        };
        self.journal(&JournalRecord::Finish(id.to_string()))?;
        let tenant = self.slots[key as usize].as_mut().expect("keyed above");
        let effect = tenant.finish();
        self.states += effect.commits.len() as u64;
        let id: Arc<str> = Arc::from(id);
        let outcome = StepOutcome {
            id,
            states: effect.state_list(),
            configs: effect.configs(),
            error: None,
        };
        self.scratch.effect = effect;
        self.meter();
        Ok(outcome)
    }

    /// Feed the scratch effect's committed slots into the load-aware
    /// metrics. Each commit pairs a state with *its own* slot's load (they
    /// differ under lookahead lag), using a logical-fleet model: 1 power
    /// unit per committed server per slot, "serving" equal to the
    /// committed state.
    fn meter(&mut self) {
        for c in &self.scratch.effect.commits {
            let Some(load) = c.load else { continue };
            let x = c.state;
            self.metrics.push(SlotRecord {
                target: x,
                committed: x,
                serving: x,
                load,
                served: load.min(x as f64),
                dropped: (load - x as f64).max(0.0),
                utilisation: if x > 0 {
                    (load / x as f64).min(1.0)
                } else {
                    0.0
                },
                power: x as f64,
                wake_energy: 0.0,
                woken: c.ups as u32,
                slept: c.downs as u32,
            });
        }
    }

    fn restore(&mut self, snapshot: TenantSnapshot, key: u32) -> Result<(), EngineError> {
        if self.durable() {
            self.journal(&JournalRecord::Restore(Box::new(snapshot.clone())))?;
        }
        self.install(snapshot, key)
    }

    fn stats(&self) -> ShardStats {
        ShardStats {
            shard: self.index,
            tenants: self.by_id.len(),
            events: self.events,
            states: self.states,
            metric_slots: self.metrics.slots(),
            total_energy: self.metrics.total_energy(),
            drop_rate: self.metrics.drop_rate(),
            mean_committed: self.metrics.mean_committed(),
            total_wakes: self.metrics.total_wakes(),
        }
    }
}
