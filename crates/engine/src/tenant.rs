//! Tenants: one streaming policy instance plus its running accounting.
//!
//! Two tenant families share one accounting core:
//!
//! * **scalar** tenants run a homogeneous
//!   [`rsdc_online::streaming::StreamingPolicy`] over 1-D costs and commit
//!   scalar states;
//! * **heterogeneous** tenants ([`PolicySpec::Hetero`]) run an
//!   [`rsdc_hetero::HeteroStream`] over per-slot offered loads and commit
//!   configuration vectors. The scalar accounting fields then track the
//!   *total* active machines (so shard metrics and schedule statistics
//!   stay uniform), while operating/switching costs come from the stream's
//!   exact per-commit fleet accounting (per-type betas).

use rsdc_core::analysis::{CostBreakdown, Direction, ScheduleStats};
use rsdc_core::prelude::*;
use rsdc_hetero::{FleetSpec, HeteroAlgo, HeteroSnapshot, HeteroStream};
use rsdc_online::bounds::{BoundTracker, TrackerSnapshot};
use rsdc_online::streaming::{
    StreamFollowMin, StreamHysteresis, StreamLcp, StreamLookahead, StreamRounded, StreamingPolicy,
};
use rsdc_workloads::builder::CostModel;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which online policy a tenant runs. Serializable so admit records and
/// snapshots can carry it over the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// Discrete Lazy Capacity Provisioning (3-competitive, Theorem 2).
    Lcp,
    /// Half-subgradient fractional algorithm + Section 4 rounding
    /// (the CLI's `randomized` policy).
    HalfStepRounded {
        /// Rounder RNG seed.
        seed: u64,
    },
    /// Fractional LCP on a `1/k` grid + Section 4 rounding.
    FlcpRounded {
        /// Grid resolution (`k >= 1`).
        k: u32,
        /// Rounder RNG seed.
        seed: u64,
    },
    /// Memoryless balance + Section 4 rounding.
    MemorylessRounded {
        /// Rounder RNG seed.
        seed: u64,
    },
    /// LCP with a prediction window (states lag the stream by `window`).
    Lookahead {
        /// Window length `w`.
        window: usize,
    },
    /// Follow-the-minimizer baseline.
    FollowTheMinimizer,
    /// Hysteresis baseline with a dead-band.
    Hysteresis {
        /// Dead-band width.
        band: u32,
    },
    /// Heterogeneous fleet: vector configurations over the machine-class
    /// lattice, driven by the streaming lattice DP (or the greedy
    /// baseline). Step events must carry a `load`, priced through the
    /// fleet's aggregate cost.
    Hetero {
        /// Machine classes plus aggregate-cost parameters.
        fleet: FleetSpec,
        /// Which hetero policy drives the stream.
        algo: HeteroAlgo,
    },
}

/// A live policy instance: the scalar streaming wrappers, or a
/// heterogeneous stream with vector states and its own fleet accounting.
pub enum PolicyRuntime {
    /// Homogeneous policy over 1-D costs (scalar states).
    Scalar(Box<dyn StreamingPolicy>),
    /// Heterogeneous lattice policy over offered loads (vector states).
    Hetero(Box<HeteroStream>),
}

impl PolicySpec {
    /// True for the heterogeneous variant (whose step events must carry a
    /// `load` rather than an explicit 1-D cost).
    pub fn is_hetero(&self) -> bool {
        matches!(self, PolicySpec::Hetero { .. })
    }

    /// Instantiate the policy for a tenant with `m` servers and power-up
    /// cost `beta` (both ignored by the hetero variant, which carries its
    /// own fleet spec). `track_opt` sizes the hetero prefix-optimum
    /// tracker; scalar policies track through a separate [`BoundTracker`].
    pub fn build(
        &self,
        m: u32,
        beta: f64,
        track_opt: bool,
    ) -> Result<PolicyRuntime, rsdc_core::Error> {
        Ok(match self {
            PolicySpec::Lcp => PolicyRuntime::Scalar(Box::new(StreamLcp::new(m, beta))),
            PolicySpec::HalfStepRounded { seed } => {
                PolicyRuntime::Scalar(Box::new(StreamRounded::halfstep(m, beta, *seed)))
            }
            PolicySpec::FlcpRounded { k, seed } => {
                PolicyRuntime::Scalar(Box::new(StreamRounded::flcp(m, beta, *k, *seed)))
            }
            PolicySpec::MemorylessRounded { seed } => {
                PolicyRuntime::Scalar(Box::new(StreamRounded::memoryless(m, beta, *seed)))
            }
            PolicySpec::Lookahead { window } => {
                PolicyRuntime::Scalar(Box::new(StreamLookahead::new(m, beta, *window)))
            }
            PolicySpec::FollowTheMinimizer => {
                PolicyRuntime::Scalar(Box::new(StreamFollowMin::new(m)))
            }
            PolicySpec::Hysteresis { band } => {
                PolicyRuntime::Scalar(Box::new(StreamHysteresis::new(m, *band)))
            }
            PolicySpec::Hetero { fleet, algo } => PolicyRuntime::Hetero(Box::new(
                HeteroStream::new(fleet.clone(), *algo, track_opt)?,
            )),
        })
    }

    /// Parse the CLI short syntax: `lcp`, `halfstep[:seed]`,
    /// `flcp[:k[,seed]]`, `memoryless[:seed]`, `lookahead[:w]`, `followmin`,
    /// `hysteresis[:band]`.
    pub fn parse_short(s: &str) -> Result<PolicySpec, String> {
        let (name, arg) = match s.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (s, None),
        };
        let num = |a: Option<&str>, default: u64| -> Result<u64, String> {
            match a {
                None => Ok(default),
                Some(x) => x.parse().map_err(|e| format!("bad number {x:?}: {e}")),
            }
        };
        match name {
            "lcp" => Ok(PolicySpec::Lcp),
            "halfstep" | "randomized" => Ok(PolicySpec::HalfStepRounded {
                seed: num(arg, 0)?,
            }),
            "flcp" => {
                let (k, seed) = match arg {
                    None => (4, 0),
                    Some(a) => match a.split_once(',') {
                        None => (num(Some(a), 4)?, 0),
                        Some((k, s)) => (num(Some(k), 4)?, num(Some(s), 0)?),
                    },
                };
                Ok(PolicySpec::FlcpRounded { k: k as u32, seed })
            }
            "memoryless" => Ok(PolicySpec::MemorylessRounded {
                seed: num(arg, 0)?,
            }),
            "lookahead" => Ok(PolicySpec::Lookahead {
                window: num(arg, 1)? as usize,
            }),
            "followmin" => Ok(PolicySpec::FollowTheMinimizer),
            "hysteresis" => Ok(PolicySpec::Hysteresis {
                band: num(arg, 1)? as u32,
            }),
            other => Err(format!(
                "unknown policy {other:?} (lcp|halfstep|flcp|memoryless|lookahead|followmin|hysteresis)"
            )),
        }
    }
}

/// Static configuration of one tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantConfig {
    /// Unique tenant id (the sharding key).
    pub id: String,
    /// Fleet size `m`.
    pub m: u32,
    /// Power-up cost `beta`.
    pub beta: f64,
    /// The online policy to run.
    pub policy: PolicySpec,
    /// Maintain a prefix-optimum tracker (one extra `O(m)` pass per event)
    /// so reports include the competitive ratio.
    pub track_opt: bool,
    /// Cost model used to price raw `load` events for this tenant, when it
    /// differs from the beta-derived default. Carried in the config (and
    /// therefore in snapshots and journaled admits) so load pricing
    /// survives crash recovery.
    pub cost_model: Option<CostModel>,
}

impl TenantConfig {
    /// Tenant with the given id/model and policy; `track_opt` off.
    pub fn new(id: impl Into<String>, m: u32, beta: f64, policy: PolicySpec) -> Self {
        Self {
            id: id.into(),
            m,
            beta,
            policy,
            track_opt: false,
            cost_model: None,
        }
    }

    /// Heterogeneous tenant over `fleet`, driven by `algo`. The scalar
    /// `m` is set to the fleet's total machine count (it bounds the
    /// total-machines statistics) and `beta` to 0 (switching is priced
    /// per machine class inside the stream, not by the scalar accounting).
    pub fn hetero(id: impl Into<String>, fleet: FleetSpec, algo: HeteroAlgo) -> Self {
        let m = fleet.total_machines();
        Self {
            id: id.into(),
            m,
            beta: 0.0,
            policy: PolicySpec::Hetero { fleet, algo },
            track_opt: false,
            cost_model: None,
        }
    }

    /// Enable competitive-ratio tracking.
    pub fn with_opt_tracking(mut self) -> Self {
        self.track_opt = true;
        self
    }

    /// Attach an explicit cost model for `load`-carrying events.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = Some(model);
        self
    }

    /// The cost model that prices this tenant's `load` events: the
    /// explicit one, or the beta-derived default.
    pub fn load_cost_model(&self) -> CostModel {
        self.cost_model.unwrap_or(CostModel {
            beta: self.beta,
            ..CostModel::default()
        })
    }
}

/// A tenant's share of the metered energy, attributed by the engine
/// handle (shards know nothing about power models).
///
/// Attribution charges each tenant its committed machines times the
/// per-machine draw at its shard's utilization, every metered tick. The
/// idle floor a shard burns with zero committed machines stays
/// unattributed, so the fleet-wide meter total is an upper bound on the
/// sum of tenant shares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantEnergy {
    /// Joules (watt·ticks) attributed to this tenant.
    pub joules: f64,
    /// Priced cost attributed to this tenant.
    pub cost: f64,
}

/// Point-in-time report for one tenant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant id.
    pub id: String,
    /// Policy display name.
    pub policy: String,
    /// Cost functions ingested.
    pub events: u64,
    /// States committed (lags `events` for lookahead tenants).
    pub committed: u64,
    /// Most recently committed state. For heterogeneous tenants this is
    /// the total active machines across classes; see `last_config`.
    pub last_state: u32,
    /// Most recently committed configuration (heterogeneous tenants only;
    /// one entry per machine class).
    pub last_config: Option<Vec<u32>>,
    /// Running cost decomposition (operating + power-up switching), the
    /// eq. 1 objective over the committed prefix.
    pub breakdown: CostBreakdown,
    /// Structural statistics of the committed schedule, maintained
    /// incrementally with the same phase semantics as
    /// [`rsdc_core::analysis::stats`].
    pub stats: ScheduleStats,
    /// Prefix offline optimum (min over `x` of `\hat C^L`), when tracked.
    pub opt_cost: Option<f64>,
    /// `breakdown.total() / opt_cost`, when tracked and meaningful.
    pub ratio: Option<f64>,
    /// Attributed energy, filled in by the engine handle when energy
    /// accounting is enabled (shards always report `None` — the power
    /// runtime lives on the handle, outside journaled state).
    pub energy: Option<TenantEnergy>,
}

/// Serializable full state of a tenant (policy + accounting).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantSnapshot {
    /// Tenant configuration (used to rebuild the policy before restore).
    pub config: TenantConfig,
    /// Events ingested.
    pub events: u64,
    /// States committed.
    pub committed: u64,
    /// Previous committed state.
    pub prev_state: u32,
    /// Running operating cost.
    pub operating: f64,
    /// Running switching cost.
    pub switching: f64,
    /// Total power-ups.
    pub ups: u64,
    /// Total power-downs.
    pub downs: u64,
    /// Slots where the state changed.
    pub change_slots: u64,
    /// Peak state.
    pub peak: u32,
    /// Sum of committed states (for the mean).
    pub sum_states: f64,
    /// Phases closed so far (monotone-run decomposition).
    pub phases_closed: u64,
    /// Direction of the open phase.
    pub dir: Direction,
    /// Policy-specific snapshot payload.
    pub policy: serde::Value,
    /// Slots ingested but not yet matched to a committed state
    /// (lookahead lag).
    pub pending: Vec<PendingSlot>,
    /// Prefix-optimum tracker state, when tracked.
    pub opt: Option<TrackerSnapshot>,
}

/// A slot that has been ingested but whose state is not yet committed
/// (lookahead lag): the cost function plus the offered load, when known.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PendingSlot {
    /// The slot's cost function.
    pub cost: Cost,
    /// The slot's offered load, when the event carried one.
    pub load: Option<f64>,
}

/// A live tenant: policy instance plus incrementally maintained accounting.
pub struct Tenant {
    cfg: TenantConfig,
    policy: PolicyRuntime,
    events: u64,
    committed: u64,
    prev_state: u32,
    operating: f64,
    switching: f64,
    ups: u64,
    downs: u64,
    change_slots: u64,
    peak: u32,
    sum_states: f64,
    phases_closed: u64,
    dir: Direction,
    pending: VecDeque<PendingSlot>,
    opt: Option<BoundTracker>,
}

/// One committed slot, paired with its own slot's load and movement (for
/// shard-level metrics).
#[derive(Debug, Clone)]
pub struct Commit {
    /// The committed state (total active machines for hetero tenants).
    pub state: u32,
    /// The committed configuration (hetero tenants only).
    pub config: Option<Vec<u32>>,
    /// The offered load of the slot this state serves (not the load of the
    /// event that triggered the commit — they differ under lookahead lag).
    pub load: Option<f64>,
    /// Servers powered up entering this slot.
    pub ups: u64,
    /// Servers powered down entering this slot.
    pub downs: u64,
}

/// What one ingest produced.
#[derive(Debug, Clone, Default)]
pub struct StepEffect {
    /// Slots committed by this event, in slot order.
    pub commits: Vec<Commit>,
}

/// Reusable buffers for the allocation-free ingest path: the scalar
/// policy's output states and the effect under construction. One scratch
/// lives per shard and is threaded through [`Tenant::step_into`] for
/// every event, so the steady-state batch loop performs no per-event
/// heap allocation (the vectors keep their high-water capacity).
#[derive(Default)]
pub struct StepScratch {
    out: Vec<u32>,
    /// The effect of the last [`Tenant::step_into`] call.
    pub effect: StepEffect,
}

impl StepEffect {
    /// The committed states in slot order.
    pub fn states(&self) -> Vec<u32> {
        self.commits.iter().map(|c| c.state).collect()
    }

    /// The committed states as an inline-capable [`crate::statelist::StateList`]
    /// (allocation-free for the common short lists).
    pub fn state_list(&self) -> crate::statelist::StateList {
        self.commits.iter().map(|c| c.state).collect()
    }

    /// The committed configurations in slot order (hetero tenants only;
    /// `None` when no commit carried one).
    pub fn configs(&self) -> Option<Vec<Vec<u32>>> {
        let configs: Vec<Vec<u32>> = self
            .commits
            .iter()
            .filter_map(|c| c.config.clone())
            .collect();
        (!configs.is_empty()).then_some(configs)
    }
}

impl Tenant {
    /// Build a fresh tenant from its configuration. Fails when the
    /// configuration is invalid (e.g. a degenerate or oversized fleet).
    pub fn new(cfg: TenantConfig) -> Result<Self, rsdc_core::Error> {
        let policy = cfg.policy.build(cfg.m, cfg.beta, cfg.track_opt)?;
        let opt =
            (cfg.track_opt && !cfg.policy.is_hetero()).then(|| BoundTracker::new(cfg.m, cfg.beta));
        Ok(Self {
            policy,
            opt,
            cfg,
            events: 0,
            committed: 0,
            prev_state: 0,
            operating: 0.0,
            switching: 0.0,
            ups: 0,
            downs: 0,
            change_slots: 0,
            peak: 0,
            sum_states: 0.0,
            phases_closed: 0,
            dir: Direction::Flat,
            pending: VecDeque::new(),
        })
    }

    /// The tenant's configuration.
    pub fn config(&self) -> &TenantConfig {
        &self.cfg
    }

    /// The most recently committed state (total active machines for
    /// heterogeneous tenants) — the cheap accessor the shard's
    /// machine-count aggregation reads per batch.
    pub fn last_state(&self) -> u32 {
        self.prev_state
    }

    /// Monotone-phase state machine over the (total-machines) state,
    /// mirroring `rsdc_core::analysis::phases`.
    fn advance_phase(&mut self, x: u32) {
        if self.committed > 0 {
            let step_dir = match x.cmp(&self.prev_state) {
                std::cmp::Ordering::Greater => Direction::Up,
                std::cmp::Ordering::Less => Direction::Down,
                std::cmp::Ordering::Equal => Direction::Flat,
            };
            match (self.dir, step_dir) {
                (_, Direction::Flat) => {}
                (Direction::Flat, d) => self.dir = d,
                (d, e) if d == e => {}
                (_, e) => {
                    self.phases_closed += 1;
                    self.dir = e;
                }
            }
        }
    }

    /// Shared accounting epilogue for one committed slot, scalar or
    /// hetero: movement counters, change/phase/peak/mean statistics, and
    /// the effect's `Commit`. `total` is the committed state (total active
    /// machines for hetero tenants). A slot counts as changed whenever any
    /// machine moved — for hetero tenants a reshuffle across classes can
    /// keep the total constant while `ups + downs > 0`.
    fn commit_slot(
        &mut self,
        total: u32,
        ups: u64,
        downs: u64,
        config: Option<Vec<u32>>,
        load: Option<f64>,
        effect: &mut StepEffect,
    ) {
        self.ups += ups;
        self.downs += downs;
        if ups + downs > 0 {
            self.change_slots += 1;
        }
        self.advance_phase(total);
        self.peak = self.peak.max(total);
        self.sum_states += total as f64;
        self.committed += 1;
        self.prev_state = total;
        effect.commits.push(Commit {
            state: total,
            config,
            load,
            ups,
            downs,
        });
    }

    fn account(&mut self, x: u32, effect: &mut StepEffect) {
        let slot = self
            .pending
            .pop_front()
            .expect("policy committed more states than costs ingested");
        self.operating += slot.cost.eval(x);
        // The prefix optimum advances per *committed* slot, so mid-stream
        // ratios always compare cost and optimum over the same prefix even
        // under lookahead lag.
        if let Some(opt) = &mut self.opt {
            opt.step(&slot.cost);
        }
        let up = x.saturating_sub(self.prev_state) as u64;
        let down = self.prev_state.saturating_sub(x) as u64;
        self.switching += self.cfg.beta * up as f64;
        self.commit_slot(x, up, down, None, slot.load, effect);
    }

    /// Hetero accounting: the stream reports exact per-commit fleet costs;
    /// the scalar aggregates track total active machines.
    fn account_hetero(
        &mut self,
        commit: rsdc_hetero::HeteroCommit,
        load: Option<f64>,
        effect: &mut StepEffect,
    ) {
        let total: u32 = commit.config.iter().sum();
        self.operating += commit.operating;
        self.switching += commit.switching;
        self.commit_slot(
            total,
            commit.ups,
            commit.downs,
            Some(commit.config),
            load,
            effect,
        );
    }

    /// Ingest one cost function (with the slot's offered load, when known).
    /// Heterogeneous tenants require the load (their slot cost is priced
    /// through the fleet spec; the 1-D cost is ignored) and fail without
    /// one.
    pub fn step(&mut self, f: &Cost, load: Option<f64>) -> Result<StepEffect, rsdc_core::Error> {
        let mut scratch = StepScratch::default();
        self.step_into(f, load, &mut scratch)?;
        Ok(scratch.effect)
    }

    /// [`Tenant::step`] through caller-owned scratch buffers: the effect
    /// lands in `scratch.effect` (cleared first), and for scalar tenants
    /// the warmed-up path allocates nothing. This is the shard batch
    /// loop's entry point.
    pub fn step_into(
        &mut self,
        f: &Cost,
        load: Option<f64>,
        scratch: &mut StepScratch,
    ) -> Result<(), rsdc_core::Error> {
        scratch.out.clear();
        scratch.effect.commits.clear();
        match &mut self.policy {
            PolicyRuntime::Scalar(policy) => {
                self.events += 1;
                self.pending.push_back(PendingSlot {
                    cost: f.clone(),
                    load,
                });
                policy.ingest(f, &mut scratch.out);
            }
            PolicyRuntime::Hetero(stream) => {
                let Some(lambda) = load else {
                    return Err(rsdc_core::Error::InvalidParameter(format!(
                        "hetero tenant {:?} requires a load-carrying step event",
                        self.cfg.id
                    )));
                };
                self.events += 1;
                let commit = stream.ingest(lambda);
                self.account_hetero(commit, load, &mut scratch.effect);
                return Ok(());
            }
        }
        for i in 0..scratch.out.len() {
            let x = scratch.out[i];
            self.account(x, &mut scratch.effect);
        }
        Ok(())
    }

    /// End-of-stream: flush lookahead states (a no-op for hetero tenants,
    /// which commit one configuration per ingested load).
    pub fn finish(&mut self) -> StepEffect {
        let mut out = Vec::new();
        if let PolicyRuntime::Scalar(policy) = &mut self.policy {
            policy.finish(&mut out);
        }
        let mut effect = StepEffect::default();
        for x in out {
            self.account(x, &mut effect);
        }
        effect
    }

    /// Current report.
    pub fn report(&self) -> TenantReport {
        let opt_cost = match &self.policy {
            PolicyRuntime::Scalar(_) => self.opt.as_ref().and_then(|t| {
                (t.tau() > 0).then(|| {
                    (0..=self.cfg.m)
                        .map(|x| t.c_low(x))
                        .fold(f64::INFINITY, f64::min)
                })
            }),
            PolicyRuntime::Hetero(stream) => {
                self.cfg.track_opt.then(|| stream.opt_cost()).flatten()
            }
        };
        let total = self.operating + self.switching;
        let ratio = opt_cost.map(|opt| {
            if opt.abs() < 1e-300 {
                if total.abs() < 1e-300 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                total / opt
            }
        });
        let phase_count = if self.committed == 0 {
            0
        } else {
            (self.phases_closed + 1) as usize
        };
        TenantReport {
            id: self.cfg.id.clone(),
            policy: match &self.policy {
                PolicyRuntime::Scalar(policy) => policy.name(),
                PolicyRuntime::Hetero(stream) => stream.name(),
            },
            events: self.events,
            committed: self.committed,
            last_state: self.prev_state,
            last_config: match &self.policy {
                PolicyRuntime::Scalar(_) => None,
                PolicyRuntime::Hetero(stream) => Some(stream.last_config().clone()),
            },
            breakdown: CostBreakdown {
                operating: self.operating,
                switching: self.switching,
            },
            stats: ScheduleStats {
                total_power_ups: self.ups,
                total_power_downs: self.downs,
                change_slots: self.change_slots as usize,
                peak: self.peak,
                mean: if self.committed == 0 {
                    0.0
                } else {
                    self.sum_states / self.committed as f64
                },
                phase_count,
            },
            opt_cost,
            ratio,
            energy: None,
        }
    }

    /// Capture the full tenant state.
    pub fn snapshot(&self) -> TenantSnapshot {
        TenantSnapshot {
            config: self.cfg.clone(),
            events: self.events,
            committed: self.committed,
            prev_state: self.prev_state,
            operating: self.operating,
            switching: self.switching,
            ups: self.ups,
            downs: self.downs,
            change_slots: self.change_slots,
            peak: self.peak,
            sum_states: self.sum_states,
            phases_closed: self.phases_closed,
            dir: self.dir,
            policy: match &self.policy {
                PolicyRuntime::Scalar(policy) => policy.snapshot(),
                PolicyRuntime::Hetero(stream) => stream.snapshot().to_value(),
            },
            pending: self.pending.iter().cloned().collect(),
            opt: self.opt.as_ref().map(|t| t.snapshot()),
        }
    }

    /// Rebuild a tenant from a snapshot.
    pub fn from_snapshot(s: TenantSnapshot) -> Result<Self, rsdc_core::Error> {
        let mut tenant = Tenant::new(s.config)?;
        match &mut tenant.policy {
            PolicyRuntime::Scalar(policy) => policy.restore(&s.policy)?,
            PolicyRuntime::Hetero(stream) => {
                let snap = HeteroSnapshot::from_value(&s.policy).map_err(|e| {
                    rsdc_core::Error::InvalidParameter(format!("bad hetero snapshot: {e}"))
                })?;
                stream.restore(&snap)?;
            }
        }
        tenant.events = s.events;
        tenant.committed = s.committed;
        tenant.prev_state = s.prev_state;
        tenant.operating = s.operating;
        tenant.switching = s.switching;
        tenant.ups = s.ups;
        tenant.downs = s.downs;
        tenant.change_slots = s.change_slots;
        tenant.peak = s.peak;
        tenant.sum_states = s.sum_states;
        tenant.phases_closed = s.phases_closed;
        tenant.dir = s.dir;
        tenant.pending = s.pending.into_iter().collect();
        tenant.opt = match s.opt {
            Some(t) => Some(BoundTracker::from_snapshot(&t)?),
            None => {
                // Hetero tenants track their optimum inside the stream
                // snapshot (the hetero restore above enforces its presence).
                if tenant.cfg.track_opt && !tenant.cfg.policy.is_hetero() {
                    return Err(rsdc_core::Error::InvalidParameter(
                        "snapshot lacks the opt tracker its config requires".into(),
                    ));
                }
                None
            }
        };
        Ok(tenant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsdc_core::analysis;
    use rsdc_online::traits::run;

    fn costs(n: usize) -> Vec<Cost> {
        (0..n)
            .map(|t| Cost::abs(1.0 + (t % 2) as f64, ((t * 3 + 1) % 7) as f64))
            .collect()
    }

    #[test]
    fn accounting_matches_batch_analysis() {
        let fs = costs(48);
        let inst = Instance::new(6, 2.0, fs.clone()).unwrap();
        let mut tenant =
            Tenant::new(TenantConfig::new("t", 6, 2.0, PolicySpec::Lcp).with_opt_tracking())
                .unwrap();
        let mut xs = Vec::new();
        for f in &fs {
            xs.extend(tenant.step(f, None).unwrap().states());
        }
        xs.extend(tenant.finish().states());
        let schedule = Schedule(xs);
        // Same schedule as batch LCP.
        let batch = run(&mut rsdc_online::Lcp::new(6, 2.0), &inst);
        assert_eq!(schedule, batch);
        // Incremental accounting equals the batch analysis exactly.
        let report = tenant.report();
        let breakdown = analysis::breakdown(&inst, &schedule);
        assert_eq!(report.breakdown.operating, breakdown.operating);
        assert_eq!(report.breakdown.switching, breakdown.switching);
        let stats = analysis::stats(&schedule);
        assert_eq!(report.stats, stats);
        // Ratio against the true prefix optimum.
        let opt = rsdc_offline::dp::solve_cost_only(&inst);
        let got = report.opt_cost.unwrap();
        assert!((got - opt).abs() < 1e-9 * (1.0 + opt), "{got} vs {opt}");
        assert!(report.ratio.unwrap() <= 3.0 + 1e-9);
    }

    #[test]
    fn lookahead_accounting_pairs_lagged_states_with_their_costs() {
        let fs = costs(20);
        let inst = Instance::new(6, 2.0, fs.clone()).unwrap();
        let mut tenant = Tenant::new(TenantConfig::new(
            "t",
            6,
            2.0,
            PolicySpec::Lookahead { window: 3 },
        ))
        .unwrap();
        let mut xs = Vec::new();
        for f in &fs {
            xs.extend(tenant.step(f, None).unwrap().states());
        }
        assert_eq!(tenant.report().committed, 17);
        xs.extend(tenant.finish().states());
        let schedule = Schedule(xs);
        let report = tenant.report();
        assert_eq!(report.committed, 20);
        let breakdown = analysis::breakdown(&inst, &schedule);
        assert_eq!(report.breakdown.operating, breakdown.operating);
        assert_eq!(report.breakdown.switching, breakdown.switching);
    }

    #[test]
    fn snapshot_round_trip_preserves_everything() {
        let fs = costs(30);
        let mut a = Tenant::new(
            TenantConfig::new("t", 5, 1.5, PolicySpec::FlcpRounded { k: 2, seed: 3 })
                .with_opt_tracking(),
        )
        .unwrap();
        let mut xs_a = Vec::new();
        for f in &fs[..13] {
            xs_a.extend(a.step(f, None).unwrap().states());
        }
        let snap = a.snapshot();
        // Round-trip the snapshot through JSON text.
        let text = serde_json::to_string_pretty(&snap.to_value()).unwrap();
        let value: serde::Value = serde_json::from_str(&text).unwrap();
        let snap2 = TenantSnapshot::from_value(&value).unwrap();
        let mut b = Tenant::from_snapshot(snap2).unwrap();
        let mut xs_b = Vec::new();
        for f in &fs[13..] {
            xs_a.extend(a.step(f, None).unwrap().states());
            xs_b.extend(b.step(f, None).unwrap().states());
        }
        assert_eq!(
            &xs_a[13..],
            &xs_b[..],
            "restored tenant must continue the identical stream"
        );
        let ra = a.report();
        let rb = b.report();
        assert_eq!(ra.breakdown.operating, rb.breakdown.operating);
        assert_eq!(ra.breakdown.switching, rb.breakdown.switching);
        assert_eq!(ra.stats, rb.stats);
        assert_eq!(ra.opt_cost, rb.opt_cost);
    }

    #[test]
    fn policy_short_syntax() {
        assert_eq!(PolicySpec::parse_short("lcp").unwrap(), PolicySpec::Lcp);
        assert_eq!(
            PolicySpec::parse_short("flcp:8,42").unwrap(),
            PolicySpec::FlcpRounded { k: 8, seed: 42 }
        );
        assert_eq!(
            PolicySpec::parse_short("lookahead:5").unwrap(),
            PolicySpec::Lookahead { window: 5 }
        );
        assert!(PolicySpec::parse_short("nope").is_err());
    }
}
