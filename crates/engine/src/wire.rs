//! JSON-lines wire format: the engine's ingestion/response protocol.
//!
//! One JSON object per line. Request records (`op` field selects):
//!
//! ```text
//! {"op":"admit","id":"t1","m":8,"beta":6.0,"policy":"Lcp","track_opt":true}
//! {"op":"admit","id":"t2","m":8,"beta":6.0,"policy":{"FlcpRounded":{"k":4,"seed":7}}}
//! {"op":"step","id":"t1","load":3.2}
//! {"op":"step","id":"t1","cost":{"Abs":{"slope":1.0,"center":3.0}}}
//! {"op":"finish","id":"t1"}
//! {"op":"snapshot","id":"t1"}
//! {"op":"restore","snapshot":{...}}
//! {"op":"report"}            // all tenants
//! {"op":"report","id":"t1"}
//! {"op":"stats"}
//! ```
//!
//! `step` events carry either an explicit serialized [`Cost`] or a raw
//! `load`, which the engine prices through the tenant's
//! [`rsdc_workloads::builder::CostModel`] (the admit record may override
//! the default model with a `"cost_model"` object). Response records mirror
//! the request: `admitted`, `stepped` (with committed `states`),
//! `finished`, `snapshot`, `restored`, `report`, `stats`, or
//! `{"op":"error","message":...}`.

use crate::shard::StepOutcome;
use crate::tenant::{PolicySpec, TenantConfig, TenantSnapshot};
use rsdc_core::Cost;
use rsdc_workloads::builder::CostModel;
use rsdc_workloads::traces::Trace;
use serde::{Deserialize, Serialize};

/// A parsed request record.
#[derive(Debug, Clone)]
pub enum Record {
    /// Admit a tenant; optional cost model for pricing `load` events.
    Admit {
        /// Tenant configuration.
        config: TenantConfig,
        /// Cost model for `load`-carrying step events.
        cost_model: CostModel,
    },
    /// One streamed slot for one tenant.
    Step {
        /// Tenant id.
        id: String,
        /// Explicit cost function, if given.
        cost: Option<Cost>,
        /// Raw offered load, if given (priced via the admit cost model).
        load: Option<f64>,
    },
    /// Flush lookahead states for a tenant.
    Finish {
        /// Tenant id.
        id: String,
    },
    /// Capture a tenant snapshot.
    Snapshot {
        /// Tenant id.
        id: String,
    },
    /// Re-install a tenant from a snapshot, with the cost model used to
    /// price its `load` events (defaults to the admit-time default).
    Restore {
        /// The tenant snapshot.
        snapshot: Box<TenantSnapshot>,
        /// Cost model for `load`-carrying step events, if carried.
        cost_model: Option<CostModel>,
    },
    /// Report one tenant (`Some`) or all (`None`).
    Report(Option<String>),
    /// Per-shard statistics.
    Stats,
}

/// A wire-format error with the offending context.
#[derive(Debug, Clone)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn field<'v>(v: &'v serde::Value, key: &str) -> Result<&'v serde::Value, WireError> {
    v.get(key)
        .filter(|x| !x.is_null())
        .ok_or_else(|| WireError(format!("missing field {key:?}")))
}

fn string_field(v: &serde::Value, key: &str) -> Result<String, WireError> {
    field(v, key)?
        .as_str()
        .map(|s| s.to_string())
        .ok_or_else(|| WireError(format!("field {key:?} must be a string")))
}

/// Parse one JSONL request line.
pub fn parse_record(line: &str) -> Result<Record, WireError> {
    let v: serde::Value =
        serde_json::from_str(line).map_err(|e| WireError(format!("bad JSON: {e}")))?;
    let op = string_field(&v, "op")?;
    match op.as_str() {
        "admit" => {
            let id = string_field(&v, "id")?;
            let m = field(&v, "m")?
                .as_u64()
                .and_then(|m| u32::try_from(m).ok())
                .ok_or_else(|| WireError("field \"m\" must be a u32".into()))?;
            let beta = field(&v, "beta")?
                .as_f64()
                .ok_or_else(|| WireError("field \"beta\" must be a number".into()))?;
            let policy_value = field(&v, "policy")?;
            let policy = match policy_value.as_str() {
                // Accept both the CLI short syntax ("lcp", "flcp:4,7") and
                // the canonical serde encoding ("Lcp", {"FlcpRounded":...}).
                Some(s) => PolicySpec::parse_short(&s.to_lowercase())
                    .or_else(|short_err| {
                        // Fall back to the canonical serde encoding, but
                        // keep the short-syntax message (it lists the
                        // valid policies) when both fail.
                        PolicySpec::from_value(policy_value).map_err(|_| short_err)
                    })
                    .map_err(|e| WireError(format!("bad policy: {e}")))?,
                None => PolicySpec::from_value(policy_value)
                    .map_err(|e| WireError(format!("bad policy: {e}")))?,
            };
            let track_opt = v
                .get("track_opt")
                .and_then(|x| x.as_bool())
                .unwrap_or(false);
            let cost_model = match v.get("cost_model") {
                Some(cm) if !cm.is_null() => CostModel::from_value(cm)
                    .map_err(|e| WireError(format!("bad cost_model: {e}")))?,
                _ => CostModel {
                    beta,
                    ..CostModel::default()
                },
            };
            let mut config = TenantConfig::new(id, m, beta, policy);
            config.track_opt = track_opt;
            Ok(Record::Admit { config, cost_model })
        }
        "step" => {
            let id = string_field(&v, "id")?;
            let cost = match v.get("cost") {
                Some(c) if !c.is_null() => {
                    Some(Cost::from_value(c).map_err(|e| WireError(format!("bad cost: {e}")))?)
                }
                _ => None,
            };
            let load = v.get("load").and_then(|x| x.as_f64());
            if let Some(l) = load {
                if !(l.is_finite() && l >= 0.0) {
                    return Err(WireError(format!(
                        "field \"load\" must be finite and >= 0, got {l}"
                    )));
                }
            }
            if cost.is_none() && load.is_none() {
                return Err(WireError("step needs \"cost\" or \"load\"".into()));
            }
            Ok(Record::Step { id, cost, load })
        }
        "finish" => Ok(Record::Finish {
            id: string_field(&v, "id")?,
        }),
        "snapshot" => Ok(Record::Snapshot {
            id: string_field(&v, "id")?,
        }),
        "restore" => {
            let snapshot = TenantSnapshot::from_value(field(&v, "snapshot")?)
                .map_err(|e| WireError(format!("bad snapshot: {e}")))?;
            let cost_model = match v.get("cost_model") {
                Some(cm) if !cm.is_null() => Some(
                    CostModel::from_value(cm)
                        .map_err(|e| WireError(format!("bad cost_model: {e}")))?,
                ),
                _ => None,
            };
            Ok(Record::Restore {
                snapshot: Box::new(snapshot),
                cost_model,
            })
        }
        "report" => Ok(Record::Report(
            v.get("id").and_then(|x| x.as_str()).map(|s| s.to_string()),
        )),
        "stats" => Ok(Record::Stats),
        other => Err(WireError(format!("unknown op {other:?}"))),
    }
}

/// Render an admit record for a tenant.
pub fn admit_line(config: &TenantConfig) -> String {
    let v = serde_json::json!({
        "op": "admit",
        "id": config.id,
        "m": config.m,
        "beta": config.beta,
        "policy": config.policy.to_value(),
        "track_opt": config.track_opt,
    });
    serde_json::to_string(&v).expect("serializable")
}

/// Render a load-carrying step record.
pub fn step_load_line(id: &str, load: f64) -> String {
    let v = serde_json::json!({"op": "step", "id": id, "load": load});
    serde_json::to_string(&v).expect("serializable")
}

/// Render an explicit-cost step record.
pub fn step_cost_line(id: &str, cost: &Cost) -> String {
    let v = serde_json::json!({"op": "step", "id": id, "cost": cost.to_value()});
    serde_json::to_string(&v).expect("serializable")
}

/// Render the `stepped` response for a batch of outcomes.
pub fn stepped_line(outcome: &StepOutcome) -> String {
    let v = match &outcome.error {
        None => serde_json::json!({
            "op": "stepped",
            "id": outcome.id,
            "states": outcome.states,
        }),
        Some(message) => serde_json::json!({
            "op": "error",
            "id": outcome.id,
            "message": message,
        }),
    };
    serde_json::to_string(&v).expect("serializable")
}

/// Convert a workload trace into step records for one tenant — the bridge
/// from `rsdc-workloads` traces to the streaming wire format.
pub fn trace_records(id: &str, trace: &Trace) -> Vec<String> {
    trace
        .loads
        .iter()
        .map(|&load| step_load_line(id, load))
        .collect()
}

/// A stateful JSONL server: an [`Engine`](crate::Engine) plus the per-tenant
/// cost models used to price `load` events. Consecutive `step` records are
/// ingested as one batched [`Engine::step_batch_loads`](crate::Engine) call.
pub struct Session {
    engine: crate::Engine,
    models: std::collections::HashMap<String, CostModel>,
}

impl Session {
    /// Serve over the given engine.
    pub fn new(engine: crate::Engine) -> Self {
        Session {
            engine,
            models: std::collections::HashMap::new(),
        }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &crate::Engine {
        &self.engine
    }

    fn cost_of(&self, id: &str, cost: Option<Cost>, load: Option<f64>) -> (Cost, Option<f64>) {
        match cost {
            Some(c) => (c, load),
            None => {
                let load = load.expect("parse_record guarantees cost or load");
                let model = self.models.get(id).cloned().unwrap_or_default();
                (
                    Cost::Server {
                        lambda: load,
                        params: model.server,
                        overload: model.overload,
                    },
                    Some(load),
                )
            }
        }
    }

    fn flush_steps(
        &mut self,
        pending: &mut Vec<(String, Cost, Option<f64>)>,
        out: &mut Vec<String>,
    ) {
        if pending.is_empty() {
            return;
        }
        match self.engine.step_batch_loads(std::mem::take(pending)) {
            Ok(outcomes) => out.extend(outcomes.iter().map(stepped_line)),
            Err(e) => out.push(error_line(&e.to_string())),
        }
    }

    fn handle_control(&mut self, record: Record, out: &mut Vec<String>) {
        match record {
            Record::Step { .. } => unreachable!("steps are batched by the caller"),
            Record::Admit { config, cost_model } => {
                let id = config.id.clone();
                match self.engine.admit(config) {
                    Ok(()) => {
                        self.models.insert(id.clone(), cost_model);
                        out.push(
                            serde_json::to_string(&serde_json::json!({
                                "op": "admitted", "id": id,
                            }))
                            .expect("serializable"),
                        );
                    }
                    Err(e) => out.push(error_line(&e.to_string())),
                }
            }
            Record::Finish { id } => match self.engine.finish(&id) {
                Ok(states) => out.push(
                    serde_json::to_string(&serde_json::json!({
                        "op": "finished", "id": id, "states": states,
                    }))
                    .expect("serializable"),
                ),
                Err(e) => out.push(error_line(&e.to_string())),
            },
            Record::Snapshot { id } => match self.engine.snapshot(&id) {
                // The response carries the tenant's cost model alongside the
                // snapshot so a `restore` built from this line re-prices
                // `load` events identically after a restart.
                Ok(snapshot) => {
                    let model = self.models.get(&id).cloned().unwrap_or_default();
                    out.push(
                        serde_json::to_string(&serde_json::json!({
                            "op": "snapshot",
                            "id": id,
                            "snapshot": snapshot.to_value(),
                            "cost_model": model.to_value(),
                        }))
                        .expect("serializable"),
                    );
                }
                Err(e) => out.push(error_line(&e.to_string())),
            },
            Record::Restore {
                snapshot,
                cost_model,
            } => {
                let id = snapshot.config.id.clone();
                let model = cost_model.unwrap_or(CostModel {
                    beta: snapshot.config.beta,
                    ..CostModel::default()
                });
                match self.engine.restore(*snapshot) {
                    Ok(()) => {
                        self.models.insert(id.clone(), model);
                        out.push(
                            serde_json::to_string(&serde_json::json!({
                                "op": "restored", "id": id,
                            }))
                            .expect("serializable"),
                        );
                    }
                    Err(e) => out.push(error_line(&e.to_string())),
                }
            }
            Record::Report(id) => {
                let reports = match id {
                    Some(id) => self.engine.report(&id).map(|r| vec![r]),
                    None => self.engine.report_all(),
                };
                match reports {
                    Ok(reports) => {
                        for r in reports {
                            out.push(
                                serde_json::to_string(&serde_json::json!({
                                    "op": "report", "report": r.to_value(),
                                }))
                                .expect("serializable"),
                            );
                        }
                    }
                    Err(e) => out.push(error_line(&e.to_string())),
                }
            }
            Record::Stats => match self.engine.shard_stats() {
                Ok(stats) => out.push(
                    serde_json::to_string(&serde_json::json!({
                        "op": "stats", "shards": stats.to_value(),
                    }))
                    .expect("serializable"),
                ),
                Err(e) => out.push(error_line(&e.to_string())),
            },
        }
    }

    /// Process a block of JSONL request lines (blank lines and `#` comments
    /// skipped), returning the response lines. Runs of consecutive `step`
    /// records become single batched engine calls.
    pub fn handle_lines<'a>(&mut self, lines: impl IntoIterator<Item = &'a str>) -> Vec<String> {
        let mut out = Vec::new();
        let mut pending: Vec<(String, Cost, Option<f64>)> = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match parse_record(line) {
                Err(e) => {
                    self.flush_steps(&mut pending, &mut out);
                    out.push(error_line(&e.to_string()));
                }
                Ok(Record::Step { id, cost, load }) => {
                    let (cost, load) = self.cost_of(&id, cost, load);
                    pending.push((id, cost, load));
                }
                Ok(control) => {
                    self.flush_steps(&mut pending, &mut out);
                    self.handle_control(control, &mut out);
                }
            }
        }
        self.flush_steps(&mut pending, &mut out);
        out
    }
}

fn error_line(message: &str) -> String {
    serde_json::to_string(&serde_json::json!({"op": "error", "message": message}))
        .expect("serializable")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_round_trip() {
        let cfg = TenantConfig::new("a", 8, 2.5, PolicySpec::FlcpRounded { k: 4, seed: 9 })
            .with_opt_tracking();
        let line = admit_line(&cfg);
        match parse_record(&line).unwrap() {
            Record::Admit { config, cost_model } => {
                assert_eq!(config, cfg);
                assert_eq!(cost_model.beta, 2.5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn short_policy_syntax_accepted() {
        let r = parse_record(
            "{\"op\":\"admit\",\"id\":\"x\",\"m\":4,\"beta\":1.0,\"policy\":\"flcp:2,7\"}",
        )
        .unwrap();
        match r {
            Record::Admit { config, .. } => {
                assert_eq!(config.policy, PolicySpec::FlcpRounded { k: 2, seed: 7 });
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn step_records() {
        let line = step_load_line("t", 2.25);
        match parse_record(&line).unwrap() {
            Record::Step { id, cost, load } => {
                assert_eq!(id, "t");
                assert!(cost.is_none());
                assert_eq!(load, Some(2.25));
            }
            other => panic!("unexpected {other:?}"),
        }
        let line = step_cost_line("t", &Cost::abs(1.5, 3.0));
        match parse_record(&line).unwrap() {
            Record::Step { cost, .. } => {
                assert_eq!(cost.unwrap(), Cost::abs(1.5, 3.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_records_are_rejected() {
        assert!(parse_record("not json").is_err());
        assert!(parse_record("{\"op\":\"warp\"}").is_err());
        assert!(parse_record("{\"op\":\"step\",\"id\":\"t\"}").is_err());
        assert!(parse_record(
            "{\"op\":\"admit\",\"id\":\"t\",\"m\":4,\"beta\":1.0,\"policy\":\"zzz\"}"
        )
        .is_err());
    }

    #[test]
    fn trace_ingestion() {
        let tr = Trace::new("t", vec![1.0, 2.5]);
        let lines = trace_records("a", &tr);
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(matches!(parse_record(line).unwrap(), Record::Step { .. }));
        }
    }

    #[test]
    fn restore_preserves_custom_cost_model_for_load_events() {
        // Admit with a non-default cost model, stream, snapshot; then build
        // a restore record from the snapshot *response* and continue in a
        // fresh session — load pricing must match the uninterrupted run.
        let admit = "{\"op\":\"admit\",\"id\":\"a\",\"m\":8,\"beta\":2.0,\"policy\":\"lcp\",\
                     \"cost_model\":{\"server\":{\"e_idle\":0.5,\"e_peak\":9.0,\
                     \"delay_weight\":4.0,\"delay_eps\":0.01},\"overload\":99.0,\"beta\":2.0}}";
        let loads = [2.0, 5.5, 3.0, 1.0];
        let steps: Vec<String> = loads.iter().map(|&l| step_load_line("a", l)).collect();

        // Uninterrupted reference.
        let mut full = Session::new(crate::Engine::new(crate::EngineConfig::with_shards(1)));
        let mut lines = vec![admit.to_string()];
        lines.extend(steps.iter().cloned());
        lines.push("{\"op\":\"report\",\"id\":\"a\"}".to_string());
        let full_out = full.handle_lines(lines.iter().map(|s| s.as_str()));
        let want: serde::Value = serde_json::from_str(full_out.last().unwrap()).unwrap();

        // Interrupted after two steps.
        let mut first = Session::new(crate::Engine::new(crate::EngineConfig::with_shards(1)));
        let mut lines = vec![admit.to_string()];
        lines.extend(steps[..2].iter().cloned());
        lines.push("{\"op\":\"snapshot\",\"id\":\"a\"}".to_string());
        let out = first.handle_lines(lines.iter().map(|s| s.as_str()));
        let snap_line: serde::Value = serde_json::from_str(out.last().unwrap()).unwrap();
        let restore = serde_json::to_string(&serde_json::json!({
            "op": "restore",
            "snapshot": snap_line["snapshot"].clone(),
            "cost_model": snap_line["cost_model"].clone(),
        }))
        .unwrap();

        let mut second = Session::new(crate::Engine::new(crate::EngineConfig::with_shards(2)));
        let mut lines = vec![restore];
        lines.extend(steps[2..].iter().cloned());
        lines.push("{\"op\":\"report\",\"id\":\"a\"}".to_string());
        let out = second.handle_lines(lines.iter().map(|s| s.as_str()));
        let got: serde::Value = serde_json::from_str(out.last().unwrap()).unwrap();

        assert_eq!(
            got["report"]["breakdown"], want["report"]["breakdown"],
            "restored session must price load events with the admit-time cost model"
        );
    }

    #[test]
    fn session_serves_full_lifecycle() {
        let engine = crate::Engine::new(crate::EngineConfig::with_shards(2));
        let mut session = Session::new(engine);
        let mut lines = vec![
            "# demo".to_string(),
            "{\"op\":\"admit\",\"id\":\"a\",\"m\":8,\"beta\":6.0,\"policy\":\"lcp\",\"track_opt\":true}"
                .to_string(),
        ];
        lines.extend(trace_records(
            "a",
            &Trace::new("t", vec![2.0, 5.0, 3.0, 1.0]),
        ));
        lines.push("{\"op\":\"finish\",\"id\":\"a\"}".to_string());
        lines.push("{\"op\":\"report\",\"id\":\"a\"}".to_string());
        lines.push("{\"op\":\"snapshot\",\"id\":\"a\"}".to_string());
        lines.push("{\"op\":\"stats\"}".to_string());
        let out = session.handle_lines(lines.iter().map(|s| s.as_str()));
        let kinds: Vec<String> = out
            .iter()
            .map(|l| {
                let v: serde::Value = serde_json::from_str(l).unwrap();
                v["op"].as_str().unwrap().to_string()
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "admitted", "stepped", "stepped", "stepped", "stepped", "finished", "report",
                "snapshot", "stats"
            ]
        );
        // The report is well-formed and the ratio was tracked.
        let report: serde::Value = serde_json::from_str(&out[6]).unwrap();
        assert_eq!(report["report"]["committed"], 4);
        assert!(report["report"]["ratio"].as_f64().unwrap() >= 1.0 - 1e-9);
        // The emitted snapshot restores into a fresh session.
        let snap_line: serde::Value = serde_json::from_str(&out[7]).unwrap();
        let restore = serde_json::to_string(&serde_json::json!({
            "op": "restore", "snapshot": snap_line["snapshot"].clone(),
        }))
        .unwrap();
        let mut session2 = Session::new(crate::Engine::new(crate::EngineConfig::with_shards(1)));
        let out2 = session2.handle_lines([restore.as_str()]);
        assert!(out2[0].contains("restored"), "{}", out2[0]);
        assert_eq!(session2.engine().report("a").unwrap().committed, 4);
    }
}
