//! JSON-lines wire format: the engine's ingestion/response protocol.
//!
//! One JSON object per line. Request records (`op` field selects):
//!
//! ```text
//! {"op":"admit","id":"t1","m":8,"beta":6.0,"policy":"Lcp","track_opt":true}
//! {"op":"admit","id":"t2","m":8,"beta":6.0,"policy":{"FlcpRounded":{"k":4,"seed":7}}}
//! {"op":"admit","id":"h1","policy":"hetero:frontier","fleet":{"types":[
//!     {"count":3,"beta":1.0,"energy":1.0,"capacity":1.0},
//!     {"count":2,"beta":2.5,"energy":1.4,"capacity":2.0}]}}
//! {"op":"step","id":"t1","load":3.2}
//! {"op":"step","id":"t1","cost":{"Abs":{"slope":1.0,"center":3.0}}}
//! {"op":"finish","id":"t1"}
//! {"op":"snapshot","id":"t1"}
//! {"op":"restore","snapshot":{...}}
//! {"op":"report"}            // all tenants
//! {"op":"report","id":"t1"}
//! {"op":"stats"}
//! {"op":"checkpoint"}        // durable full-state checkpoint + WAL truncation
//! {"op":"recover"}           // rebuild the engine from the durable store
//! {"op":"wal_stats"}         // store + tenant-distribution statistics
//! {"op":"rebalance","shards":4,"vnodes":64}   // live ring re-partition
//! {"op":"rebalance","shards":4,"mode":"incremental"}  // move only the ring diff
//! {"op":"autoscale","min":1,"max":8,"switch_cost":32.0}  // lazy auto-rebalancing
//! {"op":"autoscale","min":1,"max":8,"switch_cost":32.0,"priced":true}  // price-aware
//! {"op":"energy","model":"linear:100:250","capacity":4.0,"price":"step:24:1,3.5"}
//! {"op":"limits","max_tenants":100,"rate":2.0,"burst":8.0}
//! {"op":"metrics"}           // metrics-registry dump
//! {"op":"trace","last":16}   // control-plane trace ring (newest N)
//! ```
//!
//! `step` events carry either an explicit serialized [`Cost`] or a raw
//! `load`, which the engine prices through the tenant's
//! [`rsdc_workloads::builder::CostModel`] (the admit record may override
//! the default model with a `"cost_model"` object). Heterogeneous tenants
//! (`"policy":"hetero[:frontier|:greedy]"` plus a `"fleet"` object — `m`
//! and `beta` are then optional/derived) accept **only** load-carrying
//! steps: the load is priced through the fleet's aggregate cost, and their
//! `stepped` responses carry the committed `configs` alongside the scalar
//! total-machine `states`. Response records mirror the request:
//! `admitted`, `stepped` (with committed `states`), `finished`,
//! `snapshot`, `restored`, `report` (incl. attributed `energy` when
//! accounting is on), `stats` (incl. per-shard skew, the
//! autoscale-policy state and the energy meter), `checkpointed`,
//! `recovered`, `wal_stats`,
//! `rebalanced` (with its `mode`; emitted unsolicited with `"auto":true`
//! when the autoscale policy triggers a migration), `autoscale`,
//! `energy`, `limits`, `metrics`, `trace`, or
//! `{"op":"error","line":N,"message":...}` — error
//! responses carry the 1-based input line number of the offending record,
//! so a failing line inside a large JSONL batch is locatable.
//!
//! The full protocol, with request/response examples for every op, is
//! documented in `docs/WIRE.md`.

use crate::shard::StepOutcome;
use crate::tenant::{PolicySpec, TenantConfig, TenantSnapshot};
use rsdc_core::Cost;
use rsdc_hetero::{FleetSpec, HeteroAlgo, ServerType};
use rsdc_power::{EnergyStatus, PowerConfig, PowerSpec, PriceSchedule};
use rsdc_workloads::builder::CostModel;
use rsdc_workloads::traces::Trace;
use serde::{Deserialize, Serialize};

/// A parsed request record.
#[derive(Debug, Clone)]
pub enum Record {
    /// Admit a tenant; optional cost model for pricing `load` events.
    Admit {
        /// Tenant configuration.
        config: TenantConfig,
        /// Cost model for `load`-carrying step events.
        cost_model: CostModel,
    },
    /// One streamed slot for one tenant.
    Step {
        /// Tenant id.
        id: String,
        /// Explicit cost function, if given.
        cost: Option<Cost>,
        /// Raw offered load, if given (priced via the admit cost model).
        load: Option<f64>,
    },
    /// Flush lookahead states for a tenant.
    Finish {
        /// Tenant id.
        id: String,
    },
    /// Capture a tenant snapshot.
    Snapshot {
        /// Tenant id.
        id: String,
    },
    /// Re-install a tenant from a snapshot, with the cost model used to
    /// price its `load` events (defaults to the admit-time default).
    Restore {
        /// The tenant snapshot.
        snapshot: Box<TenantSnapshot>,
        /// Cost model for `load`-carrying step events, if carried.
        cost_model: Option<CostModel>,
    },
    /// Report one tenant (`Some`) or all (`None`).
    Report(Option<String>),
    /// Per-shard statistics.
    Stats,
    /// Durable full-state checkpoint (truncates the WAL).
    Checkpoint,
    /// Rebuild the engine from its durable store.
    Recover,
    /// Durability-layer statistics.
    WalStats,
    /// Re-partition the engine onto a new ring topology, live.
    Rebalance {
        /// Target shard count.
        shards: usize,
        /// Target virtual nodes per shard (`None` keeps the current ring
        /// density).
        vnodes: Option<usize>,
        /// `"mode":"incremental"` moves only the ring-diff tenant set
        /// ([`Engine::rebalance_incremental`](crate::Engine::rebalance_incremental));
        /// the default (`"full"`) drains and re-installs the whole fleet.
        incremental: bool,
    },
    /// Configure (`min`/`max` present), disable (`"off":true`) or read
    /// back (bare) the lazy auto-rebalancing policy.
    Autoscale {
        /// Disable the policy.
        off: bool,
        /// Smallest shard count the policy may target.
        min: Option<usize>,
        /// Largest shard count the policy may target.
        max: Option<usize>,
        /// Switching cost per shard powered up (the induced `beta`).
        switch_cost: Option<f64>,
        /// Per-shard per-tick overhead cost.
        shard_cost: Option<f64>,
        /// Ticks between applied changes / admission-window length.
        cooldown: Option<u64>,
        /// Price the induced instance through the engine's energy
        /// accounting (requires the `energy` op to be configured first).
        priced: bool,
    },
    /// Configure (`model` present), disable (`"off":true`) or read back
    /// (bare) the engine's energy accounting.
    Energy {
        /// Disable energy accounting.
        off: bool,
        /// Power-model short spec: `constant:W`, `linear:IDLE:PEAK` or
        /// `piecewise:W0,W1,...`.
        model: Option<String>,
        /// Events one machine serves per tick at full utilization.
        capacity: Option<f64>,
        /// Price-schedule short spec: a bare number, `constant:P`,
        /// `step:PERIOD:P1,P2,...` or `trace:P1,P2,...`.
        price: Option<String>,
    },
    /// Dump the metrics registry: counters, gauges, histogram summaries.
    Metrics,
    /// Dump the control-plane trace ring, oldest retained event first.
    Trace {
        /// Emit only the newest N retained events, when given.
        last: Option<usize>,
    },
    /// Set (fields present) and/or read back the admission limits.
    Limits {
        /// New tenant cap, when given (0 = unlimited).
        max_tenants: Option<usize>,
        /// New token-bucket refill rate, when given (0 = unlimited).
        rate: Option<f64>,
        /// New token-bucket capacity, when given.
        burst: Option<f64>,
    },
}

/// A wire-format error with the offending context.
#[derive(Debug, Clone)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn field<'v>(v: &'v serde::Value, key: &str) -> Result<&'v serde::Value, WireError> {
    v.get(key)
        .filter(|x| !x.is_null())
        .ok_or_else(|| WireError(format!("missing field {key:?}")))
}

fn string_field(v: &serde::Value, key: &str) -> Result<String, WireError> {
    field(v, key)?
        .as_str()
        .map(|s| s.to_string())
        .ok_or_else(|| WireError(format!("field {key:?} must be a string")))
}

/// Parse a wire `fleet` object: a required `types` array of serialized
/// [`ServerType`]s plus optional `delay_weight` / `delay_eps` / `overload`
/// aggregate-cost parameters (defaulted as in [`FleetSpec::new`]).
fn fleet_from_value(v: &serde::Value) -> Result<FleetSpec, WireError> {
    let types = Vec::<ServerType>::from_value(field(v, "types")?)
        .map_err(|e| WireError(format!("bad fleet types: {e}")))?;
    let mut fleet = FleetSpec::new(types);
    let num = |key: &str, default: f64| -> Result<f64, WireError> {
        match v.get(key) {
            Some(x) if !x.is_null() => x
                .as_f64()
                .ok_or_else(|| WireError(format!("fleet field {key:?} must be a number"))),
            _ => Ok(default),
        }
    };
    fleet.delay_weight = num("delay_weight", fleet.delay_weight)?;
    fleet.delay_eps = num("delay_eps", fleet.delay_eps)?;
    fleet.overload = num("overload", fleet.overload)?;
    Ok(fleet)
}

/// Parse one JSONL request line.
pub fn parse_record(line: &str) -> Result<Record, WireError> {
    let v: serde::Value =
        serde_json::from_str(line).map_err(|e| WireError(format!("bad JSON: {e}")))?;
    let op = string_field(&v, "op")?;
    match op.as_str() {
        "admit" => {
            let id = string_field(&v, "id")?;
            let policy_value = field(&v, "policy")?;
            // Hetero short syntax first: "hetero[:frontier|:greedy]" plus a
            // "fleet" object on the record itself.
            let hetero = policy_value
                .as_str()
                .and_then(HeteroAlgo::parse_policy_prefix);
            let policy = match (hetero, policy_value.as_str()) {
                (Some(algo), _) => {
                    let algo = algo.map_err(|e| WireError(format!("bad policy: {e}")))?;
                    let fleet = fleet_from_value(field(&v, "fleet")?)?;
                    PolicySpec::Hetero { fleet, algo }
                }
                // Accept both the CLI short syntax ("lcp", "flcp:4,7") and
                // the canonical serde encoding ("Lcp", {"FlcpRounded":...}).
                (None, Some(s)) => PolicySpec::parse_short(&s.to_lowercase())
                    .or_else(|short_err| {
                        // Fall back to the canonical serde encoding, but
                        // keep the short-syntax message (it lists the
                        // valid policies) when both fail.
                        PolicySpec::from_value(policy_value).map_err(|_| short_err)
                    })
                    .map_err(|e| WireError(format!("bad policy: {e}")))?,
                (None, None) => PolicySpec::from_value(policy_value)
                    .map_err(|e| WireError(format!("bad policy: {e}")))?,
            };
            // Hetero tenants derive m (total machines) and beta (unused by
            // the vector accounting) from the fleet; scalar tenants must
            // state both.
            let (m, beta) = if let PolicySpec::Hetero { fleet, .. } = &policy {
                let m = match v.get("m") {
                    Some(x) if !x.is_null() => x
                        .as_u64()
                        .and_then(|m| u32::try_from(m).ok())
                        .ok_or_else(|| WireError("field \"m\" must be a u32".into()))?,
                    _ => fleet.total_machines(),
                };
                let beta = match v.get("beta") {
                    Some(x) if !x.is_null() => x
                        .as_f64()
                        .ok_or_else(|| WireError("field \"beta\" must be a number".into()))?,
                    _ => 0.0,
                };
                (m, beta)
            } else {
                let m = field(&v, "m")?
                    .as_u64()
                    .and_then(|m| u32::try_from(m).ok())
                    .ok_or_else(|| WireError("field \"m\" must be a u32".into()))?;
                let beta = field(&v, "beta")?
                    .as_f64()
                    .ok_or_else(|| WireError("field \"beta\" must be a number".into()))?;
                (m, beta)
            };
            let track_opt = v
                .get("track_opt")
                .and_then(|x| x.as_bool())
                .unwrap_or(false);
            let explicit_model = match v.get("cost_model") {
                Some(cm) if !cm.is_null() => Some(
                    CostModel::from_value(cm)
                        .map_err(|e| WireError(format!("bad cost_model: {e}")))?,
                ),
                _ => None,
            };
            let mut config = TenantConfig::new(id, m, beta, policy);
            config.track_opt = track_opt;
            // An explicit model rides in the config so it lands in
            // snapshots and journaled admits — load pricing then survives
            // crash recovery.
            config.cost_model = explicit_model;
            let cost_model = config.load_cost_model();
            Ok(Record::Admit { config, cost_model })
        }
        "step" => {
            let id = string_field(&v, "id")?;
            let cost = match v.get("cost") {
                Some(c) if !c.is_null() => {
                    Some(Cost::from_value(c).map_err(|e| WireError(format!("bad cost: {e}")))?)
                }
                _ => None,
            };
            let load = v.get("load").and_then(|x| x.as_f64());
            if let Some(l) = load {
                if !(l.is_finite() && l >= 0.0) {
                    return Err(WireError(format!(
                        "field \"load\" must be finite and >= 0, got {l}"
                    )));
                }
            }
            if cost.is_none() && load.is_none() {
                return Err(WireError("step needs \"cost\" or \"load\"".into()));
            }
            Ok(Record::Step { id, cost, load })
        }
        "finish" => Ok(Record::Finish {
            id: string_field(&v, "id")?,
        }),
        "snapshot" => Ok(Record::Snapshot {
            id: string_field(&v, "id")?,
        }),
        "restore" => {
            let snapshot = TenantSnapshot::from_value(field(&v, "snapshot")?)
                .map_err(|e| WireError(format!("bad snapshot: {e}")))?;
            let cost_model = match v.get("cost_model") {
                Some(cm) if !cm.is_null() => Some(
                    CostModel::from_value(cm)
                        .map_err(|e| WireError(format!("bad cost_model: {e}")))?,
                ),
                _ => None,
            };
            Ok(Record::Restore {
                snapshot: Box::new(snapshot),
                cost_model,
            })
        }
        "report" => Ok(Record::Report(
            v.get("id").and_then(|x| x.as_str()).map(|s| s.to_string()),
        )),
        "stats" => Ok(Record::Stats),
        "checkpoint" => Ok(Record::Checkpoint),
        "recover" => Ok(Record::Recover),
        "wal_stats" => Ok(Record::WalStats),
        "metrics" => Ok(Record::Metrics),
        "trace" => {
            let last = match v.get("last") {
                Some(x) if !x.is_null() => Some(
                    x.as_u64()
                        .and_then(|n| usize::try_from(n).ok())
                        .ok_or_else(|| {
                            WireError("field \"last\" must be a non-negative integer".into())
                        })?,
                ),
                _ => None,
            };
            Ok(Record::Trace { last })
        }
        "rebalance" => {
            let count = |key: &str| -> Result<Option<usize>, WireError> {
                match v.get(key) {
                    Some(x) if !x.is_null() => x
                        .as_u64()
                        .and_then(|n| usize::try_from(n).ok())
                        .filter(|&n| n >= 1)
                        .map(Some)
                        .ok_or_else(|| WireError(format!("field {key:?} must be an integer >= 1"))),
                    _ => Ok(None),
                }
            };
            let shards =
                count("shards")?.ok_or_else(|| WireError("rebalance needs \"shards\"".into()))?;
            let incremental = match v.get("mode") {
                Some(m) if !m.is_null() => match m.as_str() {
                    Some("incremental") => true,
                    Some("full") => false,
                    _ => {
                        return Err(WireError(
                            "field \"mode\" must be \"full\" or \"incremental\"".into(),
                        ))
                    }
                },
                _ => false,
            };
            Ok(Record::Rebalance {
                shards,
                vnodes: count("vnodes")?,
                incremental,
            })
        }
        "autoscale" => {
            let off = v.get("off").and_then(|x| x.as_bool()).unwrap_or(false);
            let count = |key: &str| -> Result<Option<usize>, WireError> {
                match v.get(key) {
                    Some(x) if !x.is_null() => x
                        .as_u64()
                        .and_then(|n| usize::try_from(n).ok())
                        .filter(|&n| n >= 1)
                        .map(Some)
                        .ok_or_else(|| WireError(format!("field {key:?} must be an integer >= 1"))),
                    _ => Ok(None),
                }
            };
            let num = |key: &str| -> Result<Option<f64>, WireError> {
                match v.get(key) {
                    Some(x) if !x.is_null() => x
                        .as_f64()
                        .filter(|n| n.is_finite() && *n > 0.0)
                        .map(Some)
                        .ok_or_else(|| WireError(format!("field {key:?} must be a number > 0"))),
                    _ => Ok(None),
                }
            };
            let cooldown = match v.get("cooldown") {
                Some(x) if !x.is_null() => Some(x.as_u64().ok_or_else(|| {
                    WireError("field \"cooldown\" must be a non-negative integer".into())
                })?),
                _ => None,
            };
            let (min, max) = (count("min")?, count("max")?);
            let (switch_cost, shard_cost) = (num("switch_cost")?, num("shard_cost")?);
            let priced = v.get("priced").and_then(|x| x.as_bool()).unwrap_or(false);
            if !off && min.is_some() != max.is_some() {
                return Err(WireError(
                    "autoscale needs both \"min\" and \"max\" (or \"off\":true, or neither to read back)"
                        .into(),
                ));
            }
            // Knobs without the min/max pair would otherwise fall through
            // to the read-back arm and be silently dropped — refuse them
            // so a retune that didn't take is never mistaken for one that
            // did (the full policy is stated on every configure).
            if !off
                && min.is_none()
                && (switch_cost.is_some() || shard_cost.is_some() || cooldown.is_some() || priced)
            {
                return Err(WireError(
                    "autoscale knobs require \"min\" and \"max\": state the full policy to (re)configure"
                        .into(),
                ));
            }
            Ok(Record::Autoscale {
                off,
                min,
                max,
                switch_cost,
                shard_cost,
                cooldown,
                priced,
            })
        }
        "energy" => {
            let off = v.get("off").and_then(|x| x.as_bool()).unwrap_or(false);
            let text = |key: &str| -> Result<Option<String>, WireError> {
                match v.get(key) {
                    Some(x) if !x.is_null() => x
                        .as_str()
                        .map(|s| s.to_string())
                        .map(Some)
                        .ok_or_else(|| WireError(format!("field {key:?} must be a string"))),
                    _ => Ok(None),
                }
            };
            let capacity = match v.get("capacity") {
                Some(x) if !x.is_null() => Some(
                    x.as_f64()
                        .filter(|n| n.is_finite() && *n > 0.0)
                        .ok_or_else(|| {
                            WireError("field \"capacity\" must be a number > 0".into())
                        })?,
                ),
                _ => None,
            };
            let (model, price) = (text("model")?, text("price")?);
            // Same contract as autoscale: knobs without the model would
            // fall through to the read-back arm and be silently dropped.
            if !off && model.is_none() && (capacity.is_some() || price.is_some()) {
                return Err(WireError(
                    "energy knobs require \"model\": state the full config to (re)configure".into(),
                ));
            }
            Ok(Record::Energy {
                off,
                model,
                capacity,
                price,
            })
        }
        "limits" => {
            let max_tenants = match v.get("max_tenants") {
                Some(x) if !x.is_null() => Some(
                    x.as_u64()
                        .and_then(|n| usize::try_from(n).ok())
                        .ok_or_else(|| {
                            WireError("field \"max_tenants\" must be a non-negative integer".into())
                        })?,
                ),
                _ => None,
            };
            let num = |key: &str| -> Result<Option<f64>, WireError> {
                match v.get(key) {
                    Some(x) if !x.is_null() => x
                        .as_f64()
                        .filter(|n| n.is_finite() && *n >= 0.0)
                        .map(Some)
                        .ok_or_else(|| WireError(format!("field {key:?} must be a number >= 0"))),
                    _ => Ok(None),
                }
            };
            Ok(Record::Limits {
                max_tenants,
                rate: num("rate")?,
                burst: num("burst")?,
            })
        }
        other => Err(WireError(format!("unknown op {other:?}"))),
    }
}

/// Render an admit record for a tenant.
pub fn admit_line(config: &TenantConfig) -> String {
    let v = serde_json::json!({
        "op": "admit",
        "id": config.id,
        "m": config.m,
        "beta": config.beta,
        "policy": config.policy.to_value(),
        "track_opt": config.track_opt,
        "cost_model": config.cost_model.to_value(),
    });
    serde_json::to_string(&v).expect("serializable")
}

/// Render a load-carrying step record.
pub fn step_load_line(id: &str, load: f64) -> String {
    let v = serde_json::json!({"op": "step", "id": id, "load": load});
    serde_json::to_string(&v).expect("serializable")
}

/// Render an explicit-cost step record.
pub fn step_cost_line(id: &str, cost: &Cost) -> String {
    let v = serde_json::json!({"op": "step", "id": id, "cost": cost.to_value()});
    serde_json::to_string(&v).expect("serializable")
}

/// Render the `stepped` response for a batch of outcomes. Heterogeneous
/// outcomes additionally carry the committed configurations.
pub fn stepped_line(outcome: &StepOutcome) -> String {
    let v = match &outcome.error {
        None => match &outcome.configs {
            Some(configs) => serde_json::json!({
                "op": "stepped",
                "id": outcome.id,
                "states": outcome.states,
                "configs": configs.to_value(),
            }),
            None => serde_json::json!({
                "op": "stepped",
                "id": outcome.id,
                "states": outcome.states,
            }),
        },
        Some(message) => serde_json::json!({
            "op": "error",
            "id": outcome.id,
            "message": message,
        }),
    };
    serde_json::to_string(&v).expect("serializable")
}

/// Convert a workload trace into step records for one tenant — the bridge
/// from `rsdc-workloads` traces to the streaming wire format.
pub fn trace_records(id: &str, trace: &Trace) -> Vec<String> {
    trace
        .loads
        .iter()
        .map(|&load| step_load_line(id, load))
        .collect()
}

/// A stateful JSONL server: an [`Engine`](crate::Engine) plus the per-tenant
/// cost models used to price `load` events. Consecutive `step` records are
/// ingested as one batched [`Engine::step_batch_loads`](crate::Engine) call.
///
/// When the engine journals through a durable store, the session also
/// serves the `checkpoint`/`recover`/`wal_stats` ops and can checkpoint
/// automatically every N applied step events
/// ([`with_auto_checkpoint`](Session::with_auto_checkpoint)).
pub struct Session {
    engine: crate::Engine,
    models: std::collections::HashMap<String, Pricing>,
    auto_checkpoint: u64,
    since_checkpoint: u64,
    /// The report of the most recent recovery this session performed
    /// (startup auto-recovery or a `recover` op); surfaced by `wal_stats`.
    last_recovery: Option<crate::RecoveryReport>,
    // Reusable batch buffers: pending steps flush through
    // [`crate::Engine::step_events`] with these vectors, which round-trip
    // every batch — steady-state ingest allocates nothing per event.
    events_buf: Vec<crate::StepEvent>,
    lines_buf: Vec<usize>,
    outcomes_buf: Vec<StepOutcome>,
}

/// One session response, framing-agnostic: the JSONL framing renders each
/// reply as a line ([`Reply::into_line`]), the binary framing packs
/// [`Reply::Stepped`]/[`Reply::Error`] into compact frames and everything
/// else into line frames. Both renderings decode to identical lines — the
/// differential suite pins this.
#[derive(Debug)]
pub enum Reply {
    /// A fully rendered JSONL response line.
    Line(String),
    /// A successful step outcome for the request at sequence `seq`.
    Stepped {
        /// 1-based request sequence (JSONL line number / binary frame
        /// number) of the step that produced this outcome.
        seq: usize,
        /// The committed outcome (`error` is always `None` here).
        outcome: StepOutcome,
    },
    /// An error attributed to the request at sequence `seq`.
    Error {
        /// 1-based request sequence of the offending record.
        seq: usize,
        /// Tenant id, when the error is per-event.
        id: Option<String>,
        /// Error message, exactly as a JSONL error line would carry it.
        message: String,
    },
}

impl Reply {
    /// Render this reply as its JSONL response line.
    pub fn into_line(self) -> String {
        match self {
            Reply::Line(line) => line,
            Reply::Stepped { outcome, .. } => stepped_line(&outcome),
            Reply::Error { seq, id, message } => error_reply_line(seq, id.as_deref(), &message),
        }
    }
}

/// How a tenant's `load` step events are priced into engine events.
enum Pricing {
    /// Scalar tenant: load becomes a [`Cost::Server`] via the cost model.
    Scalar(CostModel),
    /// Hetero tenant: the load rides through unpriced (the tenant's fleet
    /// spec prices it inside the engine); explicit costs are rejected.
    Hetero,
}

impl Pricing {
    fn for_config(config: &TenantConfig) -> Pricing {
        if config.policy.is_hetero() {
            Pricing::Hetero
        } else {
            Pricing::Scalar(config.load_cost_model())
        }
    }
}

impl Session {
    /// Serve over the given engine.
    pub fn new(engine: crate::Engine) -> Self {
        Session {
            engine,
            models: std::collections::HashMap::new(),
            auto_checkpoint: 0,
            since_checkpoint: 0,
            last_recovery: None,
            events_buf: Vec::new(),
            lines_buf: Vec::new(),
            outcomes_buf: Vec::new(),
        }
    }

    /// Open a durable session over `store`: recovers the pre-crash engine
    /// when the store holds state (returning the recovery report),
    /// otherwise starts a fresh journaling engine. `shards == 0` picks the
    /// default shard count.
    pub fn open_durable(
        shards: usize,
        store: std::sync::Arc<dyn rsdc_store::Durability>,
    ) -> Result<(Session, Option<crate::RecoveryReport>), crate::EngineError> {
        let cfg = if shards == 0 {
            crate::EngineConfig::default()
        } else {
            crate::EngineConfig::with_shards(shards)
        };
        Session::open_durable_cfg(cfg, store)
    }

    /// [`Session::open_durable`] with a full engine config (explicit ring
    /// density, for the CLI's `--vnodes`).
    pub fn open_durable_cfg(
        cfg: crate::EngineConfig,
        store: std::sync::Arc<dyn rsdc_store::Durability>,
    ) -> Result<(Session, Option<crate::RecoveryReport>), crate::EngineError> {
        if store.has_state().map_err(crate::EngineError::from_store)? {
            let (engine, report) = crate::Engine::recover(cfg, store)?;
            let mut session = Session::new(engine);
            session.last_recovery = Some(report.clone());
            session.reload_models()?;
            Ok((session, Some(report)))
        } else {
            let engine = crate::Engine::with_store(cfg, store)?;
            Ok((Session::new(engine), None))
        }
    }

    /// Checkpoint automatically after every `every` applied step events
    /// (0 disables). Auto-checkpoints emit their own `checkpointed`
    /// response lines.
    pub fn with_auto_checkpoint(mut self, every: u64) -> Self {
        self.auto_checkpoint = every;
        self
    }

    /// Rebuild the per-tenant pricing from engine state (each tenant's
    /// config carries its explicit model — or its hetero fleet — so
    /// pricing survives recovery).
    fn reload_models(&mut self) -> Result<(), crate::EngineError> {
        self.models.clear();
        for id in self.engine.tenant_ids()? {
            let snapshot = self.engine.snapshot(&id)?;
            self.models
                .insert(id, Pricing::for_config(&snapshot.config));
        }
        Ok(())
    }

    /// The underlying engine.
    pub fn engine(&self) -> &crate::Engine {
        &self.engine
    }

    fn cost_of(
        &self,
        id: &str,
        cost: Option<Cost>,
        load: Option<f64>,
    ) -> Result<(Cost, Option<f64>), String> {
        if let Some(Pricing::Hetero) = self.models.get(id) {
            if cost.is_some() {
                return Err(format!(
                    "hetero tenant {id:?} accepts only load-carrying steps"
                ));
            }
            // `parse_record` guarantees cost or load on the JSONL path,
            // but steps also arrive pre-parsed from the binary framing —
            // answer a malformed frame with a typed error, never a panic.
            let Some(load) = load else {
                return Err(format!("step for {id:?} carries neither cost nor load"));
            };
            // The fleet spec prices the load inside the engine; the 1-D
            // cost slot of the event is unused.
            return Ok((Cost::Zero, Some(load)));
        }
        match cost {
            Some(c) => Ok((c, load)),
            None => {
                let Some(load) = load else {
                    return Err(format!("step for {id:?} carries neither cost nor load"));
                };
                let model = match self.models.get(id) {
                    Some(Pricing::Scalar(model)) => *model,
                    _ => CostModel::default(),
                };
                Ok((
                    Cost::Server {
                        lambda: load,
                        params: model.server,
                        overload: model.overload,
                    },
                    Some(load),
                ))
            }
        }
    }

    /// Price one parsed `step` and queue it on the session's batch,
    /// flushing when the batch cap is hit. Shared by both framings;
    /// `number` is the record's 1-based sequence (line or frame).
    pub(crate) fn queue_step(
        &mut self,
        number: usize,
        id: &str,
        cost: Option<Cost>,
        load: Option<f64>,
        pending: &mut Vec<PendingStep>,
        out: &mut Vec<Reply>,
    ) {
        match self.cost_of(id, cost, load) {
            Err(message) => {
                self.flush_steps(pending, out);
                out.push(Reply::Error {
                    seq: number,
                    id: None,
                    message,
                });
            }
            Ok((cost, load)) => {
                // Resolve the id once, here: the batch then flushes through
                // the engine's pre-resolved zero-allocation path.
                let (id, key) = self.engine.resolve(id);
                pending.push(PendingStep {
                    line: number,
                    id,
                    key,
                    cost,
                    load,
                });
                // Cap the batch: an unbounded run of consecutive steps
                // would otherwise become one giant engine call (and one
                // giant WAL record), starving the checkpoint cadence and
                // losing everything on a mid-file crash.
                if pending.len() >= MAX_STEP_BATCH {
                    self.flush_steps(pending, out);
                }
            }
        }
    }

    pub(crate) fn flush_steps(&mut self, pending: &mut Vec<PendingStep>, out: &mut Vec<Reply>) {
        if pending.is_empty() {
            return;
        }
        self.lines_buf.clear();
        self.outcomes_buf.clear();
        for p in pending.drain(..) {
            self.lines_buf.push(p.line);
            self.events_buf.push(crate::StepEvent {
                id: p.id,
                key: p.key,
                cost: p.cost,
                load: p.load,
            });
        }
        match self
            .engine
            .step_events(&mut self.events_buf, &mut self.outcomes_buf)
        {
            Ok(()) => {
                self.since_checkpoint += self.outcomes_buf.len() as u64;
                let last_line = *self.lines_buf.last().expect("non-empty batch");
                for (o, &line) in self.outcomes_buf.drain(..).zip(self.lines_buf.iter()) {
                    match o.error {
                        None => out.push(Reply::Stepped {
                            seq: line,
                            outcome: o,
                        }),
                        Some(message) => out.push(Reply::Error {
                            seq: line,
                            id: Some(o.id.to_string()),
                            message,
                        }),
                    }
                }
                // The batch fed the auto-rebalancing policy one tick;
                // apply any pending topology decision as an incremental
                // migration and announce it (like auto-checkpoints, the
                // response is unsolicited but self-identifying). Failures
                // are attributed to the batch's *last* record — the one
                // whose ingestion triggered the background work.
                match self.engine.maybe_autoscale() {
                    Ok(None) => {}
                    Ok(Some(report)) => {
                        if report.durable {
                            // Fenced by its own checkpoint.
                            self.since_checkpoint = 0;
                        }
                        out.push(Reply::Line(rebalanced_line(&report, true)));
                    }
                    Err(e) => out.push(Reply::Error {
                        seq: last_line,
                        id: None,
                        message: e.to_string(),
                    }),
                }
                if self.auto_checkpoint > 0 && self.since_checkpoint >= self.auto_checkpoint {
                    self.since_checkpoint = 0;
                    match self.engine.checkpoint() {
                        Ok(report) => out.push(Reply::Line(checkpointed_line(&report))),
                        Err(e) => out.push(Reply::Error {
                            seq: last_line,
                            id: None,
                            message: e.to_string(),
                        }),
                    }
                }
            }
            Err(e) => {
                // A batch-level failure fails every event in it: report one
                // error *per queued step, each at its own sequence*, so a
                // multi-step batch never hides which records were lost —
                // and both framings agree on every failing position.
                let message = e.to_string();
                for &line in &self.lines_buf {
                    out.push(Reply::Error {
                        seq: line,
                        id: None,
                        message: message.clone(),
                    });
                }
            }
        }
    }

    fn recover_in_place(&mut self) -> Result<crate::RecoveryReport, crate::EngineError> {
        // Recover from the *raw* backend: the new engine wraps it in its
        // own instrumentation, so observers never nest. (The replacement
        // engine starts with fresh metrics/trace state — observation is
        // process state, not journaled state.)
        let store = self.engine.raw_store().clone();
        if !store.is_durable() {
            return Err(crate::EngineError::Store(
                "engine has no durable store to recover from".into(),
            ));
        }
        let spec = self.engine.ring_spec();
        let mut cfg = crate::EngineConfig::with_topology(spec.shards, spec.vnodes);
        cfg.metrics = self.engine.obs().metrics_enabled();
        cfg.trace_capacity = self.engine.obs().trace().capacity();
        // Recover first and swap only on success: a failed recovery must
        // leave the session on its old, still-durable engine instead of
        // silently downgrading it. The old engine is idle while we do this
        // (the session serializes all requests), so nothing appends while
        // the scan repairs the WAL.
        let (engine, report) = crate::Engine::recover(cfg, store)?;
        std::mem::replace(&mut self.engine, engine).shutdown();
        self.since_checkpoint = 0;
        self.last_recovery = Some(report.clone());
        self.reload_models()?;
        Ok(report)
    }

    pub(crate) fn handle_control(&mut self, record: Record, line: usize, out: &mut Vec<Reply>) {
        let error_line = |message: &str| Reply::Error {
            seq: line,
            id: None,
            message: message.to_string(),
        };
        match record {
            // Both framings batch steps through `queue_step` before
            // dispatching controls; a step landing here means a framing
            // layer misrouted it. Answer with a typed error — a server
            // multiplexing thousands of connections must never panic on
            // one connection's traffic.
            Record::Step { .. } => out.push(error_line("step record misrouted as control")),
            Record::Admit { config, cost_model } => {
                let id = config.id.clone();
                let pricing = if config.policy.is_hetero() {
                    Pricing::Hetero
                } else {
                    Pricing::Scalar(cost_model)
                };
                match self.engine.admit(config) {
                    Ok(()) => {
                        self.models.insert(id.clone(), pricing);
                        out.push(Reply::Line(
                            serde_json::to_string(&serde_json::json!({
                                "op": "admitted", "id": id,
                            }))
                            .expect("serializable"),
                        ));
                    }
                    Err(e) => out.push(error_line(&e.to_string())),
                }
            }
            Record::Finish { id } => match self.engine.finish(&id) {
                Ok(states) => out.push(Reply::Line(
                    serde_json::to_string(&serde_json::json!({
                        "op": "finished", "id": id, "states": states,
                    }))
                    .expect("serializable"),
                )),
                Err(e) => out.push(error_line(&e.to_string())),
            },
            Record::Snapshot { id } => match self.engine.snapshot(&id) {
                // The response carries the tenant's cost model alongside the
                // snapshot so a `restore` built from this line re-prices
                // `load` events identically after a restart. Hetero tenants
                // price through the fleet spec inside the snapshot's config,
                // so their cost model is null.
                Ok(snapshot) => {
                    let model = match self.models.get(&id) {
                        Some(Pricing::Scalar(model)) => model.to_value(),
                        Some(Pricing::Hetero) => serde::Value::Null,
                        None => CostModel::default().to_value(),
                    };
                    out.push(Reply::Line(
                        serde_json::to_string(&serde_json::json!({
                            "op": "snapshot",
                            "id": id,
                            "snapshot": snapshot.to_value(),
                            "cost_model": model,
                        }))
                        .expect("serializable"),
                    ));
                }
                Err(e) => out.push(error_line(&e.to_string())),
            },
            Record::Restore {
                mut snapshot,
                cost_model,
            } => {
                let id = snapshot.config.id.clone();
                // An explicit model overrides; either way the effective
                // model rides in the config so it survives re-journaling.
                if cost_model.is_some() {
                    snapshot.config.cost_model = cost_model;
                }
                let pricing = Pricing::for_config(&snapshot.config);
                match self.engine.restore(*snapshot) {
                    Ok(()) => {
                        self.models.insert(id.clone(), pricing);
                        out.push(Reply::Line(
                            serde_json::to_string(&serde_json::json!({
                                "op": "restored", "id": id,
                            }))
                            .expect("serializable"),
                        ));
                    }
                    Err(e) => out.push(error_line(&e.to_string())),
                }
            }
            Record::Report(id) => {
                let reports = match id {
                    Some(id) => self.engine.report(&id).map(|r| vec![r]),
                    None => self.engine.report_all(),
                };
                match reports {
                    Ok(reports) => {
                        for r in reports {
                            out.push(Reply::Line(
                                serde_json::to_string(&serde_json::json!({
                                    "op": "report", "report": r.to_value(),
                                }))
                                .expect("serializable"),
                            ));
                        }
                    }
                    Err(e) => out.push(error_line(&e.to_string())),
                }
            }
            Record::Stats => match self.engine.shard_stats() {
                // Alongside the per-shard rows: the tenant/event skew over
                // the shards (max over mean, 1.0 = balanced) and the
                // auto-rebalancing policy state (null when disabled) — the
                // load-balance observability the topology policy acts on.
                Ok(stats) => {
                    let tenants: Vec<u64> = stats.iter().map(|s| s.tenants as u64).collect();
                    let events: Vec<u64> = stats.iter().map(|s| s.events).collect();
                    out.push(Reply::Line(
                        serde_json::to_string(&serde_json::json!({
                            "op": "stats",
                            "shards": stats.to_value(),
                            "skew": {
                                "tenants": crate::topology::skew_of(&tenants),
                                "events": crate::topology::skew_of(&events),
                            },
                            "autoscale": autoscale_value(self.engine.autoscale_status()),
                            "energy": energy_value(self.engine.energy_status()),
                        }))
                        .expect("serializable"),
                    ));
                }
                Err(e) => out.push(error_line(&e.to_string())),
            },
            Record::Checkpoint => match self.engine.checkpoint() {
                Ok(report) => {
                    self.since_checkpoint = 0;
                    out.push(Reply::Line(checkpointed_line(&report)));
                }
                Err(e) => out.push(error_line(&e.to_string())),
            },
            Record::Recover => match self.recover_in_place() {
                Ok(report) => out.push(Reply::Line(recovered_line(&report))),
                Err(e) => out.push(error_line(&e.to_string())),
            },
            Record::Rebalance {
                shards,
                vnodes,
                incremental,
            } => {
                let result = if incremental {
                    self.engine.rebalance_incremental(shards, vnodes)
                } else {
                    self.engine.rebalance(shards, vnodes)
                };
                match result {
                    Ok(report) => {
                        // A durable rebalance is fenced by a fresh
                        // checkpoint, so the auto-checkpoint clock restarts.
                        if report.durable {
                            self.since_checkpoint = 0;
                        }
                        out.push(Reply::Line(rebalanced_line(&report, false)));
                    }
                    Err(e) => out.push(error_line(&e.to_string())),
                }
            }
            Record::Autoscale {
                off,
                min,
                max,
                switch_cost,
                shard_cost,
                cooldown,
                priced,
            } => {
                let result = if off {
                    self.engine.set_autoscale(None).map_err(|e| e.to_string())
                } else if let (Some(min), Some(max)) = (min, max) {
                    let mut cfg = crate::TopologyConfig::new(min, max);
                    if let Some(b) = switch_cost {
                        cfg.switch_cost = b;
                    }
                    if let Some(c) = shard_cost {
                        cfg.shard_cost = c;
                    }
                    if let Some(k) = cooldown {
                        cfg.cooldown = k;
                    }
                    if priced {
                        // The policy prices its induced instance through
                        // the engine's energy physics — the same config
                        // the meter bills with, so decision and bill agree.
                        match self.engine.power_config() {
                            Some(p) => cfg.pricing = Some(p),
                            None => {
                                out.push(error_line(
                                    "autoscale \"priced\":true requires energy accounting: \
                                     configure the \"energy\" op first",
                                ));
                                return;
                            }
                        }
                    }
                    self.engine
                        .set_autoscale(Some(cfg))
                        .map_err(|e| e.to_string())
                } else {
                    Ok(()) // bare read-back
                };
                match result {
                    Ok(()) => out.push(Reply::Line(autoscale_line(
                        self.engine.autoscale_status(),
                        self.engine.logical_tick(),
                    ))),
                    Err(message) => out.push(error_line(&message)),
                }
            }
            Record::Energy {
                off,
                model,
                capacity,
                price,
            } => {
                let result: Result<(), String> = if off {
                    self.engine.set_power(None).map_err(|e| e.to_string())
                } else if let Some(model) = model {
                    PowerSpec::parse(&model)
                        .and_then(|spec| {
                            let mut cfg = PowerConfig::new(spec);
                            if let Some(c) = capacity {
                                cfg.capacity = c;
                            }
                            if let Some(p) = price.as_deref() {
                                cfg.price = PriceSchedule::parse(p)?;
                            }
                            Ok(cfg)
                        })
                        .and_then(|cfg| self.engine.set_power(Some(cfg)).map_err(|e| e.to_string()))
                } else {
                    Ok(()) // bare read-back
                };
                match result {
                    Ok(()) => out.push(Reply::Line(energy_line(
                        self.engine.energy_status(),
                        self.engine.logical_tick(),
                    ))),
                    Err(message) => out.push(error_line(&message)),
                }
            }
            Record::Limits {
                max_tenants,
                rate,
                burst,
            } => {
                let mut cfg = self.engine.limits();
                if let Some(n) = max_tenants {
                    cfg.max_tenants = n;
                }
                if let Some(r) = rate {
                    cfg.rate = r;
                }
                if let Some(b) = burst {
                    cfg.burst = b;
                }
                match self.engine.set_limits(cfg) {
                    // Read back from the engine: the echoed burst is the
                    // effective (rate-clamped) capacity, not the raw input.
                    Ok(()) => {
                        let effective = self.engine.limits();
                        out.push(Reply::Line(
                            serde_json::to_string(&serde_json::json!({
                                "op": "limits",
                                "max_tenants": effective.max_tenants,
                                "rate": effective.rate,
                                "burst": effective.burst,
                            }))
                            .expect("serializable"),
                        ));
                    }
                    Err(e) => out.push(error_line(&e.to_string())),
                }
            }
            Record::Metrics => {
                let obs = self.engine.obs();
                let rows: Vec<serde::Value> =
                    obs.registry().snapshot().iter().map(metric_row).collect();
                out.push(Reply::Line(
                    serde_json::to_string(&serde_json::json!({
                        "op": "metrics",
                        "enabled": obs.metrics_enabled(),
                        "metrics": serde::Value::Array(rows),
                    }))
                    .expect("serializable"),
                ));
            }
            Record::Trace { last } => {
                let trace = self.engine.obs().trace();
                let events: Vec<serde::Value> = trace.events(last).iter().map(trace_row).collect();
                out.push(Reply::Line(
                    serde_json::to_string(&serde_json::json!({
                        "op": "trace",
                        "enabled": trace.enabled(),
                        "capacity": trace.capacity(),
                        "recorded": trace.recorded(),
                        "events": serde::Value::Array(events),
                    }))
                    .expect("serializable"),
                ));
            }
            Record::WalStats => {
                // Write-volume counters from the engine's store seam: what
                // *this* handle appended/synced (always counted, even with
                // metrics off) — distinct from the backend's own `store`
                // stats, which survive across handles via recovery.
                let (wal_records, wal_bytes, wal_syncs) = {
                    let v = self.engine.obs().wal_volume();
                    (v.0, v.1, v.2)
                };
                let gathered = self
                    .engine
                    .store()
                    .wal_stats()
                    .map_err(|e| e.to_string())
                    .and_then(|store| {
                        let ids = self.engine.tenant_ids().map_err(|e| e.to_string())?;
                        let shards = self.engine.shard_stats().map_err(|e| e.to_string())?;
                        Ok((store, ids, shards))
                    });
                match gathered {
                    // The trailing counters surface what the *last
                    // recovery* replayed from the WAL tail — full
                    // rebalances and incremental migrations separately
                    // (both zero when this process never recovered).
                    Ok((store, ids, shards)) => out.push(Reply::Line(
                        serde_json::to_string(&serde_json::json!({
                            "op": "wal_stats",
                            "store": store.to_value(),
                            "wal": {
                                "appended_records": wal_records,
                                "appended_bytes": wal_bytes,
                                "fsyncs": wal_syncs,
                            },
                            "tenants": ids.len(),
                            "tenant_ids": ids,
                            "tenants_per_shard":
                                shards.iter().map(|s| s.tenants).collect::<Vec<_>>(),
                            "rebalances_replayed": self
                                .last_recovery
                                .as_ref()
                                .map(|r| r.rebalances_replayed)
                                .unwrap_or(0),
                            "migrations_replayed": self
                                .last_recovery
                                .as_ref()
                                .map(|r| r.migrations_replayed)
                                .unwrap_or(0),
                            // The meter is process state: a recovered
                            // handle restarts these totals from zero.
                            "energy": match self.engine.energy_status() {
                                None => serde::Value::Null,
                                Some(s) => serde_json::json!({
                                    "joules": s.joules, "cost": s.cost,
                                }),
                            },
                        }))
                        .expect("serializable"),
                    )),
                    Err(message) => out.push(error_line(&message)),
                }
            }
        }
    }

    /// Process a block of JSONL request lines (blank lines and `#` comments
    /// skipped), returning the response lines. Runs of consecutive `step`
    /// records become single batched engine calls. Error responses carry
    /// the 1-based input line number of the record that caused them.
    pub fn handle_lines<'a>(&mut self, lines: impl IntoIterator<Item = &'a str>) -> Vec<String> {
        let mut replies = Vec::new();
        let mut pending: Vec<PendingStep> = Vec::new();
        for (index, line) in lines.into_iter().enumerate() {
            let number = index + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match parse_record(line) {
                Err(e) => {
                    self.flush_steps(&mut pending, &mut replies);
                    replies.push(Reply::Error {
                        seq: number,
                        id: None,
                        message: e.to_string(),
                    });
                }
                Ok(Record::Step { id, cost, load }) => {
                    self.queue_step(number, &id, cost, load, &mut pending, &mut replies);
                }
                Ok(control) => {
                    self.flush_steps(&mut pending, &mut replies);
                    self.handle_control(control, number, &mut replies);
                }
            }
        }
        self.flush_steps(&mut pending, &mut replies);
        replies.into_iter().map(Reply::into_line).collect()
    }
}

/// Streaming JSONL framing over a [`Session`]: the line-oriented twin of
/// [`crate::binwire::BinSession`], built for long-lived connections that
/// deliver bytes in arbitrary chunks.
///
/// [`Session::handle_lines`] numbers lines from 1 per call and flushes
/// the step batch when its input ends — correct for one-shot files,
/// wrong for a socket. A `LineSession` keeps the 1-based line counter
/// and the pending step batch **across** [`LineSession::feed`] calls, so
/// a chunked connection batches exactly like the equivalent one-shot
/// input: runs of consecutive `step` lines flush on a control record, at
/// the batch cap, or at [`LineSession::finish`] — never at a TCP read
/// boundary. The serve-layer differential suite pins this equivalence.
///
/// Per-connection I/O counters fold into the engine's wire metrics after
/// every feed (frames = request/response lines, bytes = raw stream
/// bytes), mirroring the binary framing's accounting.
///
/// Untrusted buffering is capped: an unterminated line longer than
/// [`MAX_LINE_LEN`] is a fatal framing error — typed, line-numbered —
/// and the session dies, exactly as an oversize length prefix kills the
/// binary framing.
pub struct LineSession {
    session: Session,
    pending: Vec<PendingStep>,
    replies: Vec<Reply>,
    /// Bytes of the current incomplete line (no `\n` seen yet), capped
    /// at [`MAX_LINE_LEN`].
    partial: Vec<u8>,
    /// Lines consumed so far; the next line is number `line + 1`.
    line: usize,
    done: bool,
    frames_in: u64,
    frames_out: u64,
    bytes_in: u64,
    bytes_out: u64,
    /// Counter values already folded into the engine's metrics registry
    /// (same order as [`LineSession::io_counters`]).
    reported: [u64; 4],
}

impl LineSession {
    /// Serve streaming JSONL framing over `session`.
    pub fn new(session: Session) -> LineSession {
        LineSession {
            session,
            pending: Vec::new(),
            replies: Vec::new(),
            partial: Vec::new(),
            line: 0,
            done: false,
            frames_in: 0,
            frames_out: 0,
            bytes_in: 0,
            bytes_out: 0,
            reported: [0; 4],
        }
    }

    /// The underlying session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Unwrap the underlying session.
    pub fn into_session(self) -> Session {
        self.session
    }

    /// The 1-based sequence number the next request line will get —
    /// errors the serving layer injects (e.g. a slow-consumer shed) are
    /// attributed to this sequence.
    pub fn next_seq(&self) -> usize {
        self.line + 1
    }

    /// True once the stream finished or was shed.
    pub fn is_dead(&self) -> bool {
        self.done
    }

    /// Per-connection I/O counters: `(lines_in, lines_out, bytes_in,
    /// bytes_out)`.
    pub fn io_counters(&self) -> (u64, u64, u64, u64) {
        (
            self.frames_in,
            self.frames_out,
            self.bytes_in,
            self.bytes_out,
        )
    }

    /// Ingest connection bytes, appending rendered response lines (each
    /// `\n`-terminated) to `out`. Bytes fed after death are ignored.
    pub fn feed(&mut self, bytes: &[u8], out: &mut Vec<u8>) {
        if self.done {
            return;
        }
        self.bytes_in += bytes.len() as u64;
        let start = out.len();
        let mut rest = bytes;
        while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
            let (head, tail) = rest.split_at(pos);
            rest = &tail[1..];
            if self.partial.is_empty() {
                self.take_line(head);
            } else {
                self.partial.extend_from_slice(head);
                let owned = std::mem::take(&mut self.partial);
                self.take_line(&owned);
                self.partial = owned;
                self.partial.clear();
            }
        }
        self.partial.extend_from_slice(rest);
        if self.partial.len() > MAX_LINE_LEN {
            self.overlong_line();
        }
        self.drain_replies(out);
        self.bytes_out += (out.len() - start) as u64;
        self.fold_obs();
    }

    /// End-of-stream: a trailing unterminated line is processed as the
    /// final request, the pending step batch flushes, and the remaining
    /// response lines are appended to `out`.
    pub fn finish(&mut self, out: &mut Vec<u8>) {
        if self.done {
            return;
        }
        let start = out.len();
        if !self.partial.is_empty() {
            let owned = std::mem::take(&mut self.partial);
            self.take_line(&owned);
        }
        self.session
            .flush_steps(&mut self.pending, &mut self.replies);
        self.done = true;
        self.drain_replies(out);
        self.bytes_out += (out.len() - start) as u64;
        self.fold_obs();
    }

    /// Abandon the connection with a typed error at the next sequence
    /// number: the pending step batch flushes first (its replies are
    /// owed — the overshoot is bounded by one batch), then the error is
    /// rendered and the session dies. Used by the serving layer to shed
    /// slow consumers.
    pub fn shed(&mut self, message: &str, out: &mut Vec<u8>) {
        if self.done {
            return;
        }
        let start = out.len();
        self.session
            .flush_steps(&mut self.pending, &mut self.replies);
        self.replies.push(Reply::Error {
            seq: self.next_seq(),
            id: None,
            message: message.to_string(),
        });
        self.done = true;
        self.drain_replies(out);
        self.bytes_out += (out.len() - start) as u64;
        self.fold_obs();
    }

    /// The partial buffer outgrew [`MAX_LINE_LEN`] with no terminator in
    /// sight: fatal, like an oversize binary length prefix. The pending
    /// step batch flushes (its replies are owed), the overlong line gets
    /// a typed error at its own number, and the session dies — a peer
    /// streaming newline-free bytes cannot grow the buffer without
    /// bound.
    fn overlong_line(&mut self) {
        let len = self.partial.len();
        self.partial = Vec::new();
        self.line += 1;
        self.session
            .flush_steps(&mut self.pending, &mut self.replies);
        self.replies.push(Reply::Error {
            seq: self.line,
            id: None,
            message: format!("line length {len}+ exceeds cap {MAX_LINE_LEN}"),
        });
        self.done = true;
    }

    /// Consume one complete request line (sans newline).
    fn take_line(&mut self, raw: &[u8]) {
        self.line += 1;
        self.frames_in += 1;
        let number = self.line;
        let Ok(text) = std::str::from_utf8(raw) else {
            // The batch-oriented path never sees invalid UTF-8 (it reads
            // whole files as `String`); on a socket it is a typed,
            // line-numbered error like any other malformed request.
            self.session
                .flush_steps(&mut self.pending, &mut self.replies);
            self.replies.push(Reply::Error {
                seq: number,
                id: None,
                message: format!("line {number} is not valid UTF-8"),
            });
            return;
        };
        let text = text.trim();
        if text.is_empty() || text.starts_with('#') {
            return;
        }
        match parse_record(text) {
            Err(e) => {
                self.session
                    .flush_steps(&mut self.pending, &mut self.replies);
                self.replies.push(Reply::Error {
                    seq: number,
                    id: None,
                    message: e.to_string(),
                });
            }
            Ok(Record::Step { id, cost, load }) => {
                self.session.queue_step(
                    number,
                    &id,
                    cost,
                    load,
                    &mut self.pending,
                    &mut self.replies,
                );
            }
            Ok(control) => {
                self.session
                    .flush_steps(&mut self.pending, &mut self.replies);
                self.session
                    .handle_control(control, number, &mut self.replies);
            }
        }
    }

    fn drain_replies(&mut self, out: &mut Vec<u8>) {
        for reply in self.replies.drain(..) {
            out.extend_from_slice(reply.into_line().as_bytes());
            out.push(b'\n');
            self.frames_out += 1;
        }
    }

    /// Fold the per-connection counters into the engine's registry-backed
    /// wire metrics (delta since the last fold — called after every feed
    /// so long-lived connections report traffic while still open).
    fn fold_obs(&mut self) {
        let now = [
            self.frames_in,
            self.frames_out,
            self.bytes_in,
            self.bytes_out,
        ];
        let obs = self.session.engine().obs();
        obs.wire_frames_in.add(now[0] - self.reported[0]);
        obs.wire_frames_out.add(now[1] - self.reported[1]);
        obs.wire_bytes_in.add(now[2] - self.reported[2]);
        obs.wire_bytes_out.add(now[3] - self.reported[3]);
        self.reported = now;
    }
}

/// Most bytes one JSONL request line may span (terminator excluded)
/// before the connection is refused — the line framing's cap on
/// untrusted buffering, mirroring the binary framing's
/// [`crate::binwire::MAX_FRAME_LEN`]: a [`LineSession`] fed past it
/// emits a typed line-numbered error and dies.
pub const MAX_LINE_LEN: usize = crate::binwire::MAX_FRAME_LEN as usize;

/// Most step events a [`Session`] batches into one engine call: large
/// enough to amortize dispatch, small enough that journaling and
/// auto-checkpointing stay fine-grained under an unbounded step stream.
pub(crate) const MAX_STEP_BATCH: usize = 1024;

/// A priced `step` event waiting in a session batch: its id already
/// resolved against the engine's intern table, remembering the input
/// sequence it came from so a per-event failure is locatable.
pub(crate) struct PendingStep {
    line: usize,
    id: std::sync::Arc<str>,
    key: u32,
    cost: Cost,
    load: Option<f64>,
}

/// Render an error response line: `{"op":"error","line":N[,"id":...],
/// "message":...}`. The single rendering both framings decode to — the
/// binary error frame carries (seq, id, message) and rebuilds exactly
/// this line.
pub(crate) fn error_reply_line(seq: usize, id: Option<&str>, message: &str) -> String {
    let v = match id {
        None => serde_json::json!({
            "op": "error", "line": seq, "message": message,
        }),
        Some(id) => serde_json::json!({
            "op": "error", "line": seq, "id": id, "message": message,
        }),
    };
    serde_json::to_string(&v).expect("serializable")
}

/// Render the scalar `stepped` response from its compact fields — the
/// exact line [`stepped_line`] produces for a config-free outcome. The
/// binary framing's `STEPPED` frame decodes through this, pinning
/// byte-identity with the JSONL rendering.
pub(crate) fn stepped_states_line(id: &str, states: &[u32]) -> String {
    serde_json::to_string(&serde_json::json!({
        "op": "stepped",
        "id": id,
        "states": states,
    }))
    .expect("serializable")
}

fn rebalanced_line(report: &crate::RebalanceReport, auto: bool) -> String {
    serde_json::to_string(&serde_json::json!({
        "op": "rebalanced",
        "mode": if report.incremental { "incremental" } else { "full" },
        "auto": auto,
        "shards": report.shards,
        "vnodes": report.vnodes,
        "tenants": report.tenants,
        "moved": report.moved,
        "seq": report.seq,
        "durable": report.durable,
        "tick": report.tick,
    }))
    .expect("serializable")
}

/// One metrics-registry row for the `metrics` response. Histograms are
/// flattened to their summary (count/sum/max + quantile estimates).
fn metric_row(m: &rsdc_obs::MetricSnapshot) -> serde::Value {
    let mut row: Vec<(String, serde::Value)> =
        vec![("name".to_string(), serde::Value::String(m.id.name.clone()))];
    if let Some((key, value)) = &m.id.label {
        row.push((
            "labels".to_string(),
            serde::Value::Object(vec![(key.clone(), serde::Value::String(value.clone()))]),
        ));
    }
    let kind = |k: &str| ("kind".to_string(), serde::Value::String(k.to_string()));
    match &m.value {
        rsdc_obs::MetricValue::Counter(v) => {
            row.push(kind("counter"));
            row.push(("value".to_string(), serde_json::to_value(v)));
        }
        rsdc_obs::MetricValue::Gauge(v) => {
            row.push(kind("gauge"));
            row.push(("value".to_string(), serde_json::to_value(v)));
        }
        rsdc_obs::MetricValue::Histogram(h) => {
            row.push(kind("histogram"));
            for (key, v) in [
                ("count", h.count),
                ("sum", h.sum),
                ("max", h.max),
                ("p50", h.p50),
                ("p90", h.p90),
                ("p99", h.p99),
            ] {
                row.push((key.to_string(), serde_json::to_value(&v)));
            }
        }
    }
    serde::Value::Object(row)
}

/// One trace event for the `trace` response.
fn trace_row(e: &rsdc_obs::TraceEvent) -> serde::Value {
    let fields: Vec<(String, serde::Value)> = e
        .fields
        .iter()
        .map(|(key, v)| (key.to_string(), trace_field(v)))
        .collect();
    serde::Value::Object(vec![
        ("seq".to_string(), serde_json::to_value(&e.seq)),
        ("tick".to_string(), serde_json::to_value(&e.tick)),
        ("kind".to_string(), serde::Value::String(e.kind.to_string())),
        ("fields".to_string(), serde::Value::Object(fields)),
    ])
}

fn trace_field(v: &rsdc_obs::FieldValue) -> serde::Value {
    match v {
        rsdc_obs::FieldValue::U64(n) => serde_json::to_value(n),
        rsdc_obs::FieldValue::I64(n) => serde_json::to_value(n),
        rsdc_obs::FieldValue::F64(n) => serde_json::to_value(n),
        rsdc_obs::FieldValue::Str(s) => serde::Value::String(s.clone()),
        rsdc_obs::FieldValue::Bool(b) => serde::Value::Bool(*b),
    }
}

/// The auto-rebalancing policy state as a JSON value (`null` = disabled),
/// shared by the `autoscale` response and the `stats` report.
fn autoscale_value(status: Option<crate::TopologyStatus>) -> serde::Value {
    match status {
        None => serde::Value::Null,
        Some(s) => serde_json::json!({
            "min": s.config.min_shards,
            "max": s.config.max_shards,
            "switch_cost": s.config.switch_cost,
            "shard_cost": s.config.shard_cost,
            "cooldown": s.config.cooldown,
            "shards": s.shards,
            "target": s.target,
            "lower": s.lower,
            "upper": s.upper,
            "ticks": s.ticks,
            "imbalance_cost": s.imbalance_cost,
            "switch_cost_accrued": s.switch_cost_accrued,
            "migrations": s.migrations,
            "tenants_moved": s.tenants_moved,
            "event_skew": s.event_skew,
            "priced": s.config.pricing.is_some(),
            "price_now": s.price_now,
        }),
    }
}

fn autoscale_line(status: Option<crate::TopologyStatus>, tick: u64) -> String {
    let enabled = status.is_some();
    serde_json::to_string(&serde_json::json!({
        "op": "autoscale",
        "enabled": enabled,
        "policy": autoscale_value(status),
        "tick": tick,
    }))
    .expect("serializable")
}

/// The energy-accounting state as a JSON value (`null` = disabled),
/// shared by the `energy` response and the `stats` report. Specs render
/// in the parse short syntax, so a read-back is directly replayable.
fn energy_value(status: Option<EnergyStatus>) -> serde::Value {
    match status {
        None => serde::Value::Null,
        Some(s) => serde_json::json!({
            "model": s.model.describe(),
            "capacity": s.capacity,
            "price": s.price.describe(),
            "ticks": s.ticks,
            "joules": s.joules,
            "cost": s.cost,
            "price_now": s.price_now,
            "watts": s.watts,
            "utilization": s.utilization,
        }),
    }
}

fn energy_line(status: Option<EnergyStatus>, tick: u64) -> String {
    let enabled = status.is_some();
    serde_json::to_string(&serde_json::json!({
        "op": "energy",
        "enabled": enabled,
        "meter": energy_value(status),
        "tick": tick,
    }))
    .expect("serializable")
}

fn checkpointed_line(report: &crate::CheckpointReport) -> String {
    serde_json::to_string(&serde_json::json!({
        "op": "checkpointed",
        "seq": report.seq,
        "tenants": report.tenants,
        "durable": report.durable,
    }))
    .expect("serializable")
}

/// Render the `recovered` response for a recovery report (shared by the
/// `recover` wire op and the CLI's startup auto-recovery).
pub fn recovered_line(report: &crate::RecoveryReport) -> String {
    serde_json::to_string(&serde_json::json!({
        "op": "recovered", "report": report.to_value(),
    }))
    .expect("serializable")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_round_trip() {
        let cfg = TenantConfig::new("a", 8, 2.5, PolicySpec::FlcpRounded { k: 4, seed: 9 })
            .with_opt_tracking();
        let line = admit_line(&cfg);
        match parse_record(&line).unwrap() {
            Record::Admit { config, cost_model } => {
                assert_eq!(config, cfg);
                assert_eq!(cost_model.beta, 2.5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn short_policy_syntax_accepted() {
        let r = parse_record(
            "{\"op\":\"admit\",\"id\":\"x\",\"m\":4,\"beta\":1.0,\"policy\":\"flcp:2,7\"}",
        )
        .unwrap();
        match r {
            Record::Admit { config, .. } => {
                assert_eq!(config.policy, PolicySpec::FlcpRounded { k: 2, seed: 7 });
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn step_records() {
        let line = step_load_line("t", 2.25);
        match parse_record(&line).unwrap() {
            Record::Step { id, cost, load } => {
                assert_eq!(id, "t");
                assert!(cost.is_none());
                assert_eq!(load, Some(2.25));
            }
            other => panic!("unexpected {other:?}"),
        }
        let line = step_cost_line("t", &Cost::abs(1.5, 3.0));
        match parse_record(&line).unwrap() {
            Record::Step { cost, .. } => {
                assert_eq!(cost.unwrap(), Cost::abs(1.5, 3.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_records_are_rejected() {
        assert!(parse_record("not json").is_err());
        assert!(parse_record("{\"op\":\"warp\"}").is_err());
        assert!(parse_record("{\"op\":\"step\",\"id\":\"t\"}").is_err());
        assert!(parse_record(
            "{\"op\":\"admit\",\"id\":\"t\",\"m\":4,\"beta\":1.0,\"policy\":\"zzz\"}"
        )
        .is_err());
        // Autoscale: min/max come as a pair, and knob-only retunes are
        // refused rather than silently read back.
        assert!(parse_record("{\"op\":\"autoscale\",\"max\":4}").is_err());
        assert!(parse_record("{\"op\":\"autoscale\",\"switch_cost\":2.0}").is_err());
        assert!(parse_record("{\"op\":\"autoscale\",\"cooldown\":3}").is_err());
        assert!(
            parse_record("{\"op\":\"autoscale\",\"off\":true,\"cooldown\":3}").is_ok(),
            "off wins; stray knobs on a disable are harmless"
        );
        assert!(
            parse_record("{\"op\":\"autoscale\"}").is_ok(),
            "bare read-back"
        );
        assert!(
            parse_record("{\"op\":\"autoscale\",\"priced\":true}").is_err(),
            "priced is a configure knob, not a read-back flag"
        );
        // Energy: knobs without a model are refused, bad values rejected.
        assert!(
            parse_record("{\"op\":\"energy\"}").is_ok(),
            "bare read-back"
        );
        assert!(parse_record("{\"op\":\"energy\",\"capacity\":4.0}").is_err());
        assert!(parse_record("{\"op\":\"energy\",\"price\":\"2.0\"}").is_err());
        assert!(
            parse_record("{\"op\":\"energy\",\"model\":\"linear:100:250\",\"capacity\":0}")
                .is_err()
        );
        assert!(parse_record("{\"op\":\"energy\",\"model\":7}").is_err());
        assert!(
            parse_record("{\"op\":\"energy\",\"off\":true,\"capacity\":4.0}").is_ok(),
            "off wins; stray knobs on a disable are harmless"
        );
    }

    #[test]
    fn trace_ingestion() {
        let tr = Trace::new("t", vec![1.0, 2.5]);
        let lines = trace_records("a", &tr);
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(matches!(parse_record(line).unwrap(), Record::Step { .. }));
        }
    }

    #[test]
    fn restore_preserves_custom_cost_model_for_load_events() {
        // Admit with a non-default cost model, stream, snapshot; then build
        // a restore record from the snapshot *response* and continue in a
        // fresh session — load pricing must match the uninterrupted run.
        let admit = "{\"op\":\"admit\",\"id\":\"a\",\"m\":8,\"beta\":2.0,\"policy\":\"lcp\",\
                     \"cost_model\":{\"server\":{\"e_idle\":0.5,\"e_peak\":9.0,\
                     \"delay_weight\":4.0,\"delay_eps\":0.01},\"overload\":99.0,\"beta\":2.0}}";
        let loads = [2.0, 5.5, 3.0, 1.0];
        let steps: Vec<String> = loads.iter().map(|&l| step_load_line("a", l)).collect();

        // Uninterrupted reference.
        let mut full = Session::new(crate::Engine::new(crate::EngineConfig::with_shards(1)));
        let mut lines = vec![admit.to_string()];
        lines.extend(steps.iter().cloned());
        lines.push("{\"op\":\"report\",\"id\":\"a\"}".to_string());
        let full_out = full.handle_lines(lines.iter().map(|s| s.as_str()));
        let want: serde::Value = serde_json::from_str(full_out.last().unwrap()).unwrap();

        // Interrupted after two steps.
        let mut first = Session::new(crate::Engine::new(crate::EngineConfig::with_shards(1)));
        let mut lines = vec![admit.to_string()];
        lines.extend(steps[..2].iter().cloned());
        lines.push("{\"op\":\"snapshot\",\"id\":\"a\"}".to_string());
        let out = first.handle_lines(lines.iter().map(|s| s.as_str()));
        let snap_line: serde::Value = serde_json::from_str(out.last().unwrap()).unwrap();
        let restore = serde_json::to_string(&serde_json::json!({
            "op": "restore",
            "snapshot": snap_line["snapshot"].clone(),
            "cost_model": snap_line["cost_model"].clone(),
        }))
        .unwrap();

        let mut second = Session::new(crate::Engine::new(crate::EngineConfig::with_shards(2)));
        let mut lines = vec![restore];
        lines.extend(steps[2..].iter().cloned());
        lines.push("{\"op\":\"report\",\"id\":\"a\"}".to_string());
        let out = second.handle_lines(lines.iter().map(|s| s.as_str()));
        let got: serde::Value = serde_json::from_str(out.last().unwrap()).unwrap();

        assert_eq!(
            got["report"]["breakdown"], want["report"]["breakdown"],
            "restored session must price load events with the admit-time cost model"
        );
    }

    const HETERO_ADMIT: &str = "{\"op\":\"admit\",\"id\":\"h\",\"policy\":\"hetero:frontier\",\
         \"track_opt\":true,\"fleet\":{\"types\":[\
         {\"count\":3,\"beta\":1.0,\"energy\":1.0,\"capacity\":1.0},\
         {\"count\":2,\"beta\":2.5,\"energy\":1.4,\"capacity\":2.0}],\
         \"delay_eps\":0.3}}";

    #[test]
    fn hetero_admit_parses_fleet_and_derives_m() {
        match parse_record(HETERO_ADMIT).unwrap() {
            Record::Admit { config, .. } => {
                assert!(config.policy.is_hetero());
                assert_eq!(config.m, 5, "m derives from the fleet");
                assert_eq!(config.beta, 0.0);
                assert!(config.track_opt);
                let PolicySpec::Hetero { fleet, algo } = &config.policy else {
                    panic!("not hetero");
                };
                assert_eq!(*algo, HeteroAlgo::Frontier);
                assert_eq!(fleet.types.len(), 2);
                assert_eq!(fleet.delay_weight, 1.0, "defaulted");
                assert_eq!(fleet.overload, 25.0, "defaulted");
                // The canonical admit line for this config round-trips too.
                let line = admit_line(&config);
                match parse_record(&line).unwrap() {
                    Record::Admit { config: back, .. } => assert_eq!(back, config),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_record(
            "{\"op\":\"admit\",\"id\":\"h\",\"policy\":\"hetero:zap\",\"fleet\":{\"types\":[]}}"
        )
        .is_err());
        assert!(
            parse_record("{\"op\":\"admit\",\"id\":\"h\",\"policy\":\"hetero\"}").is_err(),
            "hetero admit requires a fleet"
        );
    }

    #[test]
    fn hetero_session_streams_snapshots_and_rejects_explicit_costs() {
        let mut session = Session::new(crate::Engine::new(crate::EngineConfig::with_shards(2)));
        let loads = [1.0, 4.5, 2.0, 5.5];
        let mut lines = vec![HETERO_ADMIT.to_string()];
        lines.extend(loads.iter().map(|&l| step_load_line("h", l)));
        lines.push(
            "{\"op\":\"step\",\"id\":\"h\",\"cost\":{\"Abs\":{\"slope\":1.0,\"center\":3.0}}}"
                .into(),
        );
        lines.push("{\"op\":\"report\",\"id\":\"h\"}".into());
        lines.push("{\"op\":\"snapshot\",\"id\":\"h\"}".into());
        let out = session.handle_lines(lines.iter().map(|s| s.as_str()));
        let parsed: Vec<serde::Value> = out
            .iter()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(parsed[0]["op"], "admitted");
        for p in &parsed[1..=loads.len()] {
            assert_eq!(p["op"], "stepped");
            assert!(p["configs"][0].as_array().is_some(), "{p:?}");
        }
        // The explicit-cost step on line 6 is rejected with its line number.
        let err = &parsed[loads.len() + 1];
        assert_eq!(err["op"], "error");
        assert_eq!(err["line"], 6);
        assert!(err["message"].as_str().unwrap().contains("load"));
        let report = &parsed[loads.len() + 2]["report"];
        assert_eq!(report["committed"], 4);
        assert!(report["last_config"].as_array().is_some());
        assert!(report["ratio"].as_f64().unwrap() >= 1.0 - 1e-9);
        // Hetero snapshots carry a null cost model and restore elsewhere.
        let snap_line = parsed.last().unwrap();
        assert!(snap_line["cost_model"].is_null());
        let restore = serde_json::to_string(&serde_json::json!({
            "op": "restore", "snapshot": snap_line["snapshot"].clone(),
        }))
        .unwrap();
        let mut second = Session::new(crate::Engine::new(crate::EngineConfig::with_shards(1)));
        let mut lines = vec![restore];
        lines.extend(loads.iter().map(|&l| step_load_line("h", l)));
        lines.push("{\"op\":\"report\",\"id\":\"h\"}".into());
        let out = second.handle_lines(lines.iter().map(|s| s.as_str()));
        assert!(out[0].contains("restored"), "{}", out[0]);
        let got: serde::Value = serde_json::from_str(out.last().unwrap()).unwrap();
        assert_eq!(got["report"]["committed"], 8);
    }

    #[test]
    fn rebalance_op_repartitions_live_sessions() {
        let mut session = Session::new(crate::Engine::new(crate::EngineConfig::with_shards(1)));
        let mut lines = vec![
            "{\"op\":\"admit\",\"id\":\"a\",\"m\":8,\"beta\":2.0,\"policy\":\"lcp\"}".to_string(),
            "{\"op\":\"admit\",\"id\":\"b\",\"m\":8,\"beta\":2.0,\"policy\":\"flcp:2,7\"}"
                .to_string(),
        ];
        lines.extend(
            [2.0, 5.5, 3.0]
                .iter()
                .flat_map(|&l| [step_load_line("a", l), step_load_line("b", l)]),
        );
        lines.push("{\"op\":\"rebalance\",\"shards\":3}".to_string());
        lines.extend(
            [1.0, 4.0]
                .iter()
                .flat_map(|&l| [step_load_line("a", l), step_load_line("b", l)]),
        );
        lines.push("{\"op\":\"report\"}".to_string());
        let out = session.handle_lines(lines.iter().map(|s| s.as_str()));
        let rebalanced: serde::Value = out
            .iter()
            .map(|l| serde_json::from_str(l).unwrap())
            .find(|v: &serde::Value| v["op"] == "rebalanced")
            .expect("rebalanced response");
        assert_eq!(rebalanced["shards"], 3);
        assert_eq!(rebalanced["tenants"], 2);
        assert_eq!(rebalanced["durable"], false);
        assert_eq!(session.engine().shards(), 3);

        // Reports match an unrebalanced session fed the same stream.
        let mut reference = Session::new(crate::Engine::new(crate::EngineConfig::with_shards(1)));
        let plain: Vec<String> = lines
            .iter()
            .filter(|l| !l.contains("rebalance"))
            .cloned()
            .collect();
        let want = reference.handle_lines(plain.iter().map(|s| s.as_str()));
        let reports = |outs: &[String]| -> Vec<String> {
            outs.iter()
                .filter(|l| l.contains("\"op\":\"report\""))
                .cloned()
                .collect()
        };
        assert_eq!(reports(&out), reports(&want));

        // Bad rebalance requests carry their line number.
        let out = session.handle_lines(["{\"op\":\"rebalance\"}"]);
        let v: serde::Value = serde_json::from_str(&out[0]).unwrap();
        assert_eq!(v["op"], "error");
        assert_eq!(v["line"], 1);
        let out = session.handle_lines(["{\"op\":\"rebalance\",\"shards\":0}"]);
        let v: serde::Value = serde_json::from_str(&out[0]).unwrap();
        assert_eq!(v["op"], "error");
    }

    #[test]
    fn limits_op_sets_and_reports_admission_config() {
        let mut session = Session::new(crate::Engine::new(crate::EngineConfig::with_shards(2)));
        // Query before anything is set: everything unlimited.
        let out = session.handle_lines(["{\"op\":\"limits\"}"]);
        let v: serde::Value = serde_json::from_str(&out[0]).unwrap();
        assert_eq!(v["op"], "limits");
        assert_eq!(v["max_tenants"], 0);
        assert_eq!(v["rate"], 0.0);
        // Cap at one tenant and throttle to 1 event per tick after a
        // burst of 2; the third step of the first batch and the second
        // admit must fail with typed, line-numbered errors.
        let lines = [
            "{\"op\":\"limits\",\"max_tenants\":1,\"rate\":1.0,\"burst\":2.0}",
            "{\"op\":\"admit\",\"id\":\"a\",\"m\":8,\"beta\":2.0,\"policy\":\"lcp\"}",
            "{\"op\":\"admit\",\"id\":\"b\",\"m\":8,\"beta\":2.0,\"policy\":\"lcp\"}",
            "{\"op\":\"step\",\"id\":\"a\",\"load\":2.0}",
            "{\"op\":\"step\",\"id\":\"a\",\"load\":3.0}",
            "{\"op\":\"step\",\"id\":\"a\",\"load\":4.0}",
            "{\"op\":\"report\",\"id\":\"a\"}",
        ];
        let out = session.handle_lines(lines);
        let parsed: Vec<serde::Value> = out
            .iter()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(parsed[0]["op"], "limits");
        assert_eq!(parsed[0]["max_tenants"], 1);
        assert_eq!(parsed[1]["op"], "admitted");
        assert_eq!(parsed[2]["op"], "error");
        assert_eq!(parsed[2]["line"], 3);
        assert!(parsed[2]["message"].as_str().unwrap().contains("rejected"));
        let throttled = parsed
            .iter()
            .find(|v| v["op"] == "error" && v["line"] == 6)
            .expect("throttled step error");
        assert!(throttled["message"].as_str().unwrap().contains("throttled"));
        assert_eq!(parsed.last().unwrap()["report"]["events"], 2);
        // A burst below the rate is clamped up, and the echo reports the
        // capacity actually enforced, not the raw input.
        let out = session.handle_lines(["{\"op\":\"limits\",\"rate\":4.0,\"burst\":1.0}"]);
        let v: serde::Value = serde_json::from_str(&out[0]).unwrap();
        assert_eq!(v["op"], "limits");
        assert_eq!(v["burst"], 4.0);
        // Invalid values are refused with a line number.
        let out = session.handle_lines(["{\"op\":\"limits\",\"rate\":-2.0}"]);
        let v: serde::Value = serde_json::from_str(&out[0]).unwrap();
        assert_eq!(v["op"], "error");
        assert_eq!(v["line"], 1);
    }

    #[test]
    fn errors_carry_the_input_line_number() {
        let mut session = Session::new(crate::Engine::new(crate::EngineConfig::with_shards(1)));
        let lines = [
            "# comment lines still count toward numbering",
            "{\"op\":\"admit\",\"id\":\"a\",\"m\":4,\"beta\":1.0,\"policy\":\"lcp\"}",
            "",
            "not json at all",
            "{\"op\":\"step\",\"id\":\"a\",\"load\":1.0}",
            "{\"op\":\"step\",\"id\":\"ghost\",\"load\":1.0}",
            "{\"op\":\"finish\",\"id\":\"ghost\"}",
        ];
        let out = session.handle_lines(lines);
        let parsed: Vec<serde::Value> = out
            .iter()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        // Parse error on line 4.
        assert_eq!(parsed[1]["op"], "error");
        assert_eq!(parsed[1]["line"], 4);
        // Per-event failure names line 6 (the ghost step), not the batch.
        let ghost = parsed
            .iter()
            .find(|v| v["op"] == "error" && v["id"] == "ghost")
            .expect("ghost error");
        assert_eq!(ghost["line"], 6);
        // Control-op failure names line 7.
        assert_eq!(parsed.last().unwrap()["op"], "error");
        assert_eq!(parsed.last().unwrap()["line"], 7);
    }

    #[test]
    fn durable_session_checkpoints_and_recovers_over_the_wire() {
        use rsdc_store::{FileStore, FileStoreConfig};
        use std::sync::Arc;
        let dir = std::env::temp_dir()
            .join("rsdc-wire-tests")
            .join(format!("session-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store: Arc<dyn rsdc_store::Durability> =
            Arc::new(FileStore::open(&dir, FileStoreConfig::default()).unwrap());

        // Admit with a custom cost model, stream, checkpoint mid-way, then
        // stream more events that only live in the WAL.
        let admit = "{\"op\":\"admit\",\"id\":\"a\",\"m\":8,\"beta\":2.0,\"policy\":\"flcp:2,9\",\
                     \"cost_model\":{\"server\":{\"e_idle\":0.5,\"e_peak\":9.0,\
                     \"delay_weight\":4.0,\"delay_eps\":0.01},\"overload\":99.0,\"beta\":2.0}}";
        let loads = [2.0, 5.5, 3.0, 1.0, 4.0, 2.5];

        // Uninterrupted reference for the final report.
        let mut reference = Session::new(crate::Engine::new(crate::EngineConfig::with_shards(1)));
        let mut lines = vec![admit.to_string()];
        lines.extend(loads.iter().map(|&l| step_load_line("a", l)));
        lines.push("{\"op\":\"report\",\"id\":\"a\"}".to_string());
        let want_out = reference.handle_lines(lines.iter().map(|s| s.as_str()));
        let want: serde::Value = serde_json::from_str(want_out.last().unwrap()).unwrap();

        // Durable run, killed after 4 of 6 loads (2 post-checkpoint).
        let (mut durable, recovered) = Session::open_durable(1, store.clone()).unwrap();
        assert!(recovered.is_none(), "fresh store");
        let mut lines = vec![admit.to_string()];
        lines.extend(loads[..2].iter().map(|&l| step_load_line("a", l)));
        lines.push("{\"op\":\"checkpoint\"}".to_string());
        lines.extend(loads[2..4].iter().map(|&l| step_load_line("a", l)));
        let out = durable.handle_lines(lines.iter().map(|s| s.as_str()));
        let ck: serde::Value = serde_json::from_str(&out[3]).unwrap();
        assert_eq!(ck["op"], "checkpointed");
        assert_eq!(ck["durable"], true);
        drop(durable); // crash

        // Recover in a fresh session; the custom cost model must survive
        // so the remaining loads are priced identically.
        let (mut session, report) = Session::open_durable(1, store).unwrap();
        let report = report.expect("store had state");
        assert_eq!(report.tenants_restored, 1);
        assert!(report.records_replayed >= 1);
        let mut lines: Vec<String> = loads[4..].iter().map(|&l| step_load_line("a", l)).collect();
        lines.push("{\"op\":\"report\",\"id\":\"a\"}".to_string());
        lines.push("{\"op\":\"wal_stats\"}".to_string());
        let out = session.handle_lines(lines.iter().map(|s| s.as_str()));
        let got: serde::Value = serde_json::from_str(&out[out.len() - 2]).unwrap();
        assert_eq!(
            serde_json::to_string(&got["report"]).unwrap(),
            serde_json::to_string(&want["report"]).unwrap(),
            "recovered report must be byte-identical to the uninterrupted run"
        );
        let stats: serde::Value = serde_json::from_str(out.last().unwrap()).unwrap();
        assert_eq!(stats["op"], "wal_stats");
        assert_eq!(stats["store"]["durable"], true);
        assert_eq!(stats["tenants"], 1);
        assert_eq!(stats["tenant_ids"][0], "a");
        assert_eq!(stats["tenants_per_shard"][0], 1);

        // The explicit `recover` op also works mid-session.
        let out = session.handle_lines(["{\"op\":\"recover\"}"]);
        let v: serde::Value = serde_json::from_str(&out[0]).unwrap();
        assert_eq!(v["op"], "recovered");
        assert_eq!(v["report"]["tenants_restored"], 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn energy_op_meters_sessions_and_reads_back() {
        let mut session = Session::new(crate::Engine::new(crate::EngineConfig::with_shards(2)));
        let mut lines = vec![
            // Bare read-back before anything is configured.
            "{\"op\":\"energy\"}".to_string(),
            "{\"op\":\"admit\",\"id\":\"a\",\"m\":8,\"beta\":2.0,\"policy\":\"lcp\"}".to_string(),
            "{\"op\":\"energy\",\"model\":\"linear:100:250\",\"capacity\":4.0,\
             \"price\":\"step:2:1,5\"}"
                .to_string(),
        ];
        lines.extend([2.0, 5.0, 3.0].iter().map(|&l| step_load_line("a", l)));
        lines.push("{\"op\":\"energy\"}".to_string());
        lines.push("{\"op\":\"stats\"}".to_string());
        lines.push("{\"op\":\"report\",\"id\":\"a\"}".to_string());
        lines.push("{\"op\":\"energy\",\"off\":true}".to_string());
        let out = session.handle_lines(lines.iter().map(|s| s.as_str()));
        let parsed: Vec<serde::Value> = out
            .iter()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(parsed[0]["op"], "energy");
        assert_eq!(parsed[0]["enabled"], false);
        assert!(parsed[0]["meter"].is_null());
        // The configure response echoes the specs in replayable syntax.
        let meter = &parsed[2]["meter"];
        assert_eq!(parsed[2]["enabled"], true);
        assert_eq!(meter["model"], "linear:100:250");
        assert_eq!(meter["price"], "step:2:1,5");
        assert_eq!(meter["ticks"], 0);
        // The three consecutive steps ingested as ONE batch = one logical
        // tick; the meter advanced once and billed it.
        let read = &parsed[6]["meter"];
        assert_eq!(read["ticks"], 1);
        assert!(read["joules"].as_f64().unwrap() > 0.0);
        assert!(read["cost"].as_f64().unwrap() > 0.0);
        assert_eq!(read["watts"].as_array().unwrap().len(), 2);
        assert_eq!(
            read["price_now"], 1.0,
            "tick 1 is still in the cheap window"
        );
        // Stats carries the same meter; the report carries attribution.
        assert_eq!(parsed[7]["op"], "stats");
        assert_eq!(parsed[7]["energy"]["ticks"], 1);
        let energy = &parsed[8]["report"]["energy"];
        assert!(energy["joules"].as_f64().unwrap() > 0.0);
        // Disable: read-back goes null again.
        assert_eq!(parsed[9]["op"], "energy");
        assert_eq!(parsed[9]["enabled"], false);
        assert!(parsed[9]["meter"].is_null());
        // Bad specs are refused with a line number, meter state unchanged.
        let out = session.handle_lines(["{\"op\":\"energy\",\"model\":\"warp:1\"}"]);
        let v: serde::Value = serde_json::from_str(&out[0]).unwrap();
        assert_eq!(v["op"], "error");
        assert_eq!(v["line"], 1);
    }

    #[test]
    fn priced_autoscale_requires_energy_and_reports_the_price() {
        let mut session = Session::new(crate::Engine::new(crate::EngineConfig::with_shards(1)));
        // Priced autoscale before energy accounting is an error.
        let out =
            session.handle_lines(["{\"op\":\"autoscale\",\"min\":1,\"max\":4,\"priced\":true}"]);
        let v: serde::Value = serde_json::from_str(&out[0]).unwrap();
        assert_eq!(v["op"], "error");
        assert!(v["message"].as_str().unwrap().contains("energy"));
        // Configure energy, then priced autoscale takes and reads back.
        let out = session.handle_lines([
            "{\"op\":\"energy\",\"model\":\"linear:100:250\",\"capacity\":4.0,\"price\":\"2.5\"}",
            "{\"op\":\"autoscale\",\"min\":1,\"max\":4,\"priced\":true}",
            "{\"op\":\"autoscale\"}",
        ]);
        let read: serde::Value = serde_json::from_str(out.last().unwrap()).unwrap();
        assert_eq!(read["enabled"], true);
        assert_eq!(read["policy"]["priced"], true);
        assert_eq!(read["policy"]["price_now"], 2.5);
        // An unpriced reconfigure drops the pricing again.
        let out = session.handle_lines(["{\"op\":\"autoscale\",\"min\":1,\"max\":4}"]);
        let v: serde::Value = serde_json::from_str(&out[0]).unwrap();
        assert_eq!(v["policy"]["priced"], false);
        assert!(v["policy"]["price_now"].is_null());
    }

    #[test]
    fn session_serves_full_lifecycle() {
        let engine = crate::Engine::new(crate::EngineConfig::with_shards(2));
        let mut session = Session::new(engine);
        let mut lines = vec![
            "# demo".to_string(),
            "{\"op\":\"admit\",\"id\":\"a\",\"m\":8,\"beta\":6.0,\"policy\":\"lcp\",\"track_opt\":true}"
                .to_string(),
        ];
        lines.extend(trace_records(
            "a",
            &Trace::new("t", vec![2.0, 5.0, 3.0, 1.0]),
        ));
        lines.push("{\"op\":\"finish\",\"id\":\"a\"}".to_string());
        lines.push("{\"op\":\"report\",\"id\":\"a\"}".to_string());
        lines.push("{\"op\":\"snapshot\",\"id\":\"a\"}".to_string());
        lines.push("{\"op\":\"stats\"}".to_string());
        let out = session.handle_lines(lines.iter().map(|s| s.as_str()));
        let kinds: Vec<String> = out
            .iter()
            .map(|l| {
                let v: serde::Value = serde_json::from_str(l).unwrap();
                v["op"].as_str().unwrap().to_string()
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "admitted", "stepped", "stepped", "stepped", "stepped", "finished", "report",
                "snapshot", "stats"
            ]
        );
        // The report is well-formed and the ratio was tracked.
        let report: serde::Value = serde_json::from_str(&out[6]).unwrap();
        assert_eq!(report["report"]["committed"], 4);
        assert!(report["report"]["ratio"].as_f64().unwrap() >= 1.0 - 1e-9);
        // The emitted snapshot restores into a fresh session.
        let snap_line: serde::Value = serde_json::from_str(&out[7]).unwrap();
        let restore = serde_json::to_string(&serde_json::json!({
            "op": "restore", "snapshot": snap_line["snapshot"].clone(),
        }))
        .unwrap();
        let mut session2 = Session::new(crate::Engine::new(crate::EngineConfig::with_shards(1)));
        let out2 = session2.handle_lines([restore.as_str()]);
        assert!(out2[0].contains("restored"), "{}", out2[0]);
        assert_eq!(session2.engine().report("a").unwrap().committed, 4);
    }
}
