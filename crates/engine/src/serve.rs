//! Multiplexed serving layer: one readiness-driven reactor, many wire
//! sessions.
//!
//! The wire protocol (JSONL lines or CRC-framed binary, [`crate::wire`] /
//! [`crate::binwire`]) was built batch-first: a single blocking session
//! over stdin/stdout. This module is the server shape: a std-only
//! [`Server`] owning one nonblocking [`TcpListener`] and N nonblocking
//! [`TcpStream`]s, multiplexed over a `poll(2)` readiness shim — no async
//! runtime, no extra dependencies, structured so a future tokio-backed
//! reactor can slot in behind the same [`ServeConfig`]/[`Server`] surface
//! (the readiness loop is the only piece that would change).
//!
//! ## Connection lifecycle
//!
//! ```text
//!   accept ──► handshake (sniff ≤ 6 bytes, deadline-bound)
//!                │ first byte `R` (0x52)        │ anything else
//!                ▼                              ▼
//!           BinSession                     LineSession
//!        (binary framing)               (JSONL framing)
//!                │  EOF / fatal framing error / shed
//!                ▼
//!           drain outbound queue ──► close
//! ```
//!
//! * Every connection wraps its **own** engine-backed session
//!   ([`crate::wire::LineSession`] or [`crate::binwire::BinSession`]),
//!   spawned lazily once the framing is decided — connection state is
//!   fully isolated, so per-connection response streams are byte-identical
//!   to the same requests served by a standalone session (the concurrency
//!   differential suite pins this).
//! * **`--wire auto` preamble sniff**: the reactor buffers at most 6
//!   bytes. A first byte of `R` (0x52, [`MAGIC`]`[0]` — no JSONL request
//!   line starts with it) routes to the binary framing once all 6
//!   preamble bytes arrive; anything else routes to JSONL immediately.
//!   Forced-binary listeners also collect the 6 preamble bytes here, so
//!   the handshake deadline covers them too.
//! * **Handshake deadline**: a client that connects and stalls before the
//!   framing is decided is shed after
//!   [`ServeConfig::handshake_timeout`] with a typed sequence-0 error —
//!   it cannot hold a connection slot open forever.
//! * **Fairness**: each reactor turn visits connections in rotating
//!   round-robin order and reads at most [`ServeConfig::read_chunk`]
//!   bytes per connection, so one chatty client cannot starve the rest.
//! * **Backpressure and shedding**: responses queue in a per-connection
//!   outbound buffer. While the backlog exceeds
//!   [`ServeConfig::write_buf`] the connection is marked *slow* and the
//!   reactor stops reading its input (natural TCP backpressure). If the
//!   backlog stays over the cap for [`ServeConfig::shed_timeout`], the
//!   connection is shed — admission-style, with a typed error at the
//!   next sequence number ([`SHED_SLOW_CONSUMER`]) — then given one
//!   drain window before the socket closes. The queue is bounded;
//!   the reactor never is.
//!
//! Pre-negotiation errors (handshake timeout, connection-cap reject on an
//! `auto`/`jsonl` listener) are rendered as JSONL error lines at sequence
//! 0; a forced-`binary` listener renders them as binary error frames.

use crate::binwire::{error_frame, BinSession, MAGIC};
use crate::wire::{error_reply_line, LineSession, Session};
use crate::{Engine, EngineConfig};
use rsdc_obs::{Counter, Gauge, MetricId, Registry};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Typed shed reason: the outbound queue stayed over its cap.
pub const SHED_SLOW_CONSUMER: &str = "slow-consumer";
/// Typed shed reason: the preamble sniff deadline expired.
pub const SHED_HANDSHAKE_TIMEOUT: &str = "handshake-timeout";
/// Typed shed reason: the connection cap was reached at accept.
pub const SHED_AT_CAPACITY: &str = "at-capacity";
/// Typed shed reason: the socket errored mid-stream.
pub const SHED_IO_ERROR: &str = "io-error";

/// Which framing(s) a listener accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// Sniff the first bytes of each connection: `R` routes to binary,
    /// anything else to JSONL.
    Auto,
    /// JSONL only: every connection gets a [`LineSession`] immediately
    /// (no handshake phase).
    Jsonl,
    /// Binary only: every connection must open with the 6-byte preamble.
    Binary,
}

impl WireMode {
    /// Parse the `--wire` CLI spelling.
    pub fn parse(s: &str) -> Result<WireMode, String> {
        match s {
            "auto" => Ok(WireMode::Auto),
            "jsonl" => Ok(WireMode::Jsonl),
            "binary" => Ok(WireMode::Binary),
            other => Err(format!(
                "bad wire mode {other:?}: expected auto, jsonl or binary"
            )),
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            WireMode::Auto => "auto",
            WireMode::Jsonl => "jsonl",
            WireMode::Binary => "binary",
        }
    }
}

/// Reactor configuration. `Default` is tuned for tests and small fleets;
/// the CLI overrides the knobs it exposes.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Engine topology for each connection's private engine (spawned
    /// lazily once the framing is decided).
    pub engine: EngineConfig,
    /// Framing negotiation mode.
    pub wire: WireMode,
    /// Maximum concurrently open connections; connection N+1 is refused
    /// with a typed sequence-0 error and counted as shed
    /// ([`SHED_AT_CAPACITY`]).
    pub max_conns: usize,
    /// Outbound queue cap per connection, in bytes. A backlog over this
    /// marks the connection slow; staying over it for
    /// [`ServeConfig::shed_timeout`] sheds it. (One reply batch may
    /// overshoot the cap — the bound is cap + one batch, never
    /// unbounded.)
    pub write_buf: usize,
    /// How long a connection may sit without a decided framing before it
    /// is shed ([`SHED_HANDSHAKE_TIMEOUT`]).
    pub handshake_timeout: Duration,
    /// How long a connection may stay slow (backlog over
    /// [`ServeConfig::write_buf`]) before it is shed
    /// ([`SHED_SLOW_CONSUMER`]). Also the drain window a closing
    /// connection gets to flush its final bytes.
    pub shed_timeout: Duration,
    /// Most input bytes one connection may deliver per reactor turn (the
    /// round-robin fairness quantum).
    pub read_chunk: usize,
    /// Stop taking connections off the listener after this many accepts
    /// (capacity rejects included) and return from [`Server::run`] once
    /// every admitted connection closes. `None` serves forever.
    pub max_accepts: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            engine: EngineConfig::with_shards(1),
            wire: WireMode::Auto,
            max_conns: 64,
            write_buf: 256 * 1024,
            handshake_timeout: Duration::from_secs(10),
            shed_timeout: Duration::from_secs(5),
            read_chunk: 64 * 1024,
            max_accepts: None,
        }
    }
}

/// Server-level metrics, on their own registry (per-connection engines
/// each own an [`crate::EngineObs`]; the reactor's accept/shed/backlog
/// accounting is process state and lives here).
pub struct ServeObs {
    registry: Registry,
    accepted: Counter,
    closed: Counter,
    shed_slow: Counter,
    shed_handshake: Counter,
    shed_capacity: Counter,
    shed_io: Counter,
    /// Connections currently open (per-connection population gauge).
    open: Gauge,
    /// Connections currently marked slow (backlog over the cap).
    slow: Gauge,
    bytes_in: Counter,
    bytes_out: Counter,
}

impl ServeObs {
    fn new() -> ServeObs {
        let registry = Registry::new(true);
        let shed = |reason: &str| {
            registry.counter(MetricId::labelled("serve_conns_shed", "reason", reason))
        };
        ServeObs {
            accepted: registry.counter(MetricId::plain("serve_conns_accepted")),
            closed: registry.counter(MetricId::plain("serve_conns_closed")),
            shed_slow: shed(SHED_SLOW_CONSUMER),
            shed_handshake: shed(SHED_HANDSHAKE_TIMEOUT),
            shed_capacity: shed(SHED_AT_CAPACITY),
            shed_io: shed(SHED_IO_ERROR),
            open: registry.gauge(MetricId::plain("serve_conns_open")),
            slow: registry.gauge(MetricId::plain("serve_conns_slow")),
            bytes_in: registry.counter(MetricId::labelled("serve_bytes", "dir", "in")),
            bytes_out: registry.counter(MetricId::labelled("serve_bytes", "dir", "out")),
            registry,
        }
    }

    /// The server's metrics registry (snapshot/exposition surface).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Connections currently open.
    pub fn open_conns(&self) -> i64 {
        self.open.value()
    }

    /// Connections currently marked slow.
    pub fn slow_conns(&self) -> i64 {
        self.slow.value()
    }

    fn count_shed(&self, reason: &'static str) {
        match reason {
            SHED_SLOW_CONSUMER => self.shed_slow.inc(),
            SHED_HANDSHAKE_TIMEOUT => self.shed_handshake.inc(),
            SHED_AT_CAPACITY => self.shed_capacity.inc(),
            _ => self.shed_io.inc(),
        }
    }

    fn shed_total(&self) -> u64 {
        self.shed_slow.value()
            + self.shed_handshake.value()
            + self.shed_capacity.value()
            + self.shed_io.value()
    }
}

/// What a finished [`Server::run`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted into the reactor.
    pub accepted: u64,
    /// Connections that ran to a clean close (EOF + drained responses).
    pub closed: u64,
    /// Connections shed (capacity reject, handshake timeout, slow
    /// consumer, or I/O error), by every reason combined.
    pub shed: u64,
    /// Raw bytes read from all connections.
    pub bytes_in: u64,
    /// Raw bytes written to all connections.
    pub bytes_out: u64,
}

// ---- poll(2) shim ----

/// Minimal readiness shim over the `poll(2)` syscall: the one OS-facing
/// seam of the reactor. A future tokio (or epoll/kqueue) backend replaces
/// exactly this module; everything above it speaks nonblocking
/// `read`/`write` plus "which fds are ready".
mod readiness {
    /// Readable.
    pub const POLLIN: i16 = 0x001;
    /// Writable.
    pub const POLLOUT: i16 = 0x004;

    /// One entry of the poll set, matching the C ABI `struct pollfd`.
    #[repr(C)]
    pub struct PollFd {
        /// Raw fd (< 0 entries are ignored by the kernel).
        pub fd: i32,
        /// Requested events (`POLLIN` / `POLLOUT`).
        pub events: i16,
        /// Kernel-reported events.
        pub revents: i16,
    }

    #[cfg(unix)]
    pub fn wait(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        // std already links the platform C library; declaring poll(2)
        // directly keeps the reactor dependency-free.
        extern "C" {
            fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        }
        loop {
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// Degraded portable fallback: sleep one tick and report everything
    /// ready — nonblocking sockets turn spurious readiness into
    /// `WouldBlock`, so the reactor stays correct, just less efficient.
    #[cfg(not(unix))]
    pub fn wait(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        std::thread::sleep(std::time::Duration::from_millis(
            timeout_ms.clamp(1, 10) as u64
        ));
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
        }
        Ok(fds.len())
    }
}

#[cfg(unix)]
fn raw_fd<T: std::os::unix::io::AsRawFd>(io: &T) -> i32 {
    io.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_io: &T) -> i32 {
    -1
}

// ---- connection state ----

/// Per-connection framing state.
enum ConnSession {
    /// Handshake: collecting at most 6 bytes to decide the framing.
    Sniff {
        buf: Vec<u8>,
        deadline: Instant,
        force_binary: bool,
    },
    Jsonl(Box<LineSession>),
    Binary(Box<BinSession>),
}

struct Conn {
    stream: TcpStream,
    fd: i32,
    sess: ConnSession,
    /// Outbound queue; `outbuf[sent..]` is still unwritten.
    outbuf: Vec<u8>,
    sent: usize,
    /// When the backlog first exceeded the cap (None = not slow).
    slow_since: Option<Instant>,
    /// Input side finished (EOF, shed, or fatal error): drain and close.
    closing: bool,
    /// Hard deadline to finish draining a closing connection.
    drain_deadline: Option<Instant>,
    /// Shed reason, when the close is a shed rather than a clean EOF.
    shed: Option<&'static str>,
    dead: bool,
}

impl Conn {
    fn backlog(&self) -> usize {
        self.outbuf.len() - self.sent
    }

    fn wants_read(&self) -> bool {
        !self.closing && self.slow_since.is_none()
    }
}

// ---- the server ----

/// The reactor: one nonblocking listener, N multiplexed connections.
pub struct Server {
    cfg: ServeConfig,
    listener: TcpListener,
    listener_fd: i32,
    local_addr: SocketAddr,
    conns: Vec<Conn>,
    /// Round-robin start offset for this turn's connection sweep.
    rr: usize,
    obs: ServeObs,
    /// Connections taken off the listener, capacity rejects included
    /// (drives [`ServeConfig::max_accepts`] termination).
    taken: u64,
    scratch: Vec<u8>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and build the reactor.
    pub fn bind(cfg: ServeConfig, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let scratch = vec![0u8; cfg.read_chunk.max(1)];
        Ok(Server {
            listener_fd: raw_fd(&listener),
            listener,
            local_addr,
            conns: Vec::new(),
            rr: 0,
            obs: ServeObs::new(),
            taken: 0,
            scratch,
            cfg,
        })
    }

    /// The bound address (resolves `:0` listeners).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Server-level metrics.
    pub fn obs(&self) -> &ServeObs {
        &self.obs
    }

    /// The framing mode this server was configured with.
    pub fn wire_mode(&self) -> &'static str {
        self.cfg.wire.as_str()
    }

    /// Run the reactor until [`ServeConfig::max_accepts`] connections
    /// have been accepted **and** every connection has closed (forever
    /// when `max_accepts` is `None`).
    pub fn run(&mut self) -> std::io::Result<ServeSummary> {
        while !self.done() {
            self.turn()?;
        }
        Ok(self.summary())
    }

    /// The summary [`Server::run`] returns, computable at any point.
    pub fn summary(&self) -> ServeSummary {
        ServeSummary {
            accepted: self.obs.accepted.value(),
            closed: self.obs.closed.value(),
            shed: self.obs.shed_total(),
            bytes_in: self.obs.bytes_in.value(),
            bytes_out: self.obs.bytes_out.value(),
        }
    }

    fn done(&self) -> bool {
        match self.cfg.max_accepts {
            Some(n) => self.taken >= n && self.conns.is_empty(),
            None => false,
        }
    }

    fn accepts_remaining(&self) -> bool {
        self.cfg.max_accepts.is_none_or(|n| self.taken < n)
    }

    /// One reactor turn: poll, accept, sweep connections round-robin.
    fn turn(&mut self) -> std::io::Result<()> {
        use readiness::{PollFd, POLLIN, POLLOUT};

        let accepting = self.accepts_remaining();
        let mut fds = Vec::with_capacity(self.conns.len() + 1);
        fds.push(PollFd {
            fd: self.listener_fd,
            events: if accepting { POLLIN } else { 0 },
            revents: 0,
        });
        for conn in &self.conns {
            let mut events = 0;
            if conn.wants_read() {
                events |= POLLIN;
            }
            if conn.backlog() > 0 {
                events |= POLLOUT;
            }
            fds.push(PollFd {
                fd: conn.fd,
                events,
                revents: 0,
            });
        }
        readiness::wait(&mut fds, self.poll_timeout_ms())?;

        if accepting && fds[0].revents & POLLIN != 0 {
            self.accept_ready();
        }

        // Sweep connections starting at a rotating offset: each gets at
        // most one read_chunk of input per turn, so a firehose client
        // cannot monopolize the reactor.
        let n = self.conns.len();
        if n > 0 {
            self.rr %= n;
            for i in 0..n {
                let idx = (self.rr + i) % n;
                self.service(idx);
            }
            self.rr += 1;
        }
        self.reap();
        Ok(())
    }

    /// Poll timeout: the nearest deadline among handshakes, slow-consumer
    /// sheds and drain windows, else a coarse idle tick.
    fn poll_timeout_ms(&self) -> i32 {
        let now = Instant::now();
        let mut next: Option<Instant> = None;
        let mut consider = |t: Instant| {
            next = Some(match next {
                Some(cur) if cur <= t => cur,
                _ => t,
            });
        };
        for conn in &self.conns {
            if let ConnSession::Sniff { deadline, .. } = &conn.sess {
                consider(*deadline);
            }
            if let Some(since) = conn.slow_since {
                consider(since + self.cfg.shed_timeout);
            }
            if let Some(deadline) = conn.drain_deadline {
                consider(deadline);
            }
        }
        match next {
            Some(t) => t.saturating_duration_since(now).as_millis().clamp(1, 100) as i32,
            None => 50,
        }
    }

    fn accept_ready(&mut self) {
        loop {
            if !self.accepts_remaining() {
                return;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => self.admit_conn(stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // Transient accept failures (ECONNABORTED etc.): skip.
                Err(_) => return,
            }
        }
    }

    /// Admission for a fresh socket: refuse typed at the connection cap,
    /// otherwise start the handshake (or go straight to JSONL framing).
    fn admit_conn(&mut self, stream: TcpStream) {
        self.taken += 1;
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        if self.conns.len() >= self.cfg.max_conns {
            // Admission reject: typed, sequence-0, best-effort write —
            // the socket never enters the reactor. Short writes retry
            // (with one brief WouldBlock grace) so the tiny reject is
            // not silently truncated, but the reactor never stalls on
            // an unwritable peer.
            let message = format!(
                "connection rejected: server is at its cap of {} connections",
                self.cfg.max_conns
            );
            let mut bytes = Vec::new();
            prenegotiation_error(self.cfg.wire, &message, &mut bytes);
            let mut stream = stream;
            let mut sent = 0;
            let mut waited = false;
            while sent < bytes.len() {
                match stream.write(&bytes[sent..]) {
                    Ok(0) => break,
                    Ok(n) => sent += n,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == ErrorKind::WouldBlock && !waited => {
                        waited = true;
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            self.obs.count_shed(SHED_AT_CAPACITY);
            return;
        }
        self.obs.accepted.inc();
        self.obs.open.inc();
        let sess = match self.cfg.wire {
            WireMode::Jsonl => ConnSession::Jsonl(Box::new(LineSession::new(self.fresh_session()))),
            mode => ConnSession::Sniff {
                buf: Vec::with_capacity(6),
                deadline: Instant::now() + self.cfg.handshake_timeout,
                force_binary: mode == WireMode::Binary,
            },
        };
        self.conns.push(Conn {
            fd: raw_fd(&stream),
            stream,
            sess,
            outbuf: Vec::new(),
            sent: 0,
            slow_since: None,
            closing: false,
            drain_deadline: None,
            shed: None,
            dead: false,
        });
    }

    fn fresh_session(&self) -> Session {
        Session::new(Engine::new(self.cfg.engine.clone()))
    }

    /// Service one connection for this turn: flush writes, read one
    /// quantum, feed the framing, re-flush, then apply backpressure and
    /// deadline state transitions.
    fn service(&mut self, idx: usize) {
        let now = Instant::now();
        self.flush_writes(idx);

        // Read one fairness quantum and feed the framing layer.
        if self.conns[idx].wants_read() && !self.conns[idx].dead {
            match self.conns[idx].stream.read(&mut self.scratch) {
                Ok(0) => {
                    let wire = self.cfg.wire;
                    let conn = &mut self.conns[idx];
                    let before = conn.outbuf.len();
                    match &mut conn.sess {
                        ConnSession::Sniff { buf, .. } if buf.is_empty() => {}
                        ConnSession::Sniff { buf, .. } => {
                            // Died mid-handshake: same truncation shape
                            // the binary framing reports at sequence 0,
                            // rendered in the listener's framing like
                            // every other pre-negotiation error.
                            let message = format!(
                                "handshake truncated: need 6 preamble bytes, have {}",
                                buf.len()
                            );
                            prenegotiation_error(wire, &message, &mut conn.outbuf);
                        }
                        ConnSession::Jsonl(ls) => ls.finish(&mut conn.outbuf),
                        ConnSession::Binary(bs) => bs.finish(&mut conn.outbuf),
                    }
                    self.obs.bytes_out.add((conn.outbuf.len() - before) as u64);
                    conn.closing = true;
                    conn.drain_deadline = Some(now + self.cfg.shed_timeout);
                }
                Ok(n) => {
                    self.obs.bytes_in.add(n as u64);
                    self.ingest(idx, n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    let conn = &mut self.conns[idx];
                    conn.shed = Some(SHED_IO_ERROR);
                    conn.dead = true;
                }
            }
            self.flush_writes(idx);
        }

        // Backpressure: mark/unmark slow by backlog against the cap.
        {
            let over = self.conns[idx].backlog() > self.cfg.write_buf;
            let conn = &mut self.conns[idx];
            match (over, conn.slow_since) {
                (true, None) if !conn.closing => {
                    conn.slow_since = Some(now);
                    self.obs.slow.inc();
                }
                (false, Some(_)) => {
                    conn.slow_since = None;
                    self.obs.slow.dec();
                }
                _ => {}
            }
        }

        // Deadlines: handshake, slow-consumer shed, drain window.
        let (handshake_expired, shed_expired) = {
            let conn = &self.conns[idx];
            (
                matches!(&conn.sess, ConnSession::Sniff { deadline, .. } if now >= *deadline)
                    && !conn.closing,
                conn.slow_since
                    .is_some_and(|since| now >= since + self.cfg.shed_timeout),
            )
        };
        if handshake_expired {
            let have = match &self.conns[idx].sess {
                ConnSession::Sniff { buf, .. } => buf.len(),
                _ => 0,
            };
            let message = format!(
                "handshake timeout: framing undecided after {} preamble byte(s)",
                have
            );
            self.shed_conn(idx, SHED_HANDSHAKE_TIMEOUT, &message, now);
        } else if shed_expired {
            let message = format!(
                "connection shed: outbound queue held over {} bytes past the \
                 slow-consumer deadline",
                self.cfg.write_buf
            );
            self.shed_conn(idx, SHED_SLOW_CONSUMER, &message, now);
        }

        // Drain-window expiry: stop waiting on a peer that will not read.
        let conn = &mut self.conns[idx];
        if conn.closing && conn.drain_deadline.is_some_and(|d| now >= d) {
            conn.dead = true;
        }
        if conn.closing && conn.backlog() == 0 {
            conn.dead = true;
        }
    }

    /// Feed `n` freshly read bytes through the connection's framing,
    /// transitioning out of the handshake when it resolves.
    fn ingest(&mut self, idx: usize, n: usize) {
        let cfg_wire = self.cfg.wire;
        let mut fresh: Option<ConnSession> = None;
        let conn = &mut self.conns[idx];
        let before = conn.outbuf.len();
        let bytes = &self.scratch[..n];
        match &mut conn.sess {
            ConnSession::Sniff {
                buf, force_binary, ..
            } => {
                buf.extend_from_slice(bytes);
                let binary = *force_binary || buf.first() == Some(&MAGIC[0]);
                if binary && buf.len() >= 6 {
                    // Whole preamble (and possibly more) buffered: the
                    // BinSession validates and echoes it.
                    let mut bs = Box::new(BinSession::new(Session::new(Engine::new(
                        self.cfg.engine.clone(),
                    ))));
                    bs.feed(buf, &mut conn.outbuf);
                    fresh = Some(ConnSession::Binary(bs));
                } else if !binary && cfg_wire == WireMode::Auto && !buf.is_empty() {
                    let mut ls =
                        LineSession::new(Session::new(Engine::new(self.cfg.engine.clone())));
                    ls.feed(buf, &mut conn.outbuf);
                    fresh = Some(ConnSession::Jsonl(Box::new(ls)));
                }
            }
            ConnSession::Jsonl(ls) => ls.feed(bytes, &mut conn.outbuf),
            ConnSession::Binary(bs) => bs.feed(bytes, &mut conn.outbuf),
        }
        if let Some(sess) = fresh {
            conn.sess = sess;
        }
        // Fatal framing error (bad preamble, oversize frame, overlong
        // line): the session already rendered its typed error; close
        // once drained. Checked after any handshake transition too, so
        // a session born dead cannot pin its slot until the peer
        // half-closes.
        let fatal = match &conn.sess {
            ConnSession::Sniff { .. } => false,
            ConnSession::Jsonl(ls) => ls.is_dead(),
            ConnSession::Binary(bs) => bs.is_dead(),
        };
        if fatal && !conn.closing {
            conn.closing = true;
            conn.drain_deadline = Some(Instant::now() + self.cfg.shed_timeout);
        }
        self.obs.bytes_out.add((conn.outbuf.len() - before) as u64);
    }

    /// Shed `idx`: typed error at the next sequence number, then a
    /// bounded drain window.
    fn shed_conn(&mut self, idx: usize, reason: &'static str, message: &str, now: Instant) {
        let conn = &mut self.conns[idx];
        let before = conn.outbuf.len();
        match &mut conn.sess {
            ConnSession::Sniff { .. } => {
                prenegotiation_error(self.cfg.wire, message, &mut conn.outbuf);
            }
            ConnSession::Jsonl(ls) => ls.shed(message, &mut conn.outbuf),
            ConnSession::Binary(bs) => bs.shed(message, &mut conn.outbuf),
        }
        self.obs.bytes_out.add((conn.outbuf.len() - before) as u64);
        conn.shed = Some(reason);
        conn.closing = true;
        conn.drain_deadline = Some(now + self.cfg.shed_timeout);
        self.flush_writes(idx);
    }

    /// Write as much of the outbound queue as the socket accepts.
    fn flush_writes(&mut self, idx: usize) {
        let conn = &mut self.conns[idx];
        while conn.sent < conn.outbuf.len() {
            match conn.stream.write(&conn.outbuf[conn.sent..]) {
                Ok(0) => {
                    conn.shed = conn.shed.or(Some(SHED_IO_ERROR));
                    conn.dead = true;
                    break;
                }
                Ok(n) => conn.sent += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.shed = conn.shed.or(Some(SHED_IO_ERROR));
                    conn.dead = true;
                    break;
                }
            }
        }
        // Compact the queue once it is fully written (keeps the
        // allocation, drops the dead prefix).
        if conn.sent == conn.outbuf.len() && conn.sent > 0 {
            conn.outbuf.clear();
            conn.sent = 0;
        }
    }

    /// Remove dead connections and settle their accounting.
    fn reap(&mut self) {
        let obs = &self.obs;
        self.conns.retain_mut(|conn| {
            if !conn.dead {
                return true;
            }
            if conn.slow_since.take().is_some() {
                obs.slow.dec();
            }
            match conn.shed {
                Some(reason) => obs.count_shed(reason),
                None => obs.closed.inc(),
            }
            obs.open.dec();
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            false
        });
    }
}

/// Render a pre-negotiation error (no framing decided): JSONL error line
/// at sequence 0 — except on a forced-binary listener, where the client
/// expects frames.
fn prenegotiation_error(mode: WireMode, message: &str, out: &mut Vec<u8>) {
    if mode == WireMode::Binary {
        error_frame(0, message, out);
    } else {
        out.extend_from_slice(error_reply_line(0, None, message).as_bytes());
        out.push(b'\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn spawn_server(cfg: ServeConfig) -> (SocketAddr, std::thread::JoinHandle<ServeSummary>) {
        let mut server = Server::bind(cfg, "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().expect("run"));
        (addr, handle)
    }

    #[test]
    fn serves_one_jsonl_connection() {
        let cfg = ServeConfig {
            max_accepts: Some(1),
            ..ServeConfig::default()
        };
        let (addr, handle) = spawn_server(cfg);
        let mut client = TcpStream::connect(addr).expect("connect");
        client
            .write_all(
                b"{\"op\":\"admit\",\"id\":\"a\",\"m\":4,\"beta\":2.0,\"policy\":\"lcp\"}\n\
                  {\"op\":\"step\",\"id\":\"a\",\"load\":1.0}\n",
            )
            .expect("send");
        client
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut got = String::new();
        client.read_to_string(&mut got).expect("read");
        let lines: Vec<&str> = got.lines().collect();
        assert_eq!(lines.len(), 2, "{got:?}");
        assert!(lines[0].contains("admitted"));
        assert!(lines[1].contains("stepped"));
        let summary = handle.join().expect("join");
        assert_eq!((summary.accepted, summary.closed, summary.shed), (1, 1, 0));
    }

    #[test]
    fn handshake_deadline_sheds_a_stalled_preamble() {
        let cfg = ServeConfig {
            max_accepts: Some(1),
            handshake_timeout: Duration::from_millis(80),
            ..ServeConfig::default()
        };
        let (addr, handle) = spawn_server(cfg);
        let mut client = TcpStream::connect(addr).expect("connect");
        // Three preamble bytes, then stall: the reactor must not hang.
        client.write_all(&MAGIC[..3]).expect("send");
        let mut got = String::new();
        client.read_to_string(&mut got).expect("read to EOF");
        assert!(
            got.contains("handshake timeout") && got.contains("\"line\":0"),
            "typed sequence-0 error expected, got {got:?}"
        );
        let summary = handle.join().expect("join");
        assert_eq!(summary.shed, 1, "stalled handshake counted as shed");
        assert_eq!(summary.closed, 0);
    }

    #[test]
    fn garbage_preamble_closes_the_connection_without_client_eof() {
        let cfg = ServeConfig {
            max_accepts: Some(1),
            wire: WireMode::Binary,
            ..ServeConfig::default()
        };
        let (addr, handle) = spawn_server(cfg);
        let mut client = TcpStream::connect(addr).expect("connect");
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        // A full garbage preamble on a forced-binary listener kills the
        // fresh session; the server must answer its seq-0 error frame
        // and close on its own — the client never half-closes.
        client.write_all(b"NOTBINARY").expect("send");
        let mut got = Vec::new();
        client.read_to_end(&mut got).expect("server closes first");
        assert!(!got.is_empty(), "typed error frame expected");
        let summary = handle.join().expect("join");
        assert_eq!((summary.accepted, summary.closed), (1, 1));
    }

    #[test]
    fn unterminated_line_over_the_cap_is_refused_typed() {
        use crate::wire::MAX_LINE_LEN;
        let cfg = ServeConfig {
            max_accepts: Some(1),
            wire: WireMode::Jsonl,
            ..ServeConfig::default()
        };
        let (addr, handle) = spawn_server(cfg);
        let mut client = TcpStream::connect(addr).expect("connect");
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        // One newline-free byte over the cap: the line framing must
        // refuse it with a typed line-1 error and close, rather than
        // buffer without bound.
        let chunk = vec![b'x'; 64 * 1024];
        let mut remaining = MAX_LINE_LEN + 1;
        while remaining > 0 {
            let n = remaining.min(chunk.len());
            client.write_all(&chunk[..n]).expect("send");
            remaining -= n;
        }
        let mut got = String::new();
        client
            .read_to_string(&mut got)
            .expect("server closes first");
        assert!(
            got.contains("exceeds cap") && got.contains("\"line\":1"),
            "typed overlong-line error expected, got {got:?}"
        );
        let summary = handle.join().expect("join");
        assert_eq!((summary.accepted, summary.closed), (1, 1));
    }

    #[test]
    fn capacity_reject_is_typed_and_the_fleet_survives() {
        let cfg = ServeConfig {
            max_accepts: Some(2),
            max_conns: 1,
            ..ServeConfig::default()
        };
        let (addr, handle) = spawn_server(cfg);
        let mut first = TcpStream::connect(addr).expect("connect");
        first.write_all(b"# hold the slot\n").expect("send");
        // Wait until the first connection holds the only slot.
        std::thread::sleep(Duration::from_millis(100));
        let mut second = TcpStream::connect(addr).expect("connect");
        let mut got = String::new();
        second.read_to_string(&mut got).expect("read");
        assert!(
            got.contains("rejected") && got.contains("cap of 1"),
            "typed capacity reject expected, got {got:?}"
        );
        first
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut rest = String::new();
        first.read_to_string(&mut rest).expect("read");
        let summary = handle.join().expect("join");
        assert_eq!((summary.closed, summary.shed), (1, 1));
    }
}
