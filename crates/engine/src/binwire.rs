//! Binary wire framing: length-prefixed, CRC-guarded frames negotiated
//! per connection alongside the JSONL protocol.
//!
//! A binary connection opens with a 6-byte preamble — the ASCII magic
//! `RSDC`, the protocol marker byte `0xB1`, and a version byte — and
//! then carries a stream of frames:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//!                              └── [tag: u8] [body: len-1 bytes]
//! ```
//!
//! `crc` is the CRC-32 (IEEE polynomial, the same one the WAL uses) of
//! the payload. `len` counts the payload only and is capped at
//! [`MAX_FRAME_LEN`]; a larger prefix is rejected before any buffering
//! happens, so a corrupt length cannot balloon memory. The response
//! stream echoes the preamble once, then frames its replies the same
//! way.
//!
//! Framing is deliberately dumb: every request tag maps 1:1 onto an
//! operation of the JSONL protocol (see `WIRE.md`), errors carry the
//! same 1-based sequence numbers a JSONL session would report, and the
//! [`crate::wire::Session`] behind both framings is shared — the
//! differential test suite pins byte-identical behaviour.

use std::fmt;

/// The 4 ASCII magic bytes opening a binary connection: `RSDC`.
pub const MAGIC: [u8; 4] = *b"RSDC";

/// Protocol marker byte following the magic (distinguishes the wire
/// preamble from a file that merely starts with `RSDC`).
pub const PROTO: u8 = 0xB1;

/// Current protocol version.
pub const VERSION: u8 = 1;

/// The full 6-byte connection preamble for [`VERSION`].
pub const PREAMBLE: [u8; 6] = [MAGIC[0], MAGIC[1], MAGIC[2], MAGIC[3], PROTO, VERSION];

/// Hard cap on a frame's payload length (16 MiB). A length prefix above
/// this is a protocol error, not an allocation request.
pub const MAX_FRAME_LEN: u32 = 1 << 24;

/// Bytes of frame header: length prefix + CRC.
pub const FRAME_HEADER: usize = 8;

// Request tags. Hot-path steps get dedicated compact encodings; the
// long tail of control operations travels as a framed JSONL record
// (tag 0x0F) and is handled by the same parser as the text protocol.
/// `{id, load}` — heterogeneous step.
pub const TAG_STEP_LOAD: u8 = 0x01;
/// `{id, cost[, load]}` — scalar step, cost as canonical JSON.
pub const TAG_STEP_COST: u8 = 0x02;
/// `{id}` — end-of-stream flush.
pub const TAG_FINISH: u8 = 0x03;
/// `{id}` — full tenant snapshot.
pub const TAG_SNAPSHOT: u8 = 0x04;
/// `{[id]}` — one report or all.
pub const TAG_REPORT: u8 = 0x05;
/// shard statistics.
pub const TAG_STATS: u8 = 0x06;
/// durable checkpoint.
pub const TAG_CHECKPOINT: u8 = 0x07;
/// recovery report of the serving engine.
pub const TAG_RECOVER: u8 = 0x08;
/// WAL write-volume counters.
pub const TAG_WAL_STATS: u8 = 0x09;
/// metrics registry dump.
pub const TAG_METRICS: u8 = 0x0A;
/// `{[after]}` — control-plane trace.
pub const TAG_TRACE: u8 = 0x0B;
/// `{shards[, vnodes], incremental}` — topology change.
pub const TAG_REBALANCE: u8 = 0x0C;
/// Body is one JSONL request line (admit/restore/autoscale/energy/...).
pub const TAG_JSON: u8 = 0x0F;

// Response tags.
/// Body is one rendered JSONL response line (sans newline).
pub const TAG_RESP_LINE: u8 = 0x80;
/// `{seq: u32, id, states: n×u32}` — compact scalar step response.
pub const TAG_RESP_STEPPED: u8 = 0x81;
/// `{seq: u32, [id], message}` — error carrying the request sequence.
pub const TAG_RESP_ERROR: u8 = 0x82;

/// CRC-32 (IEEE 802.3 polynomial, bit-reflected: `0xedb8_8320`) — the
/// same checksum the store's WAL uses, computed here without a table so
/// the wire layer stays dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// A framing-level protocol violation. Violations of frame structure
/// kill the connection (there is no way to resynchronize a byte stream
/// with a corrupt length); a bad CRC on a well-delimited frame is
/// reported per-frame and the stream continues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The connection preamble was not `RSDC` + marker.
    BadMagic([u8; 6]),
    /// The preamble named a protocol version this build does not speak.
    BadVersion(u8),
    /// A length prefix exceeded [`MAX_FRAME_LEN`].
    Oversize(u32),
    /// The payload did not match its CRC. Recoverable: the frame is
    /// dropped, the stream continues.
    BadCrc {
        /// CRC the frame header declared.
        expect: u32,
        /// CRC computed over the received payload.
        got: u32,
    },
    /// A zero-length payload (every frame carries at least a tag byte).
    Empty,
    /// The stream ended mid-preamble or mid-frame.
    Truncated {
        /// Bytes the pending frame needs to complete.
        need: usize,
        /// Bytes actually buffered.
        have: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(bytes) => {
                write!(f, "bad preamble {bytes:02x?}: expected RSDC magic")
            }
            FrameError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks {VERSION})"
                )
            }
            FrameError::Oversize(len) => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME_LEN}")
            }
            FrameError::BadCrc { expect, got } => {
                write!(
                    f,
                    "frame crc mismatch: header {expect:#010x}, payload {got:#010x}"
                )
            }
            FrameError::Empty => write!(f, "empty frame payload"),
            FrameError::Truncated { need, have } => {
                write!(f, "truncated stream: need {need} bytes, have {have}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Append one frame (`header + payload`) to `out`.
pub fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(!payload.is_empty() && payload.len() as u32 <= MAX_FRAME_LEN);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Incremental frame reader over an internal byte buffer. Feed bytes in
/// with [`FrameDecoder::extend`], pull frames out with
/// [`FrameDecoder::next_frame`]; partial frames stay buffered across
/// feeds, and consumed bytes are compacted away lazily.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed (compacted when it crosses half
    /// the buffer, so steady-state reads don't shift memory per frame).
    pos: usize,
}

/// One decoded frame, borrowed from the decoder's buffer.
#[derive(Debug, PartialEq, Eq)]
pub struct Frame<'a> {
    /// Operation tag (first payload byte).
    pub tag: u8,
    /// Payload after the tag.
    pub body: &'a [u8],
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffer more bytes from the connection.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.pos > 0 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decode the next complete frame, if one is buffered.
    ///
    /// - `Ok(Some(frame))`: a whole, CRC-valid frame (consumed).
    /// - `Ok(None)`: no complete frame buffered yet.
    /// - `Err(Oversize | Empty)`: fatal — the stream cannot be resynced.
    /// - `Err(BadCrc)`: the frame was well-delimited but corrupt; it has
    ///   been consumed and the next call continues with the next frame.
    pub fn next_frame(&mut self) -> Result<Option<Frame<'_>>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < FRAME_HEADER {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Oversize(len));
        }
        if len == 0 {
            return Err(FrameError::Empty);
        }
        let expect = u32::from_le_bytes([avail[4], avail[5], avail[6], avail[7]]);
        let total = FRAME_HEADER + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        self.pos += total;
        let payload = &self.buf[self.pos - len as usize..self.pos];
        let got = crc32(payload);
        if got != expect {
            return Err(FrameError::BadCrc { expect, got });
        }
        Ok(Some(Frame {
            tag: payload[0],
            body: &payload[1..],
        }))
    }

    /// End-of-stream check: a non-empty remainder means the peer died
    /// mid-frame.
    pub fn finish(&self) -> Result<(), FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.is_empty() {
            return Ok(());
        }
        let need = if avail.len() < FRAME_HEADER {
            FRAME_HEADER
        } else {
            let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]);
            FRAME_HEADER + (len.min(MAX_FRAME_LEN)) as usize
        };
        Err(FrameError::Truncated {
            need,
            have: avail.len(),
        })
    }
}

/// Check a 6-byte connection preamble.
pub fn check_preamble(bytes: &[u8; 6]) -> Result<(), FrameError> {
    if bytes[..4] != MAGIC || bytes[4] != PROTO {
        return Err(FrameError::BadMagic(*bytes));
    }
    if bytes[5] != VERSION {
        return Err(FrameError::BadVersion(bytes[5]));
    }
    Ok(())
}

// ---- little-endian body readers (shared by the session layer) ----

/// Cursor over a frame body with typed little-endian readers. Every
/// reader returns `None` on underrun; the session layer turns that into
/// a typed, sequence-numbered error, never a panic.
pub struct BodyReader<'a> {
    body: &'a [u8],
}

impl<'a> BodyReader<'a> {
    /// Wrap a frame body.
    pub fn new(body: &'a [u8]) -> Self {
        Self { body }
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// The unread remainder (used for trailing JSON segments).
    pub fn rest(self) -> &'a [u8] {
        self.body
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Option<u8> {
        let (&b, rest) = self.body.split_first()?;
        self.body = rest;
        Some(b)
    }

    /// Read a `u16` (LE).
    pub fn u16(&mut self) -> Option<u16> {
        let bytes = self.take(2)?;
        Some(u16::from_le_bytes([bytes[0], bytes[1]]))
    }

    /// Read a `u32` (LE).
    pub fn u32(&mut self) -> Option<u32> {
        let bytes = self.take(4)?;
        Some(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Read a `u64` (LE).
    pub fn u64(&mut self) -> Option<u64> {
        let bytes = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Some(u64::from_le_bytes(raw))
    }

    /// Read an `f64` (LE bit pattern).
    pub fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// Read a `u16`-length-prefixed UTF-8 string.
    pub fn str16(&mut self) -> Option<&'a str> {
        let len = self.u16()? as usize;
        std::str::from_utf8(self.take(len)?).ok()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.body.len() < n {
            return None;
        }
        let (head, rest) = self.body.split_at(n);
        self.body = rest;
        Some(head)
    }
}

/// Body writer mirroring [`BodyReader`], appending to a reusable buffer.
pub struct BodyWriter<'a> {
    out: &'a mut Vec<u8>,
}

impl<'a> BodyWriter<'a> {
    /// Start a payload in `out` (cleared first) with its tag byte.
    pub fn start(out: &'a mut Vec<u8>, tag: u8) -> Self {
        out.clear();
        out.push(tag);
        Self { out }
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.out.push(v);
        self
    }

    /// Append a `u16` (LE).
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.out.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u32` (LE).
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.out.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u64` (LE).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.out.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `f64` (LE bit pattern).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Append a `u16`-length-prefixed string (truncating ids longer than
    /// `u16::MAX` is never correct, so this asserts instead).
    pub fn str16(&mut self, s: &str) -> &mut Self {
        assert!(
            s.len() <= u16::MAX as usize,
            "id longer than u16 length prefix"
        );
        self.u16(s.len() as u16);
        self.out.extend_from_slice(s.as_bytes());
        self
    }

    /// Append raw bytes (trailing JSON segments).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.out.extend_from_slice(bytes);
        self
    }
}

// ---- binary server session ----

use crate::wire::{
    error_reply_line, parse_record, stepped_states_line, PendingStep, Record, Reply, Session,
    WireError,
};
use rsdc_core::Cost;
use serde::Deserialize;

/// Connection lifecycle of a [`BinSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Waiting for the 6-byte preamble.
    AwaitPreamble,
    /// Preamble accepted and echoed; streaming frames.
    Open,
    /// The connection ended: end-of-stream, or a fatal framing error.
    Dead,
}

/// A binary-framed server connection over the same [`Session`] the JSONL
/// framing drives: feed connection bytes in with [`BinSession::feed`],
/// response frames come back out, and [`BinSession::finish`] flushes the
/// final step batch at end-of-stream.
///
/// Sequencing mirrors the text protocol exactly: the N-th frame of the
/// connection is "line N", and every error reply carries that number.
/// Step frames batch across `feed` boundaries just like consecutive JSONL
/// step lines batch within [`Session::handle_lines`] — the batch flushes
/// on a control frame, at the batch cap, or at `finish` — so a chunked
/// binary connection drives the engine through the same batch boundaries
/// as the equivalent one-shot JSONL input (the differential suite pins
/// this).
pub struct BinSession {
    session: Session,
    decoder: FrameDecoder,
    state: ConnState,
    /// Frames consumed so far; the next frame is number `seq + 1`.
    seq: usize,
    pending: Vec<PendingStep>,
    replies: Vec<Reply>,
    /// Reusable response-payload scratch.
    payload: Vec<u8>,
    preamble: [u8; 6],
    preamble_len: usize,
    frames_in: u64,
    frames_out: u64,
    bytes_in: u64,
    bytes_out: u64,
    /// Counter values already flushed into the engine's metrics registry
    /// (same order as [`BinSession::io_counters`]).
    reported: [u64; 4],
}

impl BinSession {
    /// Serve binary framing over `session`.
    pub fn new(session: Session) -> BinSession {
        BinSession {
            session,
            decoder: FrameDecoder::new(),
            state: ConnState::AwaitPreamble,
            seq: 0,
            pending: Vec::new(),
            replies: Vec::new(),
            payload: Vec::new(),
            preamble: [0; 6],
            preamble_len: 0,
            frames_in: 0,
            frames_out: 0,
            bytes_in: 0,
            bytes_out: 0,
            reported: [0; 4],
        }
    }

    /// The underlying session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Unwrap the underlying session (the differential tests inspect the
    /// engine behind a finished connection).
    pub fn into_session(self) -> Session {
        self.session
    }

    /// True once the connection hit a fatal framing error or finished.
    pub fn is_dead(&self) -> bool {
        self.state == ConnState::Dead
    }

    /// The 1-based sequence number the next request frame will get —
    /// errors the serving layer injects (e.g. a slow-consumer shed) are
    /// attributed to this sequence.
    pub fn next_seq(&self) -> usize {
        self.seq + 1
    }

    /// Abandon the connection with a typed error frame at the next
    /// sequence number: the pending step batch flushes first (its replies
    /// are owed — the overshoot is bounded by one batch), then the error
    /// frame is emitted and the connection dies. Used by the serving
    /// layer to shed slow consumers.
    pub fn shed(&mut self, message: &str, out: &mut Vec<u8>) {
        if self.state == ConnState::Dead {
            return;
        }
        let start = out.len();
        self.session
            .flush_steps(&mut self.pending, &mut self.replies);
        self.replies.push(Reply::Error {
            seq: self.next_seq(),
            id: None,
            message: message.to_string(),
        });
        self.state = ConnState::Dead;
        self.drain_replies(out);
        self.bytes_out += (out.len() - start) as u64;
        self.fold_obs();
    }

    /// Per-connection I/O counters: `(frames_in, frames_out, bytes_in,
    /// bytes_out)`.
    pub fn io_counters(&self) -> (u64, u64, u64, u64) {
        (
            self.frames_in,
            self.frames_out,
            self.bytes_in,
            self.bytes_out,
        )
    }

    /// Ingest connection bytes, appending any response bytes to `out`.
    ///
    /// The response stream opens with the echoed [`PREAMBLE`] once the
    /// request preamble is accepted. A bad preamble kills the connection
    /// with an error frame at sequence 0; a fatal framing violation
    /// ([`FrameError::Oversize`] / [`FrameError::Empty`]) kills it with an
    /// error frame at the offending sequence; a [`FrameError::BadCrc`] on
    /// a well-delimited frame is reported at its sequence and the stream
    /// continues. Bytes fed after death are ignored.
    pub fn feed(&mut self, bytes: &[u8], out: &mut Vec<u8>) {
        if self.state == ConnState::Dead {
            return;
        }
        self.bytes_in += bytes.len() as u64;
        let start = out.len();
        let mut bytes = bytes;
        if self.state == ConnState::AwaitPreamble {
            let take = (6 - self.preamble_len).min(bytes.len());
            self.preamble[self.preamble_len..self.preamble_len + take]
                .copy_from_slice(&bytes[..take]);
            self.preamble_len += take;
            bytes = &bytes[take..];
            if self.preamble_len < 6 {
                return;
            }
            match check_preamble(&self.preamble) {
                Ok(()) => {
                    self.state = ConnState::Open;
                    out.extend_from_slice(&PREAMBLE);
                }
                Err(e) => {
                    self.state = ConnState::Dead;
                    self.replies.push(Reply::Error {
                        seq: 0,
                        id: None,
                        message: e.to_string(),
                    });
                }
            }
        }
        if self.state == ConnState::Open {
            self.decoder.extend(bytes);
            self.pump();
        }
        self.drain_replies(out);
        self.bytes_out += (out.len() - start) as u64;
        self.fold_obs();
    }

    /// End-of-stream: flush the pending step batch, report a mid-frame
    /// (or mid-preamble) truncation as an error at the next sequence
    /// number, and append the final response frames to `out`.
    pub fn finish(&mut self, out: &mut Vec<u8>) {
        let start = out.len();
        match self.state {
            ConnState::Dead => {}
            ConnState::AwaitPreamble => {
                if self.preamble_len > 0 {
                    let e = FrameError::Truncated {
                        need: 6,
                        have: self.preamble_len,
                    };
                    self.replies.push(Reply::Error {
                        seq: 0,
                        id: None,
                        message: e.to_string(),
                    });
                }
            }
            ConnState::Open => {
                self.session
                    .flush_steps(&mut self.pending, &mut self.replies);
                if let Err(e) = self.decoder.finish() {
                    self.replies.push(Reply::Error {
                        seq: self.seq + 1,
                        id: None,
                        message: e.to_string(),
                    });
                }
            }
        }
        self.state = ConnState::Dead;
        self.drain_replies(out);
        self.bytes_out += (out.len() - start) as u64;
        self.fold_obs();
    }

    fn pump(&mut self) {
        loop {
            match self.decoder.next_frame() {
                Ok(None) => break,
                Ok(Some(Frame { tag, body })) => {
                    self.seq += 1;
                    self.frames_in += 1;
                    handle_frame(
                        &mut self.session,
                        &mut self.pending,
                        &mut self.replies,
                        self.seq,
                        tag,
                        body,
                    );
                }
                Err(e @ FrameError::BadCrc { .. }) => {
                    // The corrupt frame occupied a sequence slot; like a
                    // JSONL parse error, it flushes the batch and the
                    // stream continues.
                    self.seq += 1;
                    self.frames_in += 1;
                    self.session
                        .flush_steps(&mut self.pending, &mut self.replies);
                    self.replies.push(Reply::Error {
                        seq: self.seq,
                        id: None,
                        message: e.to_string(),
                    });
                }
                Err(e) => {
                    // Oversize/empty length prefix: the byte stream cannot
                    // be resynchronized — report and die.
                    self.seq += 1;
                    self.session
                        .flush_steps(&mut self.pending, &mut self.replies);
                    self.replies.push(Reply::Error {
                        seq: self.seq,
                        id: None,
                        message: e.to_string(),
                    });
                    self.state = ConnState::Dead;
                    break;
                }
            }
        }
    }

    fn drain_replies(&mut self, out: &mut Vec<u8>) {
        for reply in self.replies.drain(..) {
            encode_reply(reply, &mut self.payload, out);
            self.frames_out += 1;
        }
    }

    /// Fold the per-connection counters into the engine's registry-backed
    /// wire metrics — the delta since the last fold, applied after every
    /// `feed` and at `finish`, so a long-lived server connection reports
    /// its traffic while still open instead of a lifetime of zeros.
    /// (PR 9 deferred this to connection close; that made an external
    /// registry scrape of a server connection read zero forever.) A
    /// `metrics` dump requested *on* this connection reflects traffic up
    /// to the previous feed boundary — chunk-dependent, which is why the
    /// JSONL↔binary differential excludes the `metrics` op by design.
    fn fold_obs(&mut self) {
        let now = [
            self.frames_in,
            self.frames_out,
            self.bytes_in,
            self.bytes_out,
        ];
        let obs = self.session.engine().obs();
        obs.wire_frames_in.add(now[0] - self.reported[0]);
        obs.wire_frames_out.add(now[1] - self.reported[1]);
        obs.wire_bytes_in.add(now[2] - self.reported[2]);
        obs.wire_bytes_out.add(now[3] - self.reported[3]);
        self.reported = now;
    }
}

/// A request decoded from one frame.
enum Req<'a> {
    /// A hot-path step, id still borrowed from the frame body.
    Step {
        id: &'a str,
        cost: Option<Cost>,
        load: Option<f64>,
    },
    /// A parsed control (or JSON-envelope) record.
    Record(Record),
    /// A blank/comment JSON envelope: consumes a sequence number, does
    /// nothing — exactly like a blank JSONL line.
    Skip,
}

fn underrun(tag: u8) -> String {
    format!("truncated body for frame tag {tag:#04x}")
}

/// The step-load validation [`parse_record`] applies, with its exact
/// message — binary and JSONL reject a bad load identically.
fn check_load(l: f64) -> Result<(), String> {
    if l.is_finite() && l >= 0.0 {
        Ok(())
    } else {
        Err(WireError(format!("field \"load\" must be finite and >= 0, got {l}")).to_string())
    }
}

fn decode_request(tag: u8, body: &[u8]) -> Result<Req<'_>, String> {
    let mut r = BodyReader::new(body);
    match tag {
        TAG_STEP_LOAD => {
            let id = r.str16().ok_or_else(|| underrun(tag))?;
            let load = r.f64().ok_or_else(|| underrun(tag))?;
            check_load(load)?;
            Ok(Req::Step {
                id,
                cost: None,
                load: Some(load),
            })
        }
        TAG_STEP_COST => {
            let id = r.str16().ok_or_else(|| underrun(tag))?;
            let has_load = r.u8().ok_or_else(|| underrun(tag))?;
            let load = if has_load != 0 {
                let l = r.f64().ok_or_else(|| underrun(tag))?;
                check_load(l)?;
                Some(l)
            } else {
                None
            };
            let text = std::str::from_utf8(r.rest())
                .map_err(|_| format!("frame tag {tag:#04x}: cost is not valid UTF-8"))?;
            let v: serde::Value = serde_json::from_str(text)
                .map_err(|e| WireError(format!("bad cost: {e}")).to_string())?;
            let cost = Cost::from_value(&v)
                .map_err(|e| WireError(format!("bad cost: {e}")).to_string())?;
            Ok(Req::Step {
                id,
                cost: Some(cost),
                load,
            })
        }
        TAG_FINISH => {
            let id = r.str16().ok_or_else(|| underrun(tag))?;
            Ok(Req::Record(Record::Finish { id: id.to_string() }))
        }
        TAG_SNAPSHOT => {
            let id = r.str16().ok_or_else(|| underrun(tag))?;
            Ok(Req::Record(Record::Snapshot { id: id.to_string() }))
        }
        TAG_REPORT => {
            if body.is_empty() {
                Ok(Req::Record(Record::Report(None)))
            } else {
                let id = r.str16().ok_or_else(|| underrun(tag))?;
                Ok(Req::Record(Record::Report(Some(id.to_string()))))
            }
        }
        TAG_STATS => Ok(Req::Record(Record::Stats)),
        TAG_CHECKPOINT => Ok(Req::Record(Record::Checkpoint)),
        TAG_RECOVER => Ok(Req::Record(Record::Recover)),
        TAG_WAL_STATS => Ok(Req::Record(Record::WalStats)),
        TAG_METRICS => Ok(Req::Record(Record::Metrics)),
        TAG_TRACE => {
            if body.is_empty() {
                Ok(Req::Record(Record::Trace { last: None }))
            } else {
                let last = r.u32().ok_or_else(|| underrun(tag))?;
                Ok(Req::Record(Record::Trace {
                    last: Some(last as usize),
                }))
            }
        }
        TAG_REBALANCE => {
            let shards = r.u32().ok_or_else(|| underrun(tag))?;
            if shards == 0 {
                return Err(
                    WireError("field \"shards\" must be an integer >= 1".into()).to_string()
                );
            }
            let has_vnodes = r.u8().ok_or_else(|| underrun(tag))?;
            let vnodes = if has_vnodes != 0 {
                let v = r.u32().ok_or_else(|| underrun(tag))?;
                if v == 0 {
                    return Err(
                        WireError("field \"vnodes\" must be an integer >= 1".into()).to_string()
                    );
                }
                Some(v as usize)
            } else {
                None
            };
            let incremental = r.u8().ok_or_else(|| underrun(tag))? != 0;
            Ok(Req::Record(Record::Rebalance {
                shards: shards as usize,
                vnodes,
                incremental,
            }))
        }
        TAG_JSON => {
            let text = std::str::from_utf8(body)
                .map_err(|_| "frame body is not valid UTF-8".to_string())?;
            let trimmed = text.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                return Ok(Req::Skip);
            }
            let record = parse_record(trimmed).map_err(|e| e.to_string())?;
            Ok(Req::Record(record))
        }
        _ => Err(format!("unknown frame tag {tag:#04x}")),
    }
}

fn handle_frame(
    session: &mut Session,
    pending: &mut Vec<PendingStep>,
    replies: &mut Vec<Reply>,
    seq: usize,
    tag: u8,
    body: &[u8],
) {
    match decode_request(tag, body) {
        Err(message) => {
            // Mirror a JSONL parse error: flush the open batch first, then
            // report at this frame's sequence.
            session.flush_steps(pending, replies);
            replies.push(Reply::Error {
                seq,
                id: None,
                message,
            });
        }
        Ok(Req::Skip) => {}
        Ok(Req::Step { id, cost, load }) => {
            session.queue_step(seq, id, cost, load, pending, replies);
        }
        Ok(Req::Record(Record::Step { id, cost, load })) => {
            session.queue_step(seq, &id, cost, load, pending, replies);
        }
        Ok(Req::Record(record)) => {
            session.flush_steps(pending, replies);
            session.handle_control(record, seq, replies);
        }
    }
}

/// Frame one [`Reply`] into `out` (via the reusable `payload` scratch).
/// Scalar config-free step outcomes and errors get compact encodings;
/// everything else ships as its rendered JSONL line.
fn encode_reply(reply: Reply, payload: &mut Vec<u8>, out: &mut Vec<u8>) {
    match reply {
        Reply::Stepped { seq, outcome }
            if outcome.configs.is_none()
                && outcome.id.len() <= u16::MAX as usize
                && outcome.states.len() <= u16::MAX as usize =>
        {
            let mut w = BodyWriter::start(payload, TAG_RESP_STEPPED);
            w.u64(seq as u64).str16(&outcome.id);
            w.u16(outcome.states.len() as u16);
            for &s in outcome.states.iter() {
                w.u32(s);
            }
            put_frame(out, payload);
        }
        Reply::Error { seq, id, message }
            if id.as_ref().is_none_or(|i| i.len() <= u16::MAX as usize) =>
        {
            let mut w = BodyWriter::start(payload, TAG_RESP_ERROR);
            w.u64(seq as u64);
            match &id {
                Some(id) => {
                    w.u8(1).str16(id);
                }
                None => {
                    w.u8(0);
                }
            }
            w.raw(message.as_bytes());
            put_frame(out, payload);
        }
        other => {
            let line = other.into_line();
            payload.clear();
            payload.push(TAG_RESP_LINE);
            payload.extend_from_slice(line.as_bytes());
            put_frame(out, payload);
        }
    }
}

/// Encode one standalone error frame with no session behind it — the
/// serving layer answers pre-session refusals (e.g. a connection-cap
/// reject on a forced-binary listener) with this.
pub(crate) fn error_frame(seq: usize, message: &str, out: &mut Vec<u8>) {
    let mut payload = Vec::new();
    encode_reply(
        Reply::Error {
            seq,
            id: None,
            message: message.to_string(),
        },
        &mut payload,
        out,
    );
}

// ---- client-side codecs ----

/// Transcode one JSONL request line into its binary frame, appended to
/// `out` (via the reusable `payload` scratch). Hot-path and simple
/// control ops get their compact tags; everything else — including blank
/// and `#` comment lines, which must keep consuming sequence numbers —
/// travels as a [`TAG_JSON`] envelope and hits the same parser a JSONL
/// session uses, so both framings reject a bad line with the same
/// message at the same sequence.
pub fn encode_request_line(line: &str, payload: &mut Vec<u8>, out: &mut Vec<u8>) {
    let trimmed = line.trim();
    if compact_request(trimmed, payload) {
        put_frame(out, payload);
        return;
    }
    payload.clear();
    payload.push(TAG_JSON);
    payload.extend_from_slice(trimmed.as_bytes());
    put_frame(out, payload);
}

/// Try the compact encoding for `line`; true when `payload` holds it.
/// Any shape the compact tags can't represent faithfully (per
/// [`parse_record`]'s field semantics) falls back to the JSON envelope.
fn compact_request(line: &str, payload: &mut Vec<u8>) -> bool {
    if line.is_empty() || line.starts_with('#') {
        return false;
    }
    let Ok(v) = serde_json::from_str::<serde::Value>(line) else {
        return false;
    };
    let Some(op) = v.get("op").and_then(|x| x.as_str()) else {
        return false;
    };
    let str16able = |key: &str| {
        v.get(key)
            .and_then(|x| x.as_str())
            .filter(|s| s.len() <= u16::MAX as usize)
    };
    match op {
        "step" => {
            let Some(id) = str16able("id") else {
                return false;
            };
            let cost = v.get("cost").filter(|c| !c.is_null());
            let load = v.get("load").and_then(|x| x.as_f64());
            match (cost, load) {
                (None, Some(load)) => {
                    BodyWriter::start(payload, TAG_STEP_LOAD)
                        .str16(id)
                        .f64(load);
                    true
                }
                (Some(cost), load) => {
                    let cost = serde_json::to_string(cost).expect("serializable");
                    let mut w = BodyWriter::start(payload, TAG_STEP_COST);
                    w.str16(id);
                    match load {
                        Some(l) => {
                            w.u8(1).f64(l);
                        }
                        None => {
                            w.u8(0);
                        }
                    }
                    w.raw(cost.as_bytes());
                    true
                }
                (None, None) => false,
            }
        }
        "finish" | "snapshot" => {
            let Some(id) = str16able("id") else {
                return false;
            };
            let tag = if op == "finish" {
                TAG_FINISH
            } else {
                TAG_SNAPSHOT
            };
            BodyWriter::start(payload, tag).str16(id);
            true
        }
        "report" => {
            // A non-string id is ignored by the parser, so it compacts to
            // the report-all form.
            match str16able("id") {
                Some(id) => {
                    BodyWriter::start(payload, TAG_REPORT).str16(id);
                }
                None => {
                    BodyWriter::start(payload, TAG_REPORT);
                }
            }
            true
        }
        "stats" | "checkpoint" | "recover" | "wal_stats" | "metrics" => {
            let tag = match op {
                "stats" => TAG_STATS,
                "checkpoint" => TAG_CHECKPOINT,
                "recover" => TAG_RECOVER,
                "wal_stats" => TAG_WAL_STATS,
                _ => TAG_METRICS,
            };
            BodyWriter::start(payload, tag);
            true
        }
        "trace" => match v.get("last") {
            None | Some(serde::Value::Null) => {
                BodyWriter::start(payload, TAG_TRACE);
                true
            }
            Some(x) => match x.as_u64().and_then(|n| u32::try_from(n).ok()) {
                Some(last) => {
                    BodyWriter::start(payload, TAG_TRACE).u32(last);
                    true
                }
                None => false,
            },
        },
        "rebalance" => {
            let count = |key: &str| match v.get(key) {
                None | Some(serde::Value::Null) => Some(None),
                Some(x) => x
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .filter(|&n| n >= 1)
                    .map(Some),
            };
            let (Some(Some(shards)), Some(vnodes)) = (count("shards"), count("vnodes")) else {
                return false;
            };
            let incremental = match v.get("mode").filter(|m| !m.is_null()) {
                None => false,
                Some(m) => match m.as_str() {
                    Some("incremental") => true,
                    Some("full") => false,
                    _ => return false,
                },
            };
            let mut w = BodyWriter::start(payload, TAG_REBALANCE);
            w.u32(shards);
            match vnodes {
                Some(vn) => {
                    w.u8(1).u32(vn);
                }
                None => {
                    w.u8(0);
                }
            }
            w.u8(incremental as u8);
            true
        }
        _ => false,
    }
}

/// Decode a complete binary response stream (preamble + frames) back into
/// the JSONL response lines it represents. Compact `STEPPED`/`ERROR`
/// frames re-render through the same line builders the JSONL session
/// uses, so the result is byte-identical to what a JSONL session would
/// have produced — the differential suite asserts exactly that.
pub fn decode_response(bytes: &[u8]) -> Result<Vec<String>, String> {
    if bytes.is_empty() {
        return Ok(Vec::new());
    }
    if bytes.len() < PREAMBLE.len() {
        return Err(FrameError::Truncated {
            need: PREAMBLE.len(),
            have: bytes.len(),
        }
        .to_string());
    }
    let mut pre = [0u8; 6];
    pre.copy_from_slice(&bytes[..6]);
    check_preamble(&pre).map_err(|e| e.to_string())?;
    let mut dec = FrameDecoder::new();
    dec.extend(&bytes[6..]);
    let mut lines = Vec::new();
    loop {
        match dec.next_frame() {
            Ok(None) => break,
            Ok(Some(Frame { tag, body })) => lines.push(decode_response_frame(tag, body)?),
            Err(e) => return Err(e.to_string()),
        }
    }
    dec.finish().map_err(|e| e.to_string())?;
    Ok(lines)
}

fn decode_response_frame(tag: u8, body: &[u8]) -> Result<String, String> {
    let mut r = BodyReader::new(body);
    match tag {
        TAG_RESP_LINE => std::str::from_utf8(body)
            .map(|s| s.to_string())
            .map_err(|_| "response line is not valid UTF-8".to_string()),
        TAG_RESP_STEPPED => {
            let _seq = r.u64().ok_or_else(|| underrun(tag))?;
            let id = r.str16().ok_or_else(|| underrun(tag))?;
            let n = r.u16().ok_or_else(|| underrun(tag))?;
            let mut states = Vec::with_capacity(n as usize);
            for _ in 0..n {
                states.push(r.u32().ok_or_else(|| underrun(tag))?);
            }
            Ok(stepped_states_line(id, &states))
        }
        TAG_RESP_ERROR => {
            let seq = r.u64().ok_or_else(|| underrun(tag))?;
            let has_id = r.u8().ok_or_else(|| underrun(tag))?;
            let id = if has_id != 0 {
                Some(r.str16().ok_or_else(|| underrun(tag))?)
            } else {
                None
            };
            let message = std::str::from_utf8(r.rest())
                .map_err(|_| "error message is not valid UTF-8".to_string())?;
            Ok(error_reply_line(seq as usize, id, message))
        }
        _ => Err(format!("unknown response tag {tag:#04x}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_across_split_feeds() {
        let mut wire = Vec::new();
        put_frame(&mut wire, &[TAG_FINISH, 1, 2, 3]);
        put_frame(&mut wire, &[TAG_STATS]);
        let mut dec = FrameDecoder::new();
        // Feed byte-by-byte: partial frames must stay buffered.
        let mut seen = Vec::new();
        for &b in &wire {
            dec.extend(&[b]);
            while let Some(frame) = dec.next_frame().unwrap() {
                seen.push((frame.tag, frame.body.to_vec()));
            }
        }
        assert_eq!(seen, vec![(TAG_FINISH, vec![1, 2, 3]), (TAG_STATS, vec![])]);
        dec.finish().unwrap();
    }

    #[test]
    fn corrupt_crc_is_reported_and_skipped() {
        let mut wire = Vec::new();
        put_frame(&mut wire, &[TAG_FINISH, 9]);
        let good_len = wire.len();
        put_frame(&mut wire, &[TAG_STATS]);
        wire[good_len + FRAME_HEADER] ^= 0xFF; // flip a payload byte of frame 2
        put_frame(&mut wire, &[TAG_METRICS]);
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        assert_eq!(dec.next_frame().unwrap().unwrap().tag, TAG_FINISH);
        assert!(matches!(dec.next_frame(), Err(FrameError::BadCrc { .. })));
        // The corrupt frame is consumed; the stream continues.
        assert_eq!(dec.next_frame().unwrap().unwrap().tag, TAG_METRICS);
        dec.finish().unwrap();
    }

    #[test]
    fn oversize_and_truncation_are_typed_errors() {
        let mut dec = FrameDecoder::new();
        dec.extend(&(MAX_FRAME_LEN + 1).to_le_bytes());
        dec.extend(&[0u8; 4]);
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::Oversize(MAX_FRAME_LEN + 1))
        );

        let mut wire = Vec::new();
        put_frame(&mut wire, &[TAG_FINISH, 1, 2, 3]);
        let mut dec = FrameDecoder::new();
        dec.extend(&wire[..wire.len() - 2]);
        assert_eq!(dec.next_frame(), Ok(None));
        assert_eq!(
            dec.finish(),
            Err(FrameError::Truncated {
                need: FRAME_HEADER + 4,
                have: FRAME_HEADER + 2,
            })
        );
    }

    #[test]
    fn preamble_checks_magic_and_version() {
        assert_eq!(check_preamble(&PREAMBLE), Ok(()));
        let mut bad = PREAMBLE;
        bad[5] = 9;
        assert_eq!(check_preamble(&bad), Err(FrameError::BadVersion(9)));
        let mut bad = PREAMBLE;
        bad[0] = b'X';
        assert!(matches!(check_preamble(&bad), Err(FrameError::BadMagic(_))));
    }

    fn fresh_session() -> Session {
        Session::new(crate::Engine::new(crate::EngineConfig::with_shards(2)))
    }

    /// Transcode `lines` to a binary request stream (preamble + frames).
    fn transcode(lines: &[&str]) -> Vec<u8> {
        let mut wire = PREAMBLE.to_vec();
        let mut payload = Vec::new();
        for line in lines {
            encode_request_line(line, &mut payload, &mut wire);
        }
        wire
    }

    /// Serve `wire` through a fresh binary session, feeding `chunk` bytes
    /// at a time, and decode the response stream back to JSONL lines.
    fn serve_binary(wire: &[u8], chunk: usize) -> Vec<String> {
        let mut bin = BinSession::new(fresh_session());
        let mut out = Vec::new();
        for part in wire.chunks(chunk.max(1)) {
            bin.feed(part, &mut out);
        }
        bin.finish(&mut out);
        decode_response(&out).expect("valid response stream")
    }

    #[test]
    fn binary_session_matches_jsonl_byte_for_byte() {
        let lines = vec![
            "# demo stream",
            "{\"op\":\"admit\",\"id\":\"a\",\"m\":8,\"beta\":6.0,\"policy\":\"lcp\"}",
            "{\"op\":\"step\",\"id\":\"a\",\"load\":2.0}",
            "{\"op\":\"step\",\"id\":\"a\",\"load\":5.0}",
            "",
            "{\"op\":\"step\",\"id\":\"a\",\"cost\":{\"Abs\":{\"slope\":1.0,\"center\":3.0}}}",
            "{\"op\":\"step\",\"id\":\"a\",\"load\":-1.0}", // rejected: bad load
            "{\"op\":\"step\",\"id\":\"ghost\",\"load\":1.0}", // rejected: unknown tenant
            "not json at all",
            "{\"op\":\"finish\",\"id\":\"a\"}",
            "{\"op\":\"report\",\"id\":\"a\"}",
            // (no "metrics" op here: its dump embeds wall-clock batch
            // latency histograms, nondeterministic across any two runs)
            "{\"op\":\"stats\"}",
        ];
        let expect = fresh_session().handle_lines(lines.iter().copied());
        let wire = transcode(&lines);
        // Chunked feeds must not change batching or responses.
        for chunk in [1, 7, wire.len()] {
            assert_eq!(serve_binary(&wire, chunk), expect, "chunk size {chunk}");
        }
    }

    #[test]
    fn bad_preamble_errors_at_seq_zero_and_kills_the_connection() {
        let mut bin = BinSession::new(fresh_session());
        let mut out = Vec::new();
        let mut wire = PREAMBLE.to_vec();
        wire[5] = 9; // future version
        bin.feed(&wire, &mut out);
        assert!(bin.is_dead());
        // No preamble echo: the error frame is the whole response stream.
        let mut dec = FrameDecoder::new();
        dec.extend(&out);
        let frame = dec.next_frame().unwrap().unwrap();
        assert_eq!(frame.tag, TAG_RESP_ERROR);
        let line = decode_response_frame(frame.tag, frame.body).unwrap();
        assert!(line.contains("\"line\":0"), "{line}");
        assert!(line.contains("unsupported protocol version 9"), "{line}");
        // Bytes after death are ignored.
        bin.feed(&[1, 2, 3], &mut out);
        bin.finish(&mut out);
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn corrupt_frame_reports_its_sequence_and_the_stream_continues() {
        let lines = vec![
            "{\"op\":\"admit\",\"id\":\"a\",\"m\":4,\"beta\":2.0,\"policy\":\"lcp\"}",
            "{\"op\":\"step\",\"id\":\"a\",\"load\":1.0}",
            "{\"op\":\"stats\"}",
        ];
        let mut wire = transcode(&lines);
        // Flip one payload byte of the step frame (frame 2). Locate it:
        // preamble + frame1, then header of frame 2.
        let f1_len = u32::from_le_bytes(wire[6..10].try_into().unwrap()) as usize;
        let f2_start = 6 + FRAME_HEADER + f1_len;
        wire[f2_start + FRAME_HEADER] ^= 0xFF;
        let replies = serve_binary(&wire, wire.len());
        assert!(replies[0].contains("admitted"), "{:?}", replies);
        assert!(
            replies[1].contains("\"line\":2") && replies[1].contains("crc mismatch"),
            "{:?}",
            replies
        );
        // Frame 3 still served, at its own sequence.
        assert!(replies[2].contains("\"op\":\"stats\""), "{:?}", replies);
    }

    #[test]
    fn truncated_stream_errors_at_the_next_sequence() {
        let lines = vec![
            "{\"op\":\"admit\",\"id\":\"a\",\"m\":4,\"beta\":2.0,\"policy\":\"lcp\"}",
            "{\"op\":\"step\",\"id\":\"a\",\"load\":1.0}",
        ];
        let wire = transcode(&lines);
        let cut = &wire[..wire.len() - 3]; // kill mid-step-frame
        let mut bin = BinSession::new(fresh_session());
        let mut out = Vec::new();
        bin.feed(cut, &mut out);
        bin.finish(&mut out);
        let replies = decode_response(&out).unwrap();
        assert_eq!(replies.len(), 2, "{:?}", replies);
        assert!(replies[0].contains("admitted"));
        assert!(
            replies[1].contains("\"line\":2") && replies[1].contains("truncated stream"),
            "{:?}",
            replies
        );
        let (frames_in, frames_out, bytes_in, bytes_out) = bin.io_counters();
        assert_eq!((frames_in, frames_out), (1, 2));
        assert_eq!(bytes_in as usize, cut.len());
        assert_eq!(bytes_out as usize, out.len());
    }

    #[test]
    fn compact_encoding_picks_the_expected_tags() {
        let cases = [
            ("{\"op\":\"step\",\"id\":\"a\",\"load\":1.5}", TAG_STEP_LOAD),
            (
                "{\"op\":\"step\",\"id\":\"a\",\"cost\":\"Zero\"}",
                TAG_STEP_COST,
            ),
            ("{\"op\":\"finish\",\"id\":\"a\"}", TAG_FINISH),
            ("{\"op\":\"snapshot\",\"id\":\"a\"}", TAG_SNAPSHOT),
            ("{\"op\":\"report\"}", TAG_REPORT),
            ("{\"op\":\"report\",\"id\":\"a\"}", TAG_REPORT),
            ("{\"op\":\"stats\"}", TAG_STATS),
            ("{\"op\":\"checkpoint\"}", TAG_CHECKPOINT),
            ("{\"op\":\"recover\"}", TAG_RECOVER),
            ("{\"op\":\"wal_stats\"}", TAG_WAL_STATS),
            ("{\"op\":\"metrics\"}", TAG_METRICS),
            ("{\"op\":\"trace\",\"last\":4}", TAG_TRACE),
            ("{\"op\":\"rebalance\",\"shards\":4}", TAG_REBALANCE),
            // The long tail rides the JSON envelope.
            (
                "{\"op\":\"admit\",\"id\":\"a\",\"m\":1,\"beta\":1.0,\"policy\":\"lcp\"}",
                TAG_JSON,
            ),
            ("{\"op\":\"autoscale\"}", TAG_JSON),
            ("", TAG_JSON),
            ("# comment", TAG_JSON),
            ("{\"op\":\"rebalance\",\"shards\":0}", TAG_JSON), // invalid: parser decides
        ];
        for (line, want) in cases {
            let mut payload = Vec::new();
            let mut out = Vec::new();
            encode_request_line(line, &mut payload, &mut out);
            assert_eq!(out[FRAME_HEADER], want, "line {line:?}");
        }
    }

    #[test]
    fn wire_metrics_fold_per_feed_batch() {
        let lines = vec![
            "{\"op\":\"admit\",\"id\":\"a\",\"m\":4,\"beta\":2.0,\"policy\":\"lcp\"}",
            "{\"op\":\"step\",\"id\":\"a\",\"load\":1.0}",
        ];
        let wire = transcode(&lines);
        let mut bin = BinSession::new(fresh_session());
        let mut out = Vec::new();
        let frames_in_of = |bin: &BinSession| {
            bin.session()
                .engine()
                .obs()
                .registry()
                .snapshot()
                .iter()
                .find_map(|m| match (&m.id.name[..], &m.value) {
                    ("engine_wire_frames", rsdc_obs::MetricValue::Counter(v))
                        if m.id.label.as_ref().map(|(k, v)| (k.as_str(), v.as_str()))
                            == Some(("dir", "in")) =>
                    {
                        Some(*v)
                    }
                    _ => None,
                })
        };
        // Feed everything but the last byte: both frames' bytes minus one
        // — only the fully decoded first frame has been consumed.
        bin.feed(&wire[..wire.len() - 1], &mut out);
        assert_eq!(frames_in_of(&bin), Some(1), "first frame folds mid-stream");
        // The long-lived-connection regression (PR 9 folded only at
        // close): an open connection must already report its traffic.
        bin.feed(&wire[wire.len() - 1..], &mut out);
        assert_eq!(frames_in_of(&bin), Some(2), "per-feed fold, not at close");
        bin.finish(&mut out);
        assert_eq!(frames_in_of(&bin), Some(2), "finish folds the same delta");
        let (frames_in, _, bytes_in, _) = bin.io_counters();
        assert_eq!(frames_in, 2);
        assert_eq!(bytes_in as usize, wire.len());
    }

    #[test]
    fn body_reader_writer_round_trip() {
        let mut buf = Vec::new();
        BodyWriter::start(&mut buf, TAG_STEP_COST)
            .str16("tenant-1")
            .u8(1)
            .f64(2.5)
            .raw(b"{\"kind\":\"zero\"}");
        assert_eq!(buf[0], TAG_STEP_COST);
        let mut r = BodyReader::new(&buf[1..]);
        assert_eq!(r.str16(), Some("tenant-1"));
        assert_eq!(r.u8(), Some(1));
        assert_eq!(r.f64(), Some(2.5));
        assert_eq!(r.rest(), b"{\"kind\":\"zero\"}");
        // Underruns are None, not panics.
        let mut r = BodyReader::new(&[5, 0]);
        assert_eq!(r.str16(), None);
    }
}
