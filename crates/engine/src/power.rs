//! The engine's energy runtime: the [`EnergyMeter`] plus the handle-side
//! bookkeeping that feeds it — last-known per-shard machine counts,
//! per-tenant attribution, and the floor-diff emission into the metrics
//! registry.
//!
//! Like the metrics registry, the admission gate and the topology policy,
//! the runtime is **process state, never journaled**: enabling energy
//! accounting changes no journaled byte, and a recovered engine restarts
//! its meter from zero. The regression tests hold the engine to that.

use crate::obs::EngineObs;
use crate::tenant::TenantEnergy;
use rsdc_obs::Gauge;
use rsdc_power::{EnergyDelta, EnergyMeter, PowerConfig, PowerModel, ShardSample};
use std::collections::HashMap;

/// Handle-side energy accounting state (lives behind the engine's power
/// mutex; one instance per `set_power(Some(..))` install).
pub(crate) struct PowerRuntime {
    meter: EnergyMeter,
    /// Last-known machines per shard. Shards that served no events this
    /// tick keep drawing at their last reported commitment — machines do
    /// not power down just because a batch skipped their shard.
    shard_machines: Vec<u64>,
    /// Per-tenant machine counts and attributed energy, updated from
    /// batch outcomes (evictions prune entries via [`forget`]).
    ///
    /// [`forget`]: PowerRuntime::forget
    tenants: HashMap<String, TenantPower>,
    /// Per-shard watts gauges, registered lazily as shards appear.
    gauges: Vec<Gauge>,
    /// Whole joules already emitted to the registry counter.
    emitted_joules: u64,
    /// Cost milli-units already emitted to the registry counter.
    emitted_cost_milli: u64,
}

struct TenantPower {
    machines: u64,
    /// The shard the tenant last committed on — where its machines run,
    /// and therefore whose utilization prices its per-machine draw.
    shard: usize,
    joules: f64,
    cost: f64,
}

impl PowerRuntime {
    pub(crate) fn new(cfg: PowerConfig) -> PowerRuntime {
        PowerRuntime {
            meter: EnergyMeter::new(cfg),
            shard_machines: Vec::new(),
            tenants: HashMap::new(),
            gauges: Vec::new(),
            emitted_joules: 0,
            emitted_cost_milli: 0,
        }
    }

    pub(crate) fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Meter one engine tick: fold the per-shard samples into the meter,
    /// refresh per-tenant machine counts from the batch outcomes, charge
    /// each known tenant its share, and emit gauges/counters/trace.
    ///
    /// `shard_events[i]` is the events shard `i` applied this tick;
    /// `machines` carries `(shard, committed machines)` for the shards
    /// that replied; `commits` carries `(tenant, last committed state,
    /// owning shard)` for the outcomes that committed anything.
    pub(crate) fn observe(
        &mut self,
        tick: u64,
        shard_events: &[u64],
        machines: &[(usize, u64)],
        commits: &[(&str, u32, usize)],
        obs: &EngineObs,
    ) -> EnergyDelta {
        self.shard_machines.resize(shard_events.len(), 0);
        for &(shard, m) in machines {
            self.shard_machines[shard] = m;
        }
        let samples: Vec<ShardSample> = shard_events
            .iter()
            .zip(&self.shard_machines)
            .map(|(&events, &machines)| ShardSample { events, machines })
            .collect();
        let price = self.meter.config().price.price_at(self.meter.ticks());
        for &(id, last, shard) in commits {
            let entry = self
                .tenants
                .entry(id.to_string())
                .or_insert_with(|| TenantPower {
                    machines: 0,
                    shard: 0,
                    joules: 0.0,
                    cost: 0.0,
                });
            entry.machines = last as u64;
            entry.shard = shard;
        }
        let delta = self.meter.observe(&samples);
        self.attribute(price);
        self.emit(tick, &delta, obs);
        delta
    }

    /// Charge each known tenant `machines * watts_per_machine(util of its
    /// shard's sample)` for this tick. The per-machine draw is derived
    /// from the fleet-wide model at the shard-mean utilization recorded by
    /// the meter; the idle floor of shards with zero committed machines
    /// stays unattributed (the meter total is the authoritative bill).
    fn attribute(&mut self, price: f64) {
        let cfg = self.meter.config();
        let utils = self.meter.last_utilization();
        for t in self.tenants.values_mut() {
            if t.machines == 0 {
                continue;
            }
            let util = utils.get(t.shard).copied().unwrap_or(0.0);
            let joules = t.machines as f64 * cfg.model.watts(util);
            t.joules += joules;
            t.cost += joules * price;
        }
    }

    /// Gauges, floor-diff counters, and the price-window trace edge.
    fn emit(&mut self, tick: u64, delta: &EnergyDelta, obs: &EngineObs) {
        let watts = self.meter.last_watts();
        while self.gauges.len() < watts.len() {
            self.gauges.push(obs.shard_watts_gauge(self.gauges.len()));
        }
        for (gauge, w) in self.gauges.iter().zip(watts) {
            gauge.set(w.round() as i64);
        }
        let joules = self.meter.joules().floor() as u64;
        if joules > self.emitted_joules {
            obs.energy_joules.add(joules - self.emitted_joules);
            self.emitted_joules = joules;
        }
        let cost_milli = (self.meter.cost() * 1000.0).floor() as u64;
        if cost_milli > self.emitted_cost_milli {
            obs.energy_cost_milli
                .add(cost_milli - self.emitted_cost_milli);
            self.emitted_cost_milli = cost_milli;
        }
        if delta.price_changed {
            obs.event(
                tick,
                "price_window",
                vec![
                    ("price", delta.price.into()),
                    ("joules_total", self.meter.joules().into()),
                    ("cost_total", self.meter.cost().into()),
                ],
            );
        }
    }

    /// The energy attributed to one tenant so far, if any was.
    pub(crate) fn tenant_energy(&self, id: &str) -> Option<TenantEnergy> {
        self.tenants.get(id).map(|t| TenantEnergy {
            joules: t.joules,
            cost: t.cost,
        })
    }

    /// Drop a tenant's attribution entry (after an evict).
    pub(crate) fn forget(&mut self, id: &str) {
        self.tenants.remove(id);
    }
}
