//! # rsdc-engine — sharded multi-tenant streaming autoscaler engine
//!
//! Every other entry point in this workspace is batch-shaped: it consumes a
//! complete [`rsdc_core::Instance`] and returns a schedule. This crate is
//! the *service* shape the paper's algorithms are meant for: a persistent
//! engine hosting thousands of independent online-policy instances
//! ("tenants"), each reacting to an unbounded stream of per-slot cost
//! events.
//!
//! ## Architecture
//!
//! ```text
//!                 admit / step / snapshot / report / rebalance
//!   caller ──────────────► Engine handle
//!                            │ admission gate (caps, rate limits)
//!                            │ consistent-hash ring (vnodes)
//!              ┌─────────────┼─────────────┐
//!              ▼             ▼             ▼
//!          shard 0       shard 1  ...  shard N-1     (one thread each)
//!          tenants:      tenants:      tenants:
//!          policy +      policy +      policy +
//!          accounting    accounting    accounting
//! ```
//!
//! * **Tenants** ([`TenantConfig`], [`tenant::Tenant`]) pair one
//!   `m`/`beta` configuration with one policy ([`PolicySpec`]): LCP,
//!   FLCP-rounded, half-step-rounded, memoryless-rounded, lookahead LCP,
//!   or a baseline. Policies are the object-safe, resumable
//!   [`rsdc_online::streaming::StreamingPolicy`] wrappers.
//! * **Heterogeneous tenants** ([`TenantConfig::hetero`],
//!   [`PolicySpec::Hetero`]) run mixed machine-class fleets: a
//!   [`FleetSpec`] (per-class count/beta/energy/capacity) plus an
//!   [`rsdc_hetero::HeteroStream`] whose incremental state is the lattice
//!   DP frontier. They ingest per-slot offered loads, commit
//!   configuration *vectors* (reported as `configs` beside the
//!   total-machine scalar `states`), and participate in snapshots,
//!   checkpoints and recovery with the same bit-exactness as scalar
//!   tenants.
//! * **Shards** ([`shard`]) are plain `std::thread` workers fed batched
//!   events over channels; tenants are partitioned by a consistent-hash
//!   ring with virtual nodes ([`ring`]) so all per-tenant operations are
//!   single-threaded and deterministic — and so changing the shard count
//!   moves only a minority of tenants.
//! * **Control plane** ([`admission`], [`Engine::rebalance`],
//!   [`Engine::rebalance_incremental`], [`topology`]): an admission gate
//!   in front of the shards enforces tenant caps and per-tenant
//!   token-bucket rate limits with typed
//!   [`Rejected`](AdmissionError::Rejected)/[`Throttled`](AdmissionError::Throttled)
//!   errors (refused traffic never reaches a WAL), and live rebalancing
//!   migrates tenants bit-exactly onto a new ring topology — the full
//!   path drains everything, the incremental path moves exactly the
//!   ring-diff tenant set — journaled and checkpoint-fenced so a kill
//!   mid-migration recovers exactly. The [`topology`] module closes the
//!   loop: a [`TopologyPolicy`] applies the paper's own LCP hysteresis to
//!   the shard count, auto-triggering incremental migrations only when
//!   accumulated load-imbalance cost provably exceeds the migration's
//!   switching cost.
//! * **Accounting** reuses [`rsdc_core::analysis`] (cost breakdowns,
//!   schedule statistics with identical phase semantics) and
//!   [`rsdc_sim::metrics`] (shard-level load/energy aggregation), all
//!   maintained incrementally in O(1) per event.
//! * **Snapshots** ([`tenant::TenantSnapshot`]) capture the *complete*
//!   tenant state — policy value functions, fractional states, rounder RNG
//!   words, lookahead buffers and the running accounting — so a tenant
//!   restored on a fresh engine continues **bit-identically**, a property
//!   the cross-crate differential tests enforce.
//! * **Durability** ([`journal`], `rsdc-store`): shards journal every
//!   state-mutating operation to a per-shard write-ahead log *before*
//!   applying it, [`Engine::checkpoint`] captures full engine state and
//!   truncates the log, and [`Engine::recover`] rebuilds the exact
//!   pre-crash engine from the newest checkpoint plus the WAL tail —
//!   byte-identical reports, enforced by randomized kill-point tests.
//! * **Wire format** ([`wire`]) is JSON-lines: `admit`/`step`/`finish`/
//!   `snapshot`/`restore`/`report`/`stats`/`checkpoint`/`recover`/
//!   `wal_stats`/`rebalance`/`limits` records, with ingestion helpers from
//!   [`rsdc_workloads`] traces and per-line error attribution. The `rsdc engine` CLI
//!   subcommand and the `engine_stream` example speak it end to end.
//!
//! ## Example
//!
//! ```
//! use rsdc_core::Cost;
//! use rsdc_engine::{Engine, EngineConfig, PolicySpec, TenantConfig};
//!
//! let engine = Engine::new(EngineConfig::with_shards(2));
//! engine.admit(TenantConfig::new("web", 8, 6.0, PolicySpec::Lcp)).unwrap();
//! for t in 0..48 {
//!     let load = 4.0 + 3.0 * ((t as f64) * 0.3).sin();
//!     let states = engine
//!         .step("web", Cost::abs(1.0, load))
//!         .unwrap();
//!     assert_eq!(states.len(), 1);
//! }
//! let report = engine.report("web").unwrap();
//! assert_eq!(report.committed, 48);
//! assert!(report.breakdown.total() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod binwire;
pub mod engine;
pub mod intern;
pub mod journal;
pub mod obs;
mod power;
pub mod ring;
pub mod serve;
pub mod shard;
pub mod statelist;
pub mod tenant;
pub mod topology;
pub mod wire;

pub use admission::{AdmissionConfig, AdmissionError};
pub use engine::{
    CheckpointReport, Engine, EngineConfig, RebalanceReport, RecoveryReport, StepEvent,
    DEFAULT_TRACE_CAPACITY,
};
pub use intern::UNKNOWN_KEY;
pub use obs::EngineObs;
pub use ring::{HashRing, RingSpec, DEFAULT_VNODES};
pub use rsdc_hetero::{FleetSpec, HeteroAlgo};
pub use rsdc_power::{EnergyStatus, PowerConfig, PowerSpec, PriceSchedule};
pub use serve::{ServeConfig, ServeSummary, Server, WireMode};
pub use shard::{ShardMeta, ShardStats, StepOutcome};
pub use statelist::StateList;
pub use tenant::{PolicySpec, TenantConfig, TenantEnergy, TenantReport, TenantSnapshot};
pub use topology::{TopologyConfig, TopologyPolicy, TopologyStatus};

/// Errors surfaced by [`Engine`] operations.
#[derive(Debug)]
pub enum EngineError {
    /// No tenant with this id on its shard.
    UnknownTenant(String),
    /// A tenant with this id already exists.
    DuplicateTenant(String),
    /// The shard worker thread is gone.
    ShardDown(usize),
    /// Policy-level failure (invalid snapshot, bad parameters).
    Policy(rsdc_core::Error),
    /// Durability-layer failure (WAL append, checkpoint, recovery scan).
    Store(String),
    /// Control-plane refusal: the tenant cap rejected an admit, or a
    /// per-tenant rate limit throttled a step event.
    Admission(AdmissionError),
}

impl EngineError {
    /// Wrap a store error.
    pub fn from_store(e: rsdc_store::StoreError) -> EngineError {
        EngineError::Store(e.to_string())
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownTenant(id) => write!(f, "unknown tenant {id:?}"),
            EngineError::DuplicateTenant(id) => write!(f, "tenant {id:?} already admitted"),
            EngineError::ShardDown(i) => write!(f, "shard {i} is down"),
            EngineError::Policy(e) => write!(f, "policy error: {e}"),
            EngineError::Store(m) => write!(f, "store error: {m}"),
            // Rendered without a prefix: the admission renderings double as
            // the wire's per-event error messages, which classify back to
            // this variant by exact match.
            EngineError::Admission(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<rsdc_core::Error> for EngineError {
    fn from(e: rsdc_core::Error) -> Self {
        EngineError::Policy(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsdc_core::Cost;

    fn costs(n: usize) -> Vec<Cost> {
        (0..n)
            .map(|t| Cost::abs(0.5 + (t % 3) as f64, ((t * 5 + 1) % 8) as f64))
            .collect()
    }

    #[test]
    fn admit_step_report_evict() {
        let engine = Engine::new(EngineConfig::with_shards(2));
        engine
            .admit(TenantConfig::new("a", 8, 2.0, PolicySpec::Lcp))
            .unwrap();
        assert!(matches!(
            engine.admit(TenantConfig::new("a", 8, 2.0, PolicySpec::Lcp)),
            Err(EngineError::DuplicateTenant(_))
        ));
        for f in costs(20) {
            engine.step("a", f).unwrap();
        }
        let report = engine.report("a").unwrap();
        assert_eq!(report.events, 20);
        assert_eq!(report.committed, 20);
        let final_report = engine.evict("a").unwrap();
        assert_eq!(final_report.committed, 20);
        assert!(matches!(
            engine.report("a"),
            Err(EngineError::UnknownTenant(_))
        ));
        engine.shutdown();
    }

    #[test]
    fn results_are_shard_count_invariant() {
        let fs = costs(40);
        let mut per_shards = Vec::new();
        for shards in [1usize, 3] {
            let engine = Engine::new(EngineConfig::with_shards(shards));
            for i in 0..10 {
                engine
                    .admit(TenantConfig::new(
                        format!("t{i}"),
                        6,
                        1.5,
                        PolicySpec::FlcpRounded { k: 2, seed: i },
                    ))
                    .unwrap();
            }
            for f in &fs {
                let batch: Vec<(String, Cost)> =
                    (0..10).map(|i| (format!("t{i}"), f.clone())).collect();
                engine.step_batch(batch).unwrap();
            }
            let reports = engine.report_all().unwrap();
            per_shards.push(
                reports
                    .into_iter()
                    .map(|r| {
                        (
                            r.id,
                            r.breakdown.operating,
                            r.breakdown.switching,
                            r.last_state,
                        )
                    })
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(per_shards[0], per_shards[1]);
    }

    #[test]
    fn batch_outcomes_preserve_submission_order() {
        let engine = Engine::new(EngineConfig::with_shards(4));
        for i in 0..12 {
            engine
                .admit(TenantConfig::new(format!("t{i}"), 4, 1.0, PolicySpec::Lcp))
                .unwrap();
        }
        let batch: Vec<(String, Cost)> = (0..12)
            .map(|i| (format!("t{i}"), Cost::abs(1.0, (i % 5) as f64)))
            .collect();
        let outcomes = engine.step_batch(batch).unwrap();
        let ids: Vec<String> = outcomes.iter().map(|o| o.id.to_string()).collect();
        let expected: Vec<String> = (0..12).map(|i| format!("t{i}")).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn unknown_tenant_in_batch_does_not_poison_other_events() {
        let engine = Engine::new(EngineConfig::with_shards(2));
        engine
            .admit(TenantConfig::new("real", 4, 1.0, PolicySpec::Lcp))
            .unwrap();
        let outcomes = engine
            .step_batch(vec![
                ("real".to_string(), Cost::abs(10.0, 2.0)),
                ("ghost".to_string(), Cost::abs(10.0, 2.0)),
                ("real".to_string(), Cost::abs(10.0, 3.0)),
            ])
            .unwrap();
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].error.is_none());
        assert_eq!(outcomes[0].states, vec![2]);
        assert!(outcomes[1].error.as_deref().unwrap().contains("ghost"));
        assert!(outcomes[2].error.is_none());
        assert_eq!(outcomes[2].states, vec![3]);
        // The single-event path still surfaces the error as Err.
        assert!(matches!(
            engine.step("ghost", Cost::Zero),
            Err(EngineError::UnknownTenant(_))
        ));
        assert_eq!(engine.report("real").unwrap().committed, 2);
    }

    #[test]
    fn incremental_rebalance_moves_exactly_the_ring_diff() {
        use crate::ring::{moved_ids, HashRing};
        let mut engine = Engine::new(EngineConfig::with_topology(2, 32));
        let ids: Vec<String> = (0..40).map(|i| format!("t{i}")).collect();
        for id in &ids {
            engine
                .admit(TenantConfig::new(id.clone(), 6, 1.5, PolicySpec::Lcp))
                .unwrap();
        }
        for f in costs(10) {
            let batch: Vec<(String, Cost)> = ids.iter().map(|id| (id.clone(), f.clone())).collect();
            engine.step_batch(batch).unwrap();
        }
        // The expected diff, computed independently of the engine.
        let old = HashRing::new(RingSpec::new(2, 32));
        let new = HashRing::new(RingSpec::new(5, 32));
        let mut want = moved_ids(&old, &new, ids.iter().map(|s| s.as_str()));
        want.sort_unstable();

        let report = engine.rebalance_incremental(5, None).unwrap();
        assert!(report.incremental);
        assert_eq!(report.shards, 5);
        assert_eq!(report.moved_ids, want, "exactly the diff, nothing else");
        assert_eq!(report.moved, want.len());
        assert_eq!(report.tenants, want.len(), "only the diff was re-installed");
        assert_eq!(engine.shards(), 5);
        assert_eq!(engine.live_tenants().unwrap(), ids.len());

        // The migrated engine serves the whole fleet and matches a static
        // single-shard reference bit-exactly.
        let reference = Engine::new(EngineConfig::with_shards(1));
        for id in &ids {
            reference
                .admit(TenantConfig::new(id.clone(), 6, 1.5, PolicySpec::Lcp))
                .unwrap();
        }
        for f in costs(10) {
            let batch: Vec<(String, Cost)> = ids.iter().map(|id| (id.clone(), f.clone())).collect();
            reference.step_batch(batch).unwrap();
        }
        for f in costs(6) {
            let batch: Vec<(String, Cost)> = ids.iter().map(|id| (id.clone(), f.clone())).collect();
            engine.step_batch(batch.clone()).unwrap();
            reference.step_batch(batch).unwrap();
        }
        let texts = |e: &Engine| -> Vec<String> {
            e.report_all()
                .unwrap()
                .iter()
                .map(|r| serde_json::to_string(r).unwrap())
                .collect()
        };
        assert_eq!(texts(&engine), texts(&reference));

        // Shrinking back also moves only the (reverse) diff, and fleet
        // totals survive the retired shards.
        let before: u64 = engine.shard_stats().unwrap().iter().map(|s| s.events).sum();
        let report = engine.rebalance_incremental(2, None).unwrap();
        assert_eq!(engine.shards(), 2);
        let mut back = moved_ids(&new, &old, ids.iter().map(|s| s.as_str()));
        back.sort_unstable();
        assert_eq!(report.moved_ids, back);
        let after: u64 = engine.shard_stats().unwrap().iter().map(|s| s.events).sum();
        assert_eq!(before, after, "retired shards' aggregates merged, not lost");
        engine.shutdown();
    }

    #[test]
    fn autoscale_policy_grows_the_engine_under_load() {
        let mut engine = Engine::new(EngineConfig::with_shards(1));
        let mut cfg = TopologyConfig::new(1, 4);
        cfg.switch_cost = 4.0;
        cfg.cooldown = 0;
        engine.set_autoscale(Some(cfg)).unwrap();
        assert_eq!(engine.autoscale_status().unwrap().shards, 1);
        let ids: Vec<String> = (0..30).map(|i| format!("t{i}")).collect();
        for id in &ids {
            engine
                .admit(TenantConfig::new(id.clone(), 4, 1.0, PolicySpec::Lcp))
                .unwrap();
        }
        // 30 events per tick against f(s) = 30/s + s: the plan should
        // leave 1 shard within a few ticks; each applied change is an
        // incremental migration.
        let mut applied = Vec::new();
        for t in 0..30 {
            let batch: Vec<(String, Cost)> = ids
                .iter()
                .map(|id| (id.clone(), Cost::abs(1.0, (t % 3) as f64)))
                .collect();
            engine.step_batch(batch).unwrap();
            if let Some(report) = engine.maybe_autoscale().unwrap() {
                assert!(report.incremental);
                applied.push(report.shards);
            }
        }
        assert!(!applied.is_empty(), "sustained load must trigger a grow");
        assert!(engine.shards() > 1);
        let status = engine.autoscale_status().unwrap();
        assert_eq!(status.shards, engine.shards());
        assert!(status.migrations as usize >= applied.len());
        assert!(status.imbalance_cost > 0.0);
        // The migration window opened: a brand-new admit is deferred.
        assert!(
            matches!(
                engine.admit(TenantConfig::new("late", 4, 1.0, PolicySpec::Lcp)),
                Err(EngineError::Admission(AdmissionError::Migrating { .. }))
            ) || {
                // ...unless the cooldown-0 window closed immediately, which a
                // zero-length window does by design.
                engine.evict("late").is_ok()
            }
        );
        // Disabling stops observations and clears status.
        engine.set_autoscale(None).unwrap();
        assert!(engine.autoscale_status().is_none());
        engine.shutdown();
    }

    #[test]
    fn manual_rebalances_resync_the_autoscale_policy() {
        let mut engine = Engine::new(EngineConfig::with_shards(1));
        let mut cfg = TopologyConfig::new(1, 8);
        cfg.cooldown = 4;
        engine.set_autoscale(Some(cfg)).unwrap();
        engine
            .admit(TenantConfig::new("a", 4, 1.0, PolicySpec::Lcp))
            .unwrap();
        // Operator-requested changes (full and incremental) must be
        // visible to the policy...
        engine.rebalance(4, None).unwrap();
        assert_eq!(engine.autoscale_status().unwrap().shards, 4);
        engine.rebalance_incremental(3, None).unwrap();
        let status = engine.autoscale_status().unwrap();
        assert_eq!(status.shards, 3);
        // ...without being charged to the policy's own accounting.
        assert_eq!(status.migrations, 0);
        assert_eq!(status.switch_cost_accrued, 0.0);
        // And the policy must not instantly fight the operator: the
        // manual change restarted the cooldown clock, so nothing is
        // pending even though the plan (1 shard — no load yet) disagrees.
        assert!(engine.maybe_autoscale().unwrap().is_none());
        assert_eq!(engine.shards(), 3);
        engine.shutdown();
    }

    #[test]
    fn shard_stats_aggregate_load_metrics() {
        let engine = Engine::new(EngineConfig::with_shards(2));
        engine
            .admit(TenantConfig::new("a", 8, 2.0, PolicySpec::Lcp))
            .unwrap();
        for t in 0..30 {
            let load = 2.0 + (t % 4) as f64;
            engine
                .step_batch_loads(vec![("a".to_string(), Cost::abs(2.0, load), Some(load))])
                .unwrap();
        }
        let stats = engine.shard_stats().unwrap();
        assert_eq!(stats.len(), 2);
        let total_events: u64 = stats.iter().map(|s| s.events).sum();
        assert_eq!(total_events, 30);
        let slots: usize = stats.iter().map(|s| s.metric_slots).sum();
        assert_eq!(slots, 30);
        assert!(stats.iter().map(|s| s.total_energy).sum::<f64>() > 0.0);
        engine.shutdown();
    }

    #[test]
    fn crash_recovery_matches_uninterrupted_run() {
        use rsdc_store::{FileStore, FileStoreConfig};
        use std::sync::Arc;
        let dir = std::env::temp_dir()
            .join("rsdc-engine-tests")
            .join(format!("recover-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = costs(40);
        let policies = || {
            [
                PolicySpec::Lcp,
                PolicySpec::FlcpRounded { k: 2, seed: 5 },
                PolicySpec::Lookahead { window: 3 },
            ]
        };
        let feed = |engine: &Engine, slice: &[Cost]| {
            for f in slice {
                let batch = (0..3)
                    .map(|i| (format!("t{i}"), f.clone(), Some(1.5 + i as f64)))
                    .collect();
                engine.step_batch_loads(batch).unwrap();
            }
        };

        // Uninterrupted reference (no store).
        let reference = Engine::new(EngineConfig::with_shards(2));
        for (i, policy) in policies().into_iter().enumerate() {
            reference
                .admit(TenantConfig::new(format!("t{i}"), 6, 2.0, policy).with_opt_tracking())
                .unwrap();
        }
        feed(&reference, &fs);
        let want = reference.report_all().unwrap();

        // Durable run, killed mid-stream (dropped without a checkpoint
        // covering the last 12 slots).
        let store: Arc<dyn rsdc_store::Durability> =
            Arc::new(FileStore::open(&dir, FileStoreConfig { sync_every: 8 }).unwrap());
        let durable = Engine::with_store(EngineConfig::with_shards(2), store.clone()).unwrap();
        for (i, policy) in policies().into_iter().enumerate() {
            durable
                .admit(TenantConfig::new(format!("t{i}"), 6, 2.0, policy).with_opt_tracking())
                .unwrap();
        }
        feed(&durable, &fs[..17]);
        durable.checkpoint().unwrap();
        feed(&durable, &fs[17..29]);
        drop(durable);

        let (recovered, report) =
            Engine::recover(EngineConfig::with_shards(2), store.clone()).unwrap();
        assert_eq!(report.tenants_restored, 3);
        // 12 post-checkpoint slots, one WAL record per (slot, shard touched).
        assert!((12..=24).contains(&report.records_replayed));
        assert_eq!(report.events_replayed, 36);
        assert_eq!(report.replay_errors, 0);
        assert!(report.shard_meta_restored);
        feed(&recovered, &fs[29..]);
        let got = recovered.report_all().unwrap();
        let to_text = |rs: &[TenantReport]| -> Vec<String> {
            rs.iter()
                .map(|r| serde_json::to_string(r).unwrap())
                .collect()
        };
        assert_eq!(to_text(&got), to_text(&want), "per-tenant reports");
        // Shard-level stats survived the crash exactly too.
        assert_eq!(
            serde_json::to_string(&recovered.shard_stats().unwrap()).unwrap(),
            serde_json::to_string(&reference.shard_stats().unwrap()).unwrap(),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn with_store_refuses_dirty_store() {
        use rsdc_store::{FileStore, FileStoreConfig};
        use std::sync::Arc;
        let dir = std::env::temp_dir()
            .join("rsdc-engine-tests")
            .join(format!("dirty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store: Arc<dyn rsdc_store::Durability> =
            Arc::new(FileStore::open(&dir, FileStoreConfig::default()).unwrap());
        let engine = Engine::with_store(EngineConfig::with_shards(1), store.clone()).unwrap();
        engine
            .admit(TenantConfig::new("a", 4, 1.0, PolicySpec::Lcp))
            .unwrap();
        drop(engine);
        assert!(matches!(
            Engine::with_store(EngineConfig::with_shards(1), store.clone()),
            Err(EngineError::Store(_))
        ));
        // Recovery is the sanctioned path onto existing state.
        let (engine, report) = Engine::recover(EngineConfig::with_shards(1), store).unwrap();
        assert_eq!(report.records_replayed, 1);
        assert_eq!(engine.tenant_ids().unwrap(), vec!["a".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn fleet() -> FleetSpec {
        FleetSpec::new(vec![
            rsdc_hetero::ServerType {
                count: 3,
                beta: 1.0,
                energy: 1.0,
                capacity: 1.0,
            },
            rsdc_hetero::ServerType {
                count: 2,
                beta: 2.5,
                energy: 1.4,
                capacity: 2.0,
            },
        ])
    }

    #[test]
    fn hetero_tenant_streams_vector_configs() {
        let engine = Engine::new(EngineConfig::with_shards(2));
        engine
            .admit(TenantConfig::hetero("h", fleet(), HeteroAlgo::Frontier).with_opt_tracking())
            .unwrap();
        let loads = [1.0, 4.5, 2.0, 5.5, 0.5, 3.0];
        let mut configs = Vec::new();
        for &l in &loads {
            let outcome = engine.step_load("h", l).unwrap();
            assert_eq!(outcome.states.len(), 1);
            let cfgs = outcome.configs.expect("hetero outcomes carry configs");
            assert_eq!(cfgs.len(), 1);
            assert_eq!(
                cfgs[0].iter().sum::<u32>(),
                outcome.states[0],
                "scalar state is the total machines"
            );
            configs.extend(cfgs);
        }
        let report = engine.report("h").unwrap();
        assert_eq!(report.events, loads.len() as u64);
        assert_eq!(report.committed, loads.len() as u64);
        assert_eq!(
            report.last_config.as_deref(),
            Some(&configs.last().unwrap()[..])
        );
        assert!(report.breakdown.total() > 0.0);
        let ratio = report.ratio.expect("tracked");
        assert!(ratio >= 1.0 - 1e-9, "{ratio}");

        // A step without a load is a per-event policy error, not a panic
        // (and not a bogus unknown-tenant).
        assert!(matches!(
            engine.step("h", Cost::abs(1.0, 2.0)),
            Err(EngineError::Policy(_))
        ));
        assert!(matches!(
            engine.step_load("ghost", 1.0),
            Err(EngineError::UnknownTenant(_))
        ));
        let outcomes = engine
            .step_batch(vec![("h".to_string(), Cost::abs(1.0, 2.0))])
            .unwrap();
        assert!(outcomes[0].error.as_deref().unwrap().contains("load"));
        // The failed event changed nothing.
        assert_eq!(engine.report("h").unwrap().events, loads.len() as u64);
    }

    #[test]
    fn hetero_admit_rejects_degenerate_fleets() {
        let engine = Engine::new(EngineConfig::with_shards(1));
        let mut bad = fleet();
        bad.types[0].count = 0;
        assert!(matches!(
            engine.admit(TenantConfig::hetero("h", bad, HeteroAlgo::Frontier)),
            Err(EngineError::Policy(_))
        ));
    }

    #[test]
    fn hetero_snapshot_restore_across_engines() {
        let loads: Vec<f64> = (0..30).map(|t| 0.5 + ((t * 3 + 1) % 6) as f64).collect();
        for algo in [HeteroAlgo::Frontier, HeteroAlgo::Greedy] {
            let reference = Engine::new(EngineConfig::with_shards(2));
            reference
                .admit(TenantConfig::hetero("h", fleet(), algo).with_opt_tracking())
                .unwrap();
            let mut want = Vec::new();
            for &l in &loads {
                want.extend(reference.step_load("h", l).unwrap().configs.unwrap());
            }
            let want_report = reference.report("h").unwrap();

            let first = Engine::new(EngineConfig::with_shards(1));
            first
                .admit(TenantConfig::hetero("h", fleet(), algo).with_opt_tracking())
                .unwrap();
            let mut got = Vec::new();
            for &l in &loads[..11] {
                got.extend(first.step_load("h", l).unwrap().configs.unwrap());
            }
            let snapshot = first.snapshot("h").unwrap();
            first.shutdown();

            let second = Engine::new(EngineConfig::with_shards(3));
            second.restore(snapshot).unwrap();
            for &l in &loads[11..] {
                got.extend(second.step_load("h", l).unwrap().configs.unwrap());
            }
            assert_eq!(got, want, "{algo:?}");
            let got_report = second.report("h").unwrap();
            assert_eq!(
                serde_json::to_string(&got_report).unwrap(),
                serde_json::to_string(&want_report).unwrap(),
                "{algo:?}: restored report must be byte-identical"
            );
        }
    }

    #[test]
    fn rebalance_preserves_every_tenant_bit_exactly() {
        let fs = costs(60);
        let mut fleet_cfg: Vec<TenantConfig> = (0..12)
            .map(|i| {
                TenantConfig::new(
                    format!("t{i}"),
                    6,
                    1.5,
                    PolicySpec::FlcpRounded { k: 2, seed: i },
                )
                .with_opt_tracking()
            })
            .collect();
        fleet_cfg.push(TenantConfig::hetero("h", fleet(), HeteroAlgo::Frontier));
        let feed = |engine: &Engine, slice: &[Cost]| {
            for f in slice {
                let batch = fleet_cfg
                    .iter()
                    .map(|c| (c.id.clone(), f.clone(), Some(2.0)))
                    .collect();
                engine.step_batch_loads(batch).unwrap();
            }
        };
        // Static single-shard reference.
        let reference = Engine::new(EngineConfig::with_shards(1));
        for cfg in &fleet_cfg {
            reference.admit(cfg.clone()).unwrap();
        }
        feed(&reference, &fs);
        let want = reference.report_all().unwrap();

        // Rebalanced run: 1 → 3 → 2 shards mid-stream, vnode change too.
        let mut engine = Engine::new(EngineConfig::with_shards(1));
        for cfg in &fleet_cfg {
            engine.admit(cfg.clone()).unwrap();
        }
        feed(&engine, &fs[..20]);
        let r = engine.rebalance(3, None).unwrap();
        assert_eq!(r.shards, 3);
        assert_eq!(r.tenants, fleet_cfg.len());
        assert!(r.moved > 0, "growing 1→3 must move someone");
        assert!(!r.durable, "no store on this engine");
        feed(&engine, &fs[20..41]);
        engine.rebalance(2, Some(16)).unwrap();
        assert_eq!(engine.ring_spec(), ring::RingSpec::new(2, 16));
        feed(&engine, &fs[41..]);
        let got = engine.report_all().unwrap();
        let to_text = |rs: &[TenantReport]| -> Vec<String> {
            rs.iter()
                .map(|r| serde_json::to_string(r).unwrap())
                .collect()
        };
        assert_eq!(to_text(&got), to_text(&want));
        // Fleet totals survived both migrations (merged onto shard 0).
        let events: u64 = engine.shard_stats().unwrap().iter().map(|s| s.events).sum();
        assert_eq!(events, 60 * fleet_cfg.len() as u64);
    }

    #[test]
    fn tenant_cap_rejects_admit_and_new_restores() {
        let engine = Engine::new(EngineConfig::with_shards(2));
        engine
            .set_limits(AdmissionConfig {
                max_tenants: 2,
                ..AdmissionConfig::default()
            })
            .unwrap();
        engine
            .admit(TenantConfig::new("a", 4, 1.0, PolicySpec::Lcp))
            .unwrap();
        engine
            .admit(TenantConfig::new("b", 4, 1.0, PolicySpec::Lcp))
            .unwrap();
        assert!(matches!(
            engine.admit(TenantConfig::new("c", 4, 1.0, PolicySpec::Lcp)),
            Err(EngineError::Admission(AdmissionError::Rejected { .. }))
        ));
        // Restoring an existing tenant is a replacement, not an admit…
        let snap = engine.snapshot("a").unwrap();
        engine.restore(snap.clone()).unwrap();
        // …but restoring a new id counts against the cap.
        let mut new_snap = snap;
        new_snap.config.id = "d".to_string();
        assert!(matches!(
            engine.restore(new_snap),
            Err(EngineError::Admission(AdmissionError::Rejected { .. }))
        ));
        // Evicting frees a slot.
        engine.evict("b").unwrap();
        engine
            .admit(TenantConfig::new("c", 4, 1.0, PolicySpec::Lcp))
            .unwrap();
        // Invalid limits are refused.
        assert!(engine
            .set_limits(AdmissionConfig {
                rate: f64::INFINITY,
                ..AdmissionConfig::default()
            })
            .is_err());
    }

    #[test]
    fn rate_limit_throttles_with_typed_per_event_errors() {
        let engine = Engine::new(EngineConfig::with_shards(2));
        engine
            .set_limits(AdmissionConfig {
                max_tenants: 0,
                rate: 0.5,
                burst: 2.0,
            })
            .unwrap();
        engine
            .admit(TenantConfig::new("a", 4, 1.0, PolicySpec::Lcp))
            .unwrap();
        engine
            .admit(TenantConfig::new("b", 4, 1.0, PolicySpec::Lcp))
            .unwrap();
        // One batch (= one tick) with 3 events for "a" and 1 for "b": the
        // burst of 2 passes, a's third event throttles, b is untouched.
        let outcomes = engine
            .step_batch(vec![
                ("a".to_string(), Cost::abs(1.0, 2.0)),
                ("a".to_string(), Cost::abs(1.0, 2.0)),
                ("a".to_string(), Cost::abs(1.0, 3.0)),
                ("b".to_string(), Cost::abs(1.0, 1.0)),
            ])
            .unwrap();
        assert!(outcomes[0].error.is_none());
        assert!(outcomes[1].error.is_none());
        assert!(outcomes[2].error.as_deref().unwrap().contains("throttled"));
        assert!(outcomes[3].error.is_none());
        // The throttled event changed nothing.
        assert_eq!(engine.report("a").unwrap().events, 2);
        // The single-event path surfaces the typed error (the call's own
        // tick refills only half a token at rate 0.5).
        assert!(matches!(
            engine.step("a", Cost::abs(1.0, 2.0)),
            Err(EngineError::Admission(AdmissionError::Throttled { .. }))
        ));
        // Ticks refill: after one more batch (tick), "a" can step again.
        engine.step("b", Cost::abs(1.0, 1.0)).unwrap();
        engine.step("a", Cost::abs(1.0, 2.0)).unwrap();
        assert_eq!(engine.report("a").unwrap().events, 3);
        // Disabling limits reopens the gate.
        engine.set_limits(AdmissionConfig::default()).unwrap();
        for _ in 0..8 {
            engine.step("a", Cost::abs(1.0, 2.0)).unwrap();
        }
    }

    #[test]
    fn throttled_events_never_reach_the_wal() {
        use rsdc_store::{FileStore, FileStoreConfig};
        use std::sync::Arc;
        let dir = std::env::temp_dir()
            .join("rsdc-engine-tests")
            .join(format!("throttle-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store: Arc<dyn rsdc_store::Durability> =
            Arc::new(FileStore::open(&dir, FileStoreConfig::default()).unwrap());
        let engine = Engine::with_store(EngineConfig::with_shards(1), store.clone()).unwrap();
        engine
            .set_limits(AdmissionConfig {
                max_tenants: 0,
                rate: 1.0,
                burst: 1.0,
            })
            .unwrap();
        engine
            .admit(TenantConfig::new("a", 4, 1.0, PolicySpec::Lcp))
            .unwrap();
        // 3 events in one batch: 1 admitted, 2 throttled.
        let outcomes = engine
            .step_batch(vec![
                ("a".to_string(), Cost::abs(1.0, 2.0)),
                ("a".to_string(), Cost::abs(1.0, 3.0)),
                ("a".to_string(), Cost::abs(1.0, 1.0)),
            ])
            .unwrap();
        assert_eq!(outcomes.iter().filter(|o| o.error.is_some()).count(), 2);
        let want = engine.report("a").unwrap();
        assert_eq!(want.events, 1);
        drop(engine);
        // Recovery (with no limits configured) replays only the admitted
        // event: the throttled ones were never journaled.
        let (recovered, report) = Engine::recover(EngineConfig::with_shards(1), store).unwrap();
        assert_eq!(report.replay_errors, 0);
        assert_eq!(
            serde_json::to_string(&recovered.report("a").unwrap()).unwrap(),
            serde_json::to_string(&want).unwrap(),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_rebalance_is_fenced_and_interrupted_ones_replay() {
        use rsdc_store::{FileStore, FileStoreConfig};
        use std::sync::Arc;
        let dir = std::env::temp_dir()
            .join("rsdc-engine-tests")
            .join(format!("rebalance-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let open = || -> Arc<dyn rsdc_store::Durability> {
            Arc::new(FileStore::open(&dir, FileStoreConfig::default()).unwrap())
        };
        let fs = costs(30);
        // Reference: static single shard, no store.
        let reference = Engine::new(EngineConfig::with_shards(1));
        for i in 0..6 {
            reference
                .admit(TenantConfig::new(
                    format!("t{i}"),
                    6,
                    2.0,
                    PolicySpec::FlcpRounded { k: 2, seed: i },
                ))
                .unwrap();
        }
        for f in &fs {
            let batch = (0..6).map(|i| (format!("t{i}"), f.clone())).collect();
            reference.step_batch(batch).unwrap();
        }
        let want: Vec<String> = reference
            .report_all()
            .unwrap()
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect();

        // Durable run with a live rebalance mid-stream, killed after more
        // WAL-only events.
        let mut engine = Engine::with_store(EngineConfig::with_shards(2), open()).unwrap();
        for i in 0..6 {
            engine
                .admit(TenantConfig::new(
                    format!("t{i}"),
                    6,
                    2.0,
                    PolicySpec::FlcpRounded { k: 2, seed: i },
                ))
                .unwrap();
        }
        for f in &fs[..10] {
            let batch = (0..6).map(|i| (format!("t{i}"), f.clone())).collect();
            engine.step_batch(batch).unwrap();
        }
        let r = engine.rebalance(3, None).unwrap();
        assert!(r.durable);
        assert!(r.seq > 0, "fencing checkpoint committed");
        for f in &fs[10..20] {
            let batch = (0..6).map(|i| (format!("t{i}"), f.clone())).collect();
            engine.step_batch(batch).unwrap();
        }
        drop(engine); // crash after the fence + 10 WAL-only slots

        let (engine, report) = Engine::recover(EngineConfig::with_shards(3), open()).unwrap();
        assert_eq!(report.tenants_restored, 6, "fencing checkpoint had all");
        assert_eq!(report.replay_errors, 0);
        assert_eq!(
            report.rebalances_replayed, 0,
            "completed fence truncated it"
        );
        drop(engine);

        // Interrupted rebalance: journal the record but crash before the
        // fence (the journal-then-die window) — recovery must finish the
        // topology change.
        {
            let store = open();
            let recovery = store.recover().unwrap();
            assert!(recovery.checkpoint.is_some());
            store
                .append(
                    0,
                    &crate::journal::JournalRecord::Rebalance {
                        shards: 2,
                        vnodes: 16,
                    }
                    .encode(),
                )
                .unwrap();
            store.sync().unwrap();
        }
        let (mut engine, report) = Engine::recover(EngineConfig::with_shards(3), open()).unwrap();
        assert_eq!(report.rebalances_replayed, 1);
        assert_eq!(
            engine.ring_spec(),
            ring::RingSpec::new(2, 16),
            "recovery completes the interrupted migration"
        );
        // The stream finishes identically to the static reference.
        for f in &fs[20..] {
            let batch = (0..6).map(|i| (format!("t{i}"), f.clone())).collect();
            engine.step_batch(batch).unwrap();
        }
        let _ = engine.rebalance(1, None).unwrap();
        let got: Vec<String> = engine
            .report_all()
            .unwrap()
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect();
        assert_eq!(got, want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_shrink_then_regrow_rebalance_loses_no_wal_records() {
        // Regression: after shrinking the ring, a shard index goes idle;
        // the next fencing checkpoint deletes its old WAL segment. When a
        // later rebalance brings the index back, its appends must land in
        // a live segment — a stale cached writer would journal into an
        // unlinked inode and recovery would silently drop every event
        // since the regrow.
        use rsdc_store::{FileStore, FileStoreConfig};
        use std::sync::Arc;
        let dir = std::env::temp_dir()
            .join("rsdc-engine-tests")
            .join(format!("regrow-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let open = || -> Arc<dyn rsdc_store::Durability> {
            Arc::new(FileStore::open(&dir, FileStoreConfig { sync_every: 1 }).unwrap())
        };
        let fs = costs(30);
        let admit_fleet = |engine: &Engine| {
            for i in 0..8 {
                engine
                    .admit(
                        TenantConfig::new(
                            format!("t{i}"),
                            6,
                            2.0,
                            PolicySpec::FlcpRounded { k: 2, seed: i },
                        )
                        .with_opt_tracking(),
                    )
                    .unwrap();
            }
        };
        let feed = |engine: &Engine, slice: &[Cost]| {
            for f in slice {
                let batch = (0..8).map(|i| (format!("t{i}"), f.clone())).collect();
                engine.step_batch(batch).unwrap();
            }
        };
        let to_text = |engine: &Engine| -> Vec<String> {
            engine
                .report_all()
                .unwrap()
                .iter()
                .map(|r| serde_json::to_string(r).unwrap())
                .collect()
        };

        let reference = Engine::new(EngineConfig::with_shards(1));
        admit_fleet(&reference);
        feed(&reference, &fs);
        let want = to_text(&reference);

        let mut engine = Engine::with_store(EngineConfig::with_shards(4), open()).unwrap();
        admit_fleet(&engine);
        feed(&engine, &fs[..10]);
        engine.rebalance(2, None).unwrap();
        feed(&engine, &fs[10..20]);
        engine.rebalance(4, None).unwrap();
        // These events route to shards 2 and 3 again — WAL-only state.
        feed(&engine, &fs[20..]);
        drop(engine); // crash

        let (recovered, report) = Engine::recover(EngineConfig::with_shards(4), open()).unwrap();
        assert_eq!(report.replay_errors, 0);
        assert_eq!(
            to_text(&recovered),
            want,
            "events journaled on re-grown shards must survive the crash"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_restore_across_engines() {
        let fs = costs(36);
        // Uninterrupted reference run.
        let reference = Engine::new(EngineConfig::with_shards(2));
        reference
            .admit(TenantConfig::new(
                "t",
                6,
                2.0,
                PolicySpec::HalfStepRounded { seed: 17 },
            ))
            .unwrap();
        let mut want = Vec::new();
        for f in &fs {
            want.extend(reference.step("t", f.clone()).unwrap());
        }
        let want_report = reference.report("t").unwrap();

        // Interrupted run: kill the engine mid-stream, restore elsewhere.
        let first = Engine::new(EngineConfig::with_shards(2));
        first
            .admit(TenantConfig::new(
                "t",
                6,
                2.0,
                PolicySpec::HalfStepRounded { seed: 17 },
            ))
            .unwrap();
        let mut got = Vec::new();
        for f in &fs[..15] {
            got.extend(first.step("t", f.clone()).unwrap());
        }
        let snapshot = first.snapshot("t").unwrap();
        first.shutdown();

        let second = Engine::new(EngineConfig::with_shards(3));
        second.restore(snapshot).unwrap();
        for f in &fs[15..] {
            got.extend(second.step("t", f.clone()).unwrap());
        }
        assert_eq!(got, want);
        let got_report = second.report("t").unwrap();
        assert_eq!(
            got_report.breakdown.operating,
            want_report.breakdown.operating
        );
        assert_eq!(
            got_report.breakdown.switching,
            want_report.breakdown.switching
        );
        assert_eq!(got_report.stats, want_report.stats);
    }

    #[test]
    fn energy_meter_integrates_engine_ticks() {
        let engine = Engine::new(EngineConfig::with_shards(2));
        for i in 0..6 {
            engine
                .admit(TenantConfig::new(format!("t{i}"), 8, 1.0, PolicySpec::Lcp))
                .unwrap();
        }
        assert!(engine.energy_status().is_none(), "accounting starts off");
        let cfg = PowerConfig {
            model: PowerSpec::Linear {
                idle: 100.0,
                peak: 250.0,
            },
            capacity: 4.0,
            price: PriceSchedule::Step {
                period: 3,
                prices: vec![1.0, 5.0],
            },
        };
        engine.set_power(Some(cfg)).unwrap();
        for f in costs(12) {
            let batch: Vec<(String, Cost)> = (0..6).map(|i| (format!("t{i}"), f.clone())).collect();
            engine.step_batch(batch).unwrap();
        }
        let status = engine.energy_status().unwrap();
        assert_eq!(status.ticks, 12, "one metered tick per ingested batch");
        assert!(status.joules > 0.0);
        assert!(status.cost > status.joules, "expensive windows priced > 1");
        assert_eq!(status.watts.len(), 2);
        // Every shard draws at least one machine's idle power per tick, so
        // totals are bounded below by the idle floor.
        assert!(status.joules >= 12.0 * 2.0 * 100.0);
        // The registry counters trail the meter by less than one unit.
        let counters: std::collections::HashMap<String, u64> = engine
            .obs()
            .registry()
            .snapshot()
            .into_iter()
            .filter_map(|m| match m.value {
                rsdc_obs::MetricValue::Counter(v) => Some((m.id.name, v)),
                _ => None,
            })
            .collect();
        assert_eq!(counters["engine_energy_joules"], status.joules as u64);
        assert_eq!(
            counters["engine_energy_cost_milli"],
            (status.cost * 1000.0) as u64
        );
        // Per-tenant attribution: every tenant committed machines, so each
        // carries a share, and the shares never exceed the metered total.
        let reports = engine.report_all().unwrap();
        let attributed: f64 = reports
            .iter()
            .map(|r| r.energy.expect("accounting on").joules)
            .sum();
        assert!(attributed > 0.0);
        assert!(attributed <= status.joules + 1e-9);
        // Disabling accounting clears the read-backs and report fields.
        engine.set_power(None).unwrap();
        assert!(engine.energy_status().is_none());
        assert!(engine.report("t0").unwrap().energy.is_none());
    }

    #[test]
    fn price_window_trace_marks_schedule_edges() {
        let engine = Engine::new(EngineConfig::with_shards(1));
        engine
            .admit(TenantConfig::new("t", 4, 1.0, PolicySpec::Lcp))
            .unwrap();
        engine
            .set_power(Some(PowerConfig {
                model: PowerSpec::Constant { watts: 50.0 },
                capacity: 1.0,
                price: PriceSchedule::Step {
                    period: 2,
                    prices: vec![1.0, 4.0],
                },
            }))
            .unwrap();
        for f in costs(5) {
            engine.step("t", f).unwrap();
        }
        let windows: Vec<u64> = engine
            .obs()
            .trace()
            .events(None)
            .iter()
            .filter(|e| e.kind == "price_window")
            .map(|e| e.tick)
            .collect();
        // Ticks 1..=5 on the engine clock; the meter's 0-based ticks 0, 2
        // and 4 open windows (first tick, then each period boundary).
        assert_eq!(windows.len(), 3, "first tick + two period edges");
    }
}
