//! Small-vector state list for step outcomes.
//!
//! Nearly every step commits a handful of states — one per slot drained
//! from the policy's pending queue, which is almost always exactly one in
//! steady state. Storing them in a `Vec<u32>` costs one heap allocation
//! per event, which is the difference between a zero-allocation ingest
//! path and one allocation per event at data-center rates. [`StateList`]
//! keeps up to [`INLINE_STATES`] states inline and only spills to a heap
//! vector for pathological bursts (a cold tenant catching up on a deep
//! pending queue).

use serde::{DeError, Deserialize, Serialize};
use serde_json::Value;

/// States kept inline before spilling to the heap.
pub const INLINE_STATES: usize = 6;

/// A list of committed states that avoids heap allocation for the common
/// case of at most [`INLINE_STATES`] entries.
#[derive(Clone)]
pub enum StateList {
    /// Up to [`INLINE_STATES`] states stored in place.
    Inline {
        /// Number of live entries in `buf`.
        len: u8,
        /// Inline storage; entries past `len` are meaningless.
        buf: [u32; INLINE_STATES],
    },
    /// Spilled storage for longer lists.
    Heap(Vec<u32>),
}

impl StateList {
    /// An empty list (no allocation).
    pub const fn new() -> Self {
        StateList::Inline {
            len: 0,
            buf: [0; INLINE_STATES],
        }
    }

    /// Append a state, spilling to the heap past the inline capacity.
    pub fn push(&mut self, state: u32) {
        match self {
            StateList::Inline { len, buf } => {
                if (*len as usize) < INLINE_STATES {
                    buf[*len as usize] = state;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_STATES * 2);
                    v.extend_from_slice(&buf[..]);
                    v.push(state);
                    *self = StateList::Heap(v);
                }
            }
            StateList::Heap(v) => v.push(state),
        }
    }

    /// Reset to empty, keeping heap capacity if already spilled.
    pub fn clear(&mut self) {
        match self {
            StateList::Inline { len, .. } => *len = 0,
            StateList::Heap(v) => v.clear(),
        }
    }

    /// The states as a slice.
    pub fn as_slice(&self) -> &[u32] {
        match self {
            StateList::Inline { len, buf } => &buf[..*len as usize],
            StateList::Heap(v) => v.as_slice(),
        }
    }

    /// Copy into a fresh `Vec` (for callers that need owned storage).
    pub fn to_vec(&self) -> Vec<u32> {
        self.as_slice().to_vec()
    }
}

impl Default for StateList {
    fn default() -> Self {
        StateList::new()
    }
}

impl std::ops::Deref for StateList {
    type Target = [u32];
    fn deref(&self) -> &[u32] {
        self.as_slice()
    }
}

impl std::fmt::Debug for StateList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl PartialEq for StateList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for StateList {}

impl PartialEq<Vec<u32>> for StateList {
    fn eq(&self, other: &Vec<u32>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[u32]> for StateList {
    fn eq(&self, other: &[u32]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u32; N]> for StateList {
    fn eq(&self, other: &[u32; N]) -> bool {
        self.as_slice() == &other[..]
    }
}

impl From<Vec<u32>> for StateList {
    fn from(v: Vec<u32>) -> Self {
        if v.len() <= INLINE_STATES {
            let mut out = StateList::new();
            for s in v {
                out.push(s);
            }
            out
        } else {
            StateList::Heap(v)
        }
    }
}

impl FromIterator<u32> for StateList {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut out = StateList::new();
        for s in iter {
            out.push(s);
        }
        out
    }
}

impl<'a> IntoIterator for &'a StateList {
    type Item = &'a u32;
    type IntoIter = std::slice::Iter<'a, u32>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

// On the wire a StateList is indistinguishable from the Vec<u32> it
// replaced: a plain JSON array of integers. Snapshots, WAL records and
// reports stay byte-compatible.
impl Serialize for StateList {
    fn to_value(&self) -> Value {
        Value::Array(self.as_slice().iter().map(|s| s.to_value()).collect())
    }
}

impl Deserialize for StateList {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::custom("expected array of states"))?;
        let mut out = StateList::new();
        for item in arr {
            let n = item
                .as_u64()
                .ok_or_else(|| DeError::custom("expected integer state"))?;
            out.push(u32::try_from(n).map_err(|_| DeError::custom("state out of range"))?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_then_spill() {
        let mut l = StateList::new();
        assert!(l.is_empty());
        for i in 0..INLINE_STATES as u32 {
            l.push(i);
        }
        assert!(matches!(l, StateList::Inline { .. }));
        assert_eq!(l.len(), INLINE_STATES);
        l.push(99);
        assert!(matches!(l, StateList::Heap(_)));
        assert_eq!(l.as_slice(), &[0, 1, 2, 3, 4, 5, 99]);
        l.clear();
        assert!(l.is_empty());
        l.push(7);
        assert_eq!(l.as_slice(), &[7]);
    }

    #[test]
    fn json_round_trip_matches_vec() {
        let cases = [vec![], vec![3], vec![1, 2, 3, 4, 5, 6, 7, 8]];
        for v in cases {
            let l = StateList::from(v.clone());
            assert_eq!(
                serde_json::to_string(&l).unwrap(),
                serde_json::to_string(&v).unwrap(),
                "wire-identical to Vec<u32>"
            );
            let back: StateList =
                serde_json::from_str(&serde_json::to_string(&l).unwrap()).unwrap();
            assert_eq!(back, v);
        }
    }
}
