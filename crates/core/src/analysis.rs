//! Schedule analysis: cost breakdowns and structural statistics.
//!
//! Reporting utilities shared by the experiment harness, the CLI and the
//! examples: where a schedule's cost comes from (operating vs switching),
//! how often it switches, and its phase structure (maximal monotone runs —
//! the `T^+`/`T^-` intervals of the paper's Section 3.3 analysis).

use crate::instance::Instance;
use crate::schedule::{operating_cost, switching_cost_up, Schedule};
use serde::{Deserialize, Serialize};

/// Cost decomposition of a schedule on an instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// `sum_t f_t(x_t)`.
    pub operating: f64,
    /// `beta * sum_t (x_t - x_{t-1})^+`.
    pub switching: f64,
}

impl CostBreakdown {
    /// Total cost (eq. 1).
    pub fn total(&self) -> f64 {
        self.operating + self.switching
    }

    /// Fraction of the total that is switching cost (0 when total is 0).
    pub fn switching_share(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.switching / t
        }
    }
}

/// Compute the cost breakdown.
pub fn breakdown(inst: &Instance, xs: &Schedule) -> CostBreakdown {
    CostBreakdown {
        operating: operating_cost(inst, xs),
        switching: switching_cost_up(inst.beta(), &xs.0),
    }
}

/// Structural statistics of a schedule (independent of costs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Total servers powered up over the horizon (`sum (x_t - x_{t-1})^+`,
    /// `x_0 = 0`).
    pub total_power_ups: u64,
    /// Total servers powered down within the horizon.
    pub total_power_downs: u64,
    /// Number of slots where the state changed.
    pub change_slots: usize,
    /// Largest state used.
    pub peak: u32,
    /// Mean state.
    pub mean: f64,
    /// Number of maximal monotone phases (see [`phases`]).
    pub phase_count: usize,
}

/// Compute schedule statistics.
pub fn stats(xs: &Schedule) -> ScheduleStats {
    let mut ups = 0u64;
    let mut downs = 0u64;
    let mut changes = 0usize;
    let mut prev = 0u32;
    for &x in &xs.0 {
        ups += x.saturating_sub(prev) as u64;
        downs += prev.saturating_sub(x) as u64;
        if x != prev {
            changes += 1;
        }
        prev = x;
    }
    let peak = xs.0.iter().copied().max().unwrap_or(0);
    let mean = if xs.0.is_empty() {
        0.0
    } else {
        xs.0.iter().map(|&x| x as f64).sum::<f64>() / xs.0.len() as f64
    };
    ScheduleStats {
        total_power_ups: ups,
        total_power_downs: downs,
        change_slots: changes,
        peak,
        mean,
        phase_count: phases(xs).len(),
    }
}

/// Direction of a monotone phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// States weakly increase and at least one strict increase occurs.
    Up,
    /// States weakly decrease and at least one strict decrease occurs.
    Down,
    /// The state never changes in this phase.
    Flat,
}

/// Decompose a schedule into maximal monotone phases: consecutive slots
/// where the state moves weakly in one direction. A fully constant schedule
/// is a single `Flat` phase. Phase ranges are half-open slot-index ranges
/// into `xs.0` and cover the schedule exactly.
pub fn phases(xs: &Schedule) -> Vec<(std::ops::Range<usize>, Direction)> {
    let n = xs.0.len();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    let mut start = 0usize;
    let mut dir = Direction::Flat;
    for t in 1..n {
        let step = xs.0[t].cmp(&xs.0[t - 1]);
        let step_dir = match step {
            std::cmp::Ordering::Greater => Direction::Up,
            std::cmp::Ordering::Less => Direction::Down,
            std::cmp::Ordering::Equal => Direction::Flat,
        };
        match (dir, step_dir) {
            (_, Direction::Flat) => {}
            (Direction::Flat, d) => dir = d,
            (d, e) if d == e => {}
            _ => {
                // Direction flips: close the phase at t-1..t boundary.
                out.push((start..t, dir));
                start = t;
                dir = step_dir;
            }
        }
    }
    out.push((start..n, dir));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Cost;

    fn inst() -> Instance {
        Instance::new(
            8,
            2.0,
            vec![
                Cost::abs(1.0, 3.0),
                Cost::abs(1.0, 1.0),
                Cost::abs(1.0, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn breakdown_sums_to_cost() {
        let i = inst();
        let xs = Schedule(vec![3, 1, 5]);
        let b = breakdown(&i, &xs);
        assert!((b.total() - crate::schedule::cost(&i, &xs)).abs() < 1e-12);
        // operating 0; switching beta*(3 + 4) = 14.
        assert_eq!(b.operating, 0.0);
        assert_eq!(b.switching, 14.0);
        assert!((b.switching_share() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_counts_movement() {
        let xs = Schedule(vec![2, 5, 5, 1, 3]);
        let s = stats(&xs);
        assert_eq!(s.total_power_ups, 2 + 3 + 2);
        assert_eq!(s.total_power_downs, 4);
        assert_eq!(s.change_slots, 4);
        assert_eq!(s.peak, 5);
        assert!((s.mean - 3.2).abs() < 1e-12);
    }

    #[test]
    fn phases_decompose_monotone_runs() {
        let xs = Schedule(vec![1, 2, 2, 3, 2, 1, 1, 4]);
        let ps = phases(&xs);
        assert_eq!(
            ps,
            vec![
                (0..4, Direction::Up),
                (4..7, Direction::Down),
                (7..8, Direction::Up),
            ]
        );
        // Ranges tile the schedule.
        let covered: usize = ps.iter().map(|(r, _)| r.len()).sum();
        assert_eq!(covered, xs.len());
    }

    #[test]
    fn flat_schedule_single_phase() {
        let xs = Schedule(vec![3, 3, 3]);
        assert_eq!(phases(&xs), vec![(0..3, Direction::Flat)]);
        assert_eq!(stats(&xs).phase_count, 1);
    }

    #[test]
    fn empty_schedule() {
        let xs = Schedule(vec![]);
        assert!(phases(&xs).is_empty());
        let s = stats(&xs);
        assert_eq!(s.total_power_ups, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn ups_equal_downs_plus_final_state() {
        // Conservation: ups - downs = final state (from x_0 = 0).
        let xs = Schedule(vec![4, 2, 7, 3]);
        let s = stats(&xs);
        assert_eq!(s.total_power_ups - s.total_power_downs, 3);
    }
}
