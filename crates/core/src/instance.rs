//! Problem instances `P = (T, m, beta, F)`.

use crate::cost::{Cost, Unit};
use crate::error::Error;
use serde::{Deserialize, Serialize};

/// An instance of the (general-model) data-center optimization problem:
/// horizon `T = costs.len()`, `m` homogeneous servers, power-up cost `beta`,
/// and one convex operating-cost function per time slot.
///
/// The convention throughout is the paper's eq. (1): switching cost is
/// charged for powering **up** only, and `x_0 = x_{T+1} = 0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    m: u32,
    beta: f64,
    costs: Vec<Cost>,
}

impl Instance {
    /// Build an instance. `beta` must be positive and finite; `m >= 1`.
    pub fn new(m: u32, beta: f64, costs: Vec<Cost>) -> Result<Self, Error> {
        if !(beta.is_finite() && beta > 0.0) {
            return Err(Error::InvalidParameter(format!(
                "beta must be positive and finite, got {beta}"
            )));
        }
        if m == 0 {
            return Err(Error::InvalidParameter("m must be >= 1".into()));
        }
        Ok(Self { m, beta, costs })
    }

    /// Build an instance and verify that every cost function is convex and
    /// non-negative over `0..=m` (O(T m); intended for tests and ingestion
    /// of untrusted data).
    pub fn new_checked(m: u32, beta: f64, costs: Vec<Cost>) -> Result<Self, Error> {
        let inst = Self::new(m, beta, costs)?;
        for (t, f) in inst.costs.iter().enumerate() {
            f.check_convex(m)
                .map_err(|msg| Error::NotConvex { t: t + 1, msg })?;
        }
        Ok(inst)
    }

    /// Empty instance to be grown online via [`Instance::push`].
    pub fn empty(m: u32, beta: f64) -> Result<Self, Error> {
        Self::new(m, beta, Vec::new())
    }

    /// Number of time slots `T`.
    #[inline]
    pub fn horizon(&self) -> usize {
        self.costs.len()
    }

    /// Maximum number of servers `m`.
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Power-up cost `beta`.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Cost function of slot `t`, **1-based** like the paper (`t in [T]`).
    #[inline]
    pub fn cost_fn(&self, t: usize) -> &Cost {
        &self.costs[t - 1]
    }

    /// All cost functions in slot order.
    #[inline]
    pub fn cost_fns(&self) -> &[Cost] {
        &self.costs
    }

    /// Append the next slot's cost function (online arrival).
    pub fn push(&mut self, f: Cost) {
        self.costs.push(f);
    }

    /// The prefix instance containing slots `1..=tau` (for the truncated
    /// workloads `C^L_tau`, `C^U_tau` of Section 3.1).
    pub fn prefix(&self, tau: usize) -> Instance {
        Instance {
            m: self.m,
            beta: self.beta,
            costs: self.costs[..tau].to_vec(),
        }
    }

    /// Pad `m` up to the next power of two per Section 2.2, extending each
    /// cost with `f'(x) = x * (f(m) + eps)` for `x > m`. Returns the padded
    /// instance (a no-op clone if `m` is already a power of two).
    pub fn pad_to_pow2(&self, eps: f64) -> Instance {
        let m2 = self.m.next_power_of_two();
        if m2 == self.m {
            return self.clone();
        }
        let costs = self
            .costs
            .iter()
            .map(|f| Cost::Padded {
                m_orig: self.m,
                eps,
                inner: Box::new(f.clone()),
            })
            .collect();
        Instance {
            m: m2,
            beta: self.beta,
            costs,
        }
    }

    /// The reduction `Psi_l(Phi_l(P))` of Section 2.3: keep only states that
    /// are multiples of `stride = 2^l` and renumber them `0..=m/stride`.
    /// State `x` of the reduced instance corresponds to `x * stride` here;
    /// `beta` scales by `stride` so costs are preserved exactly.
    ///
    /// Requires `stride >= 1` and `stride | m`.
    pub fn reduce(&self, stride: u32) -> Result<Instance, Error> {
        if stride == 0 || !self.m.is_multiple_of(stride) {
            return Err(Error::InvalidParameter(format!(
                "stride {stride} must divide m = {}",
                self.m
            )));
        }
        if stride == 1 {
            return Ok(self.clone());
        }
        let costs = self
            .costs
            .iter()
            .map(|f| {
                // f'(x) = f(x * stride), tabulated over the reduced range.
                let vals = (0..=self.m / stride).map(|x| f.eval(x * stride)).collect();
                Cost::table(vals)
            })
            .collect();
        Ok(Instance {
            m: self.m / stride,
            beta: self.beta * stride as f64,
            costs,
        })
    }
}

/// An instance of the **restricted model** (eq. 2): a single convex unit
/// cost `f(z)` for all slots and a per-slot arrival load `lambda_t`, subject
/// to `x_t >= lambda_t`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RestrictedInstance {
    /// Maximum number of servers.
    pub m: u32,
    /// Power-up cost.
    pub beta: f64,
    /// Unit operating cost of one server at utilisation `z in [0, 1]`.
    pub unit: Unit,
    /// Arrival load per slot; `0 <= lambda_t <= m`.
    pub lambdas: Vec<f64>,
}

impl RestrictedInstance {
    /// Build and validate a restricted instance.
    pub fn new(m: u32, beta: f64, unit: Unit, lambdas: Vec<f64>) -> Result<Self, Error> {
        if !(beta.is_finite() && beta > 0.0) {
            return Err(Error::InvalidParameter(format!(
                "beta must be positive and finite, got {beta}"
            )));
        }
        for (t, l) in lambdas.iter().enumerate() {
            if !(l.is_finite() && *l >= 0.0 && *l <= m as f64) {
                return Err(Error::InvalidParameter(format!(
                    "lambda_{} = {l} out of [0, m]",
                    t + 1
                )));
            }
        }
        Ok(Self {
            m,
            beta,
            unit,
            lambdas,
        })
    }

    /// Convert into a general-model [`Instance`], with slot cost
    /// `x * f(lambda_t / x)` and infinite cost for `x < lambda_t`.
    pub fn to_general(&self) -> Instance {
        let costs = self
            .lambdas
            .iter()
            .map(|&lambda| Cost::Load {
                lambda,
                unit: self.unit.clone(),
            })
            .collect();
        Instance {
            m: self.m,
            beta: self.beta,
            costs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Cost;

    fn toy() -> Instance {
        Instance::new(
            4,
            2.0,
            vec![
                Cost::phi1(1.0),
                Cost::phi0(1.0),
                Cost::quadratic(1.0, 2.0, 0.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Instance::new(0, 1.0, vec![]).is_err());
        assert!(Instance::new(4, 0.0, vec![]).is_err());
        assert!(Instance::new(4, f64::NAN, vec![]).is_err());
        assert!(Instance::new(4, 1.0, vec![]).is_ok());
    }

    #[test]
    fn new_checked_rejects_concave() {
        let bad = Cost::table(vec![0.0, 5.0, 6.0, 6.5, 6.6]);
        let err = Instance::new_checked(4, 1.0, vec![Cost::Zero, bad]).unwrap_err();
        match err {
            Error::NotConvex { t, .. } => assert_eq!(t, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn one_based_access_matches_paper() {
        let inst = toy();
        assert_eq!(inst.horizon(), 3);
        assert_eq!(inst.cost_fn(1).eval(1), 0.0); // phi_1(1) = 0
        assert_eq!(inst.cost_fn(2).eval(0), 0.0); // phi_0(0) = 0
    }

    #[test]
    fn prefix_truncates() {
        let inst = toy();
        let p = inst.prefix(2);
        assert_eq!(p.horizon(), 2);
        assert_eq!(p.m(), inst.m());
        assert_eq!(p.beta(), inst.beta());
    }

    #[test]
    fn pad_to_pow2_roundtrip() {
        let inst = Instance::new(5, 1.5, vec![Cost::quadratic(1.0, 3.0, 0.0)]).unwrap();
        let padded = inst.pad_to_pow2(0.5);
        assert_eq!(padded.m(), 8);
        // Values below the original m are untouched.
        for x in 0..=5 {
            assert_eq!(padded.cost_fn(1).eval(x), inst.cost_fn(1).eval(x));
        }
        // Above, the (convexified) Section 2.2 extension applies:
        // f(5) + (x - 5) * (f(5) + 0.5).
        let f5 = inst.cost_fn(1).eval(5);
        assert_eq!(padded.cost_fn(1).eval(7), f5 + 2.0 * (f5 + 0.5));
        padded.cost_fn(1).check_convex(8).unwrap();
    }

    #[test]
    fn pad_noop_when_power_of_two() {
        let inst = Instance::new(8, 1.0, vec![Cost::Zero]).unwrap();
        let padded = inst.pad_to_pow2(0.1);
        assert_eq!(padded, inst);
    }

    #[test]
    fn reduce_preserves_costs() {
        let inst = Instance::new(8, 1.0, vec![Cost::quadratic(1.0, 3.0, 0.0)]).unwrap();
        let red = inst.reduce(4).unwrap();
        assert_eq!(red.m(), 2);
        assert_eq!(red.beta(), 4.0);
        // Reduced state 1 corresponds to original state 4.
        assert_eq!(red.cost_fn(1).eval(1), inst.cost_fn(1).eval(4));
    }

    #[test]
    fn reduce_composition_lemma1() {
        // Lemma 1 flavour: reduce(2^l) then reduce(2^{k-l}) == reduce(2^k).
        let costs: Vec<Cost> = (0..4)
            .map(|t| Cost::quadratic(0.5 + t as f64, (t * 2) as f64, 0.1))
            .collect();
        let inst = Instance::new(16, 1.25, costs).unwrap();
        let a = inst.reduce(4).unwrap().reduce(2).unwrap();
        let b = inst.reduce(8).unwrap();
        assert_eq!(a.m(), b.m());
        assert_eq!(a.beta(), b.beta());
        for t in 1..=inst.horizon() {
            for x in 0..=a.m() {
                assert_eq!(a.cost_fn(t).eval(x), b.cost_fn(t).eval(x));
            }
        }
    }

    #[test]
    fn reduce_rejects_bad_stride() {
        let inst = Instance::new(8, 1.0, vec![]).unwrap();
        assert!(inst.reduce(3).is_err());
        assert!(inst.reduce(0).is_err());
    }

    #[test]
    fn restricted_to_general() {
        let r = RestrictedInstance::new(
            2,
            2.0,
            Unit::AbsAffine {
                scale: 1.0,
                c0: 1.0,
                c1: 2.0,
            },
            vec![0.5, 1.0],
        )
        .unwrap();
        let g = r.to_general();
        assert_eq!(g.horizon(), 2);
        assert!(g.cost_fn(2).eval(0).is_infinite());
        assert!(g.cost_fn(1).eval(1).is_finite());
    }

    #[test]
    fn restricted_validates_lambda() {
        let unit = Unit::Affine {
            base: 0.0,
            slope: 1.0,
        };
        assert!(RestrictedInstance::new(2, 1.0, unit.clone(), vec![3.0]).is_err());
        assert!(RestrictedInstance::new(2, 1.0, unit, vec![-0.1]).is_err());
    }
}
