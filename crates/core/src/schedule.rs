//! Schedules and cost evaluation.
//!
//! A *schedule* `X = (x_1, ..., x_T)` assigns a number of active servers to
//! each slot, with the boundary convention `x_0 = x_{T+1} = 0`. Costs follow
//! the paper's eq. (1): operating cost plus `beta * (x_t - x_{t-1})^+`
//! (power-up only). Section 5 instead charges `beta/2` per unit in **both**
//! directions and forces a final power-down; [`symmetric_cost`] implements
//! that convention, and `cost == symmetric_cost` for every schedule — a fact
//! unit-tested below and relied on throughout the lower-bound machinery.

use crate::instance::Instance;
use serde::{Deserialize, Serialize};

/// An integral schedule. Thin wrapper over `Vec<u32>` so that helper methods
/// and serde formats have a stable home.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule(pub Vec<u32>);

impl Schedule {
    /// The all-zero schedule of length `t_len`.
    pub fn zeros(t_len: usize) -> Self {
        Schedule(vec![0; t_len])
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the schedule covers no slots.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// State at slot `t` (1-based); `t = 0` returns the boundary state 0.
    #[inline]
    pub fn at(&self, t: usize) -> u32 {
        if t == 0 {
            0
        } else {
            self.0[t - 1]
        }
    }

    /// Validates that every state is within `0..=m` and the length matches
    /// the instance horizon.
    pub fn is_feasible(&self, inst: &Instance) -> bool {
        self.len() == inst.horizon() && self.0.iter().all(|&x| x <= inst.m())
    }

    /// View as a fractional schedule.
    pub fn to_frac(&self) -> FracSchedule {
        FracSchedule(self.0.iter().map(|&x| x as f64).collect())
    }
}

impl From<Vec<u32>> for Schedule {
    fn from(v: Vec<u32>) -> Self {
        Schedule(v)
    }
}

/// A fractional schedule (continuous setting), `x_t in [0, m]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FracSchedule(pub Vec<f64>);

impl FracSchedule {
    /// Number of slots.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the schedule covers no slots.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// State at slot `t` (1-based); `t = 0` returns the boundary state 0.
    #[inline]
    pub fn at(&self, t: usize) -> f64 {
        if t == 0 {
            0.0
        } else {
            self.0[t - 1]
        }
    }

    /// Floor every state (Lemma 4's `\lfloor X \rfloor`).
    pub fn floor(&self) -> Schedule {
        Schedule(self.0.iter().map(|&x| x.max(0.0).floor() as u32).collect())
    }

    /// Ceil every state (Lemma 4's `\lceil X \rceil`).
    pub fn ceil(&self) -> Schedule {
        Schedule(self.0.iter().map(|&x| x.max(0.0).ceil() as u32).collect())
    }
}

/// How fractional states are costed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FracMode {
    /// The paper's continuous extension (eq. 3): linear interpolation of the
    /// integer values. This is the right mode when a discrete instance is
    /// extended to the continuous setting (Sections 2.3 and 4).
    Interpolate,
    /// Each cost variant's natural analytic formula. This is the right mode
    /// for natively-continuous instances (the Section 5 lower bounds).
    Analytic,
}

/// Total cost per eq. (1): `sum_t f_t(x_t) + beta * sum_t (x_t - x_{t-1})^+`
/// with `x_0 = 0`.
pub fn cost(inst: &Instance, xs: &Schedule) -> f64 {
    assert_eq!(
        xs.len(),
        inst.horizon(),
        "schedule length must match instance horizon"
    );
    operating_cost(inst, xs) + switching_cost_up(inst.beta(), &xs.0)
}

/// Operating cost `sum_t f_t(x_t)`.
pub fn operating_cost(inst: &Instance, xs: &Schedule) -> f64 {
    xs.0.iter()
        .enumerate()
        .map(|(i, &x)| inst.cost_fn(i + 1).eval(x))
        .sum()
}

/// Power-up switching cost `beta * sum_t (x_t - x_{t-1})^+`, `x_0 = 0`.
pub fn switching_cost_up(beta: f64, xs: &[u32]) -> f64 {
    let mut prev = 0u32;
    let mut total = 0.0;
    for &x in xs {
        total += beta * x.saturating_sub(prev) as f64;
        prev = x;
    }
    total
}

/// Power-down switching cost `beta * sum_t (x_{t-1} - x_t)^+` including the
/// forced final power-down to `x_{T+1} = 0` (the `C^U` convention of
/// Section 3.1 charges only within `1..=tau`; this helper charges the full
/// horizon plus shutdown).
pub fn switching_cost_down_with_shutdown(beta: f64, xs: &[u32]) -> f64 {
    let mut prev = 0u32;
    let mut total = 0.0;
    for &x in xs {
        total += beta * prev.saturating_sub(x) as f64;
        prev = x;
    }
    total + beta * prev as f64
}

/// Section 5 cost convention: `sum_t f_t(x_t) + (beta/2) * sum_{t=1}^{T+1}
/// |x_t - x_{t-1}|` with `x_0 = x_{T+1} = 0`. Equal to [`cost`] for every
/// schedule (the number of power-ups equals the number of power-downs).
pub fn symmetric_cost(inst: &Instance, xs: &Schedule) -> f64 {
    assert_eq!(xs.len(), inst.horizon());
    let half = inst.beta() / 2.0;
    let mut total = operating_cost(inst, xs);
    let mut prev = 0u32;
    for &x in &xs.0 {
        total += half * (x as f64 - prev as f64).abs();
        prev = x;
    }
    total + half * prev as f64
}

/// Fractional total cost in the chosen [`FracMode`].
pub fn frac_cost(inst: &Instance, xs: &FracSchedule, mode: FracMode) -> f64 {
    assert_eq!(xs.len(), inst.horizon());
    frac_operating_cost(inst, xs, mode) + frac_switching_cost_up(inst.beta(), &xs.0)
}

/// Fractional operating cost.
pub fn frac_operating_cost(inst: &Instance, xs: &FracSchedule, mode: FracMode) -> f64 {
    xs.0.iter()
        .enumerate()
        .map(|(i, &x)| {
            let f = inst.cost_fn(i + 1);
            match mode {
                FracMode::Interpolate => f.interpolate(x),
                FracMode::Analytic => f.eval_analytic(x),
            }
        })
        .sum()
}

/// Fractional power-up switching cost.
pub fn frac_switching_cost_up(beta: f64, xs: &[f64]) -> f64 {
    let mut prev = 0.0f64;
    let mut total = 0.0;
    for &x in xs {
        total += beta * (x - prev).max(0.0);
        prev = x;
    }
    total
}

/// Fractional Section 5 symmetric cost (both directions at `beta/2`, forced
/// shutdown).
pub fn frac_symmetric_cost(inst: &Instance, xs: &FracSchedule, mode: FracMode) -> f64 {
    assert_eq!(xs.len(), inst.horizon());
    let half = inst.beta() / 2.0;
    let mut total = frac_operating_cost(inst, xs, mode);
    let mut prev = 0.0f64;
    for &x in &xs.0 {
        total += half * (x - prev).abs();
        prev = x;
    }
    total + half * prev
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Cost;

    fn inst() -> Instance {
        Instance::new(
            4,
            2.0,
            vec![
                Cost::table(vec![5.0, 3.0, 2.0, 2.5, 4.0]),
                Cost::table(vec![1.0, 1.5, 2.0, 2.5, 3.0]),
                Cost::table(vec![4.0, 2.0, 1.0, 3.0, 6.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn cost_matches_hand_computation() {
        let i = inst();
        let xs = Schedule(vec![2, 1, 3]);
        // operating: 2.0 + 1.5 + 3.0 = 6.5
        // switching: beta * ((2-0)+ + (1-2)+ + (3-1)+) = 2 * (2 + 0 + 2) = 8
        assert!((cost(&i, &xs) - 14.5).abs() < 1e-12);
        assert!((operating_cost(&i, &xs) - 6.5).abs() < 1e-12);
    }

    #[test]
    fn symmetric_equals_powerup_convention() {
        let i = inst();
        for xs in [
            Schedule(vec![0, 0, 0]),
            Schedule(vec![4, 0, 4]),
            Schedule(vec![1, 2, 3]),
            Schedule(vec![3, 2, 1]),
            Schedule(vec![2, 2, 2]),
        ] {
            let a = cost(&i, &xs);
            let b = symmetric_cost(&i, &xs);
            assert!((a - b).abs() < 1e-12, "{xs:?}: {a} vs {b}");
        }
    }

    #[test]
    fn up_plus_down_identity_eq14() {
        // Eq. (14): S^L_tau(X) = S^U_tau(X) + beta * x_tau, where S^U does
        // not include the final shutdown.
        let beta = 2.0;
        let xs = [3u32, 1, 4, 2];
        let s_l = switching_cost_up(beta, &xs); // beta * (3 + 0 + 3 + 0) = 12
        let s_u_no_shutdown = switching_cost_down_with_shutdown(beta, &xs) - beta * xs[3] as f64;
        assert!((s_u_no_shutdown - 8.0).abs() < 1e-12);
        assert!((s_l - (s_u_no_shutdown + beta * xs[3] as f64)).abs() < 1e-12);
    }

    #[test]
    fn frac_cost_interpolation_vs_analytic() {
        let i = Instance::new(4, 1.0, vec![Cost::quadratic(1.0, 2.0, 0.0)]).unwrap();
        let xs = FracSchedule(vec![1.5]);
        let interp = frac_cost(&i, &xs, FracMode::Interpolate);
        let exact = frac_cost(&i, &xs, FracMode::Analytic);
        // interpolation of strictly convex >= analytic
        assert!(interp > exact);
        // interp operating: 0.5*f(1) + 0.5*f(2) = 0.5; switching: 1.5 * beta
        assert!((interp - (0.5 * 1.0 + 0.5 * 0.0 + 1.5)).abs() < 1e-12);
    }

    #[test]
    fn integral_frac_schedule_costs_agree() {
        let i = inst();
        let xs = Schedule(vec![2, 1, 3]);
        let f = xs.to_frac();
        assert!((cost(&i, &xs) - frac_cost(&i, &f, FracMode::Interpolate)).abs() < 1e-12);
        let sym_i = symmetric_cost(&i, &xs);
        let sym_f = frac_symmetric_cost(&i, &f, FracMode::Interpolate);
        assert!((sym_i - sym_f).abs() < 1e-12);
    }

    #[test]
    fn floor_ceil() {
        let f = FracSchedule(vec![0.2, 1.0, 2.7]);
        assert_eq!(f.floor(), Schedule(vec![0, 1, 2]));
        assert_eq!(f.ceil(), Schedule(vec![1, 1, 3]));
    }

    #[test]
    fn feasibility() {
        let i = inst();
        assert!(Schedule(vec![0, 4, 2]).is_feasible(&i));
        assert!(!Schedule(vec![0, 5, 2]).is_feasible(&i));
        assert!(!Schedule(vec![0, 1]).is_feasible(&i));
    }

    #[test]
    fn boundary_state_access() {
        let s = Schedule(vec![7, 8]);
        assert_eq!(s.at(0), 0);
        assert_eq!(s.at(1), 7);
        let f = FracSchedule(vec![0.5]);
        assert_eq!(f.at(0), 0.0);
    }

    #[test]
    fn empty_schedule_zero_cost() {
        let i = Instance::new(4, 1.0, vec![]).unwrap();
        assert_eq!(cost(&i, &Schedule::zeros(0)), 0.0);
    }
}
