//! Error types shared across the workspace.

use std::fmt;

/// Errors raised while constructing or validating problem data.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A scalar parameter was out of range (message explains which).
    InvalidParameter(String),
    /// Cost function of slot `t` (1-based) failed the convexity check.
    NotConvex {
        /// Offending slot.
        t: usize,
        /// Reason reported by the checker.
        msg: String,
    },
    /// A schedule was inconsistent with its instance.
    InfeasibleSchedule(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::NotConvex { t, msg } => {
                write!(f, "cost function at slot {t} is not convex: {msg}")
            }
            Error::InfeasibleSchedule(msg) => write!(f, "infeasible schedule: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::NotConvex {
            t: 3,
            msg: "boom".into(),
        };
        assert!(e.to_string().contains("slot 3"));
        assert!(Error::InvalidParameter("x".into())
            .to_string()
            .contains("x"));
        assert!(Error::InfeasibleSchedule("y".into())
            .to_string()
            .contains("y"));
    }
}
