//! Convex operating-cost functions.
//!
//! The paper models the operating cost at time `t` by a non-negative convex
//! function `f_t : [m]_0 -> R_{>=0}` (general model, eq. 1) or by
//! `x * f(lambda/x)` subject to `x >= lambda` (restricted model, eq. 2).
//!
//! [`Cost`] is a closed enum of cost-function shapes. Using an enum rather
//! than a trait object keeps instances `Clone + Serialize` and lets the
//! optimizers stay monomorphic and fast. Every variant supports
//!
//! * [`Cost::eval`] — exact evaluation at an **integer** state,
//! * [`Cost::eval_analytic`] — evaluation at a **real** state using the
//!   variant's natural analytic formula (used by natively-continuous
//!   instances such as the Section 5 lower-bound constructions),
//! * [`Cost::interpolate`] — the paper's continuous extension (eq. 3):
//!   linear interpolation between adjacent integer states.
//!
//! States outside a variant's feasible region (e.g. `x < lambda` in the
//! restricted model) evaluate to `f64::INFINITY`, which the dynamic programs
//! treat as "forbidden".

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Parameters of the Lin et al. style per-server cost used by the data-center
/// workload builders: energy plus a queueing-delay penalty.
///
/// A server running at utilisation `rho = lambda/x in [0, 1]` costs
///
/// ```text
/// energy(rho) = e_idle + (e_peak - e_idle) * rho
/// delay(rho)  = delay_weight * rho / (1 - rho + delay_eps)
/// ```
///
/// and the slot cost is `x * (energy + delay)`, which is convex in `x` for
/// fixed `lambda` (decreasing marginal utilisation). `delay_eps > 0` keeps
/// the delay finite at full utilisation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerParams {
    /// Idle power draw of one active server (cost units per slot).
    pub e_idle: f64,
    /// Peak power draw of one fully utilised server.
    pub e_peak: f64,
    /// Weight of the queueing-delay term.
    pub delay_weight: f64,
    /// Regulariser that keeps the delay finite at `rho = 1`.
    pub delay_eps: f64,
}

impl Default for ServerParams {
    fn default() -> Self {
        Self {
            e_idle: 1.0,
            e_peak: 2.0,
            delay_weight: 1.0,
            delay_eps: 0.05,
        }
    }
}

impl ServerParams {
    /// Cost of a single server running at utilisation `rho` (clamped to
    /// `[0, 1]`).
    #[inline]
    pub fn unit_cost(&self, rho: f64) -> f64 {
        let rho = rho.clamp(0.0, 1.0);
        let energy = self.e_idle + (self.e_peak - self.e_idle) * rho;
        let delay = self.delay_weight * rho / (1.0 - rho + self.delay_eps);
        energy + delay
    }
}

/// A single-server load-cost function `f(z)` for the restricted model
/// (eq. 2), where `z in [0, 1]` is the per-server utilisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // variant docs explain each field's role
pub enum Unit {
    /// `scale * |c0 - c1 * z|` — the shape used by every lower-bound proof
    /// in Section 5 (`f(z) = eps*|1 - 2z|`, `f(z) = eps*|1 - k z|`).
    AbsAffine { scale: f64, c0: f64, c1: f64 },
    /// `base + slope * z` (affine, convex).
    Affine { base: f64, slope: f64 },
    /// Energy + delay per [`ServerParams`].
    Server(ServerParams),
}

impl Unit {
    /// Evaluate the unit cost at utilisation `z`.
    #[inline]
    pub fn eval(&self, z: f64) -> f64 {
        match self {
            Unit::AbsAffine { scale, c0, c1 } => scale * (c0 - c1 * z).abs(),
            Unit::Affine { base, slope } => base + slope * z,
            Unit::Server(p) => p.unit_cost(z),
        }
    }
}

/// A non-negative convex operating-cost function over server counts.
///
/// See the module docs for the evaluation modes. Construct instances via the
/// provided constructors ([`Cost::abs`], [`Cost::quadratic`], ...) or the
/// enum literals directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // variant docs explain each field's role
pub enum Cost {
    /// Identically zero. Used for padding slots (e.g. `f_0` in the paper).
    Zero,
    /// Constant `c >= 0`.
    Const(f64),
    /// `slope * |x - center|`. The adversarial building block
    /// (`phi_0(x) = eps*|x|`, `phi_1(x) = eps*|1 - x|`, Section 5).
    Abs { slope: f64, center: f64 },
    /// `a * (x - center)^2 + offset`, `a >= 0`, `offset >= 0`.
    Quadratic { a: f64, center: f64, offset: f64 },
    /// `intercept + slope * x`; requires non-negativity over `[0, m]`, which
    /// [`Cost::check_convex`] verifies.
    Linear { intercept: f64, slope: f64 },
    /// Hinge `slope * max(0, x - knee)` plus `drop * max(0, knee - x)`:
    /// a general piecewise-linear "V" with independent arms.
    Hinge {
        knee: f64,
        left_slope: f64,
        right_slope: f64,
    },
    /// Explicit table of values for `x = 0..=m`. Shared so clones are cheap.
    Table(Arc<Vec<f64>>),
    /// Restricted-model cost `x * f(lambda/x)` subject to `x >= lambda`
    /// (eq. 2). Evaluates to `+inf` for `x < lambda`.
    Load { lambda: f64, unit: Unit },
    /// Data-center slot cost `x * unit_cost(lambda/x)` with **soft**
    /// capacity: for `x >= ceil(lambda)` the perspective-function cost
    /// applies; below, the cost extends linearly backwards with per-missing-
    /// server slope `max(overload, drop)` where `drop` is whatever slope is
    /// needed to keep the function convex at the junction. Convex in `x`.
    Server {
        lambda: f64,
        params: ServerParams,
        overload: f64,
    },
    /// `factor * inner(x)` — used by the Section 5.4 dilation (`f'_{t,u} =
    /// f_t / (n w)`).
    Scaled { factor: f64, inner: Box<Cost> },
    /// Power-of-two padding (Section 2.2): `inner(x)` for `x <= m_orig` and
    /// a linear extension `inner(m_orig) + (x - m_orig) * (inner(m_orig) +
    /// eps)` above.
    ///
    /// Note: the paper writes the extension as `x * (f_t(m) + eps)`, which
    /// taken literally jumps discontinuously at `m` and is *not* convex at
    /// `m + 1`. Its stated justification ("the greatest slope of `f_t` is
    /// `f_t(m) - f_t(m-1) <= f_t(m)`") is exactly the convexity condition
    /// for the slope-based extension used here, which also preserves the
    /// only property the algorithm needs: states above `m` are never
    /// optimal because the extension increases strictly.
    Padded {
        m_orig: u32,
        eps: f64,
        inner: Box<Cost>,
    },
}

impl Cost {
    /// `slope * |x - center|`.
    pub fn abs(slope: f64, center: f64) -> Self {
        Cost::Abs { slope, center }
    }

    /// The adversary function `phi_0(x) = slope * |x|`.
    pub fn phi0(slope: f64) -> Self {
        Cost::Abs { slope, center: 0.0 }
    }

    /// The adversary function `phi_1(x) = slope * |1 - x|`.
    pub fn phi1(slope: f64) -> Self {
        Cost::Abs { slope, center: 1.0 }
    }

    /// `a (x - center)^2 + offset`.
    pub fn quadratic(a: f64, center: f64, offset: f64) -> Self {
        Cost::Quadratic { a, center, offset }
    }

    /// Table cost from explicit per-state values.
    pub fn table(values: Vec<f64>) -> Self {
        Cost::Table(Arc::new(values))
    }

    /// Restricted-model cost `x * unit(lambda / x)`, `x >= lambda` enforced.
    pub fn load(lambda: f64, unit: Unit) -> Self {
        Cost::Load { lambda, unit }
    }

    /// Scale this cost by `factor`.
    pub fn scaled(self, factor: f64) -> Self {
        Cost::Scaled {
            factor,
            inner: Box::new(self),
        }
    }

    /// Evaluate at an integer state.
    #[inline]
    pub fn eval(&self, x: u32) -> f64 {
        self.eval_analytic(x as f64)
    }

    /// Evaluate at a real state using the variant's analytic formula.
    ///
    /// For [`Cost::Table`] this falls back to linear interpolation, which is
    /// the only sensible continuous reading of tabulated data (and matches
    /// eq. 3 exactly there).
    pub fn eval_analytic(&self, x: f64) -> f64 {
        match self {
            Cost::Zero => 0.0,
            Cost::Const(c) => *c,
            Cost::Abs { slope, center } => slope * (x - center).abs(),
            Cost::Quadratic { a, center, offset } => {
                let d = x - center;
                a * d * d + offset
            }
            Cost::Linear { intercept, slope } => intercept + slope * x,
            Cost::Hinge {
                knee,
                left_slope,
                right_slope,
            } => {
                if x >= *knee {
                    right_slope * (x - knee)
                } else {
                    left_slope * (knee - x)
                }
            }
            Cost::Table(v) => interpolate_table(v, x),
            Cost::Load { lambda, unit } => {
                if x + 1e-12 < *lambda {
                    f64::INFINITY
                } else if x <= 0.0 {
                    // lambda <= 0 here; zero servers serving zero load.
                    0.0
                } else {
                    x * unit.eval((lambda / x).clamp(0.0, 1.0))
                }
            }
            Cost::Server {
                lambda,
                params,
                overload,
            } => {
                // Perspective function g(x) = x * unit(lambda/x), convex on
                // x >= lambda when unit is convex.
                let g = |x: f64| {
                    if x <= 0.0 {
                        0.0
                    } else {
                        x * params.unit_cost((lambda / x).clamp(0.0, 1.0))
                    }
                };
                // Smallest integer state that can serve the load without
                // overload (0 when there is no load: idle fleet costs 0).
                let x0 = lambda.max(0.0).ceil();
                if x >= x0 {
                    g(x)
                } else {
                    // Backward linear extension with a slope steep enough to
                    // dominate the junction slope of g, keeping convexity.
                    let junction_drop = (g(x0) - g(x0 + 1.0)).max(0.0);
                    let pen = overload.max(junction_drop);
                    g(x0) + (x0 - x) * pen
                }
            }
            Cost::Scaled { factor, inner } => factor * inner.eval_analytic(x),
            Cost::Padded { m_orig, eps, inner } => {
                let m = *m_orig as f64;
                if x <= m {
                    inner.eval_analytic(x)
                } else {
                    let fm = inner.eval(*m_orig);
                    fm + (x - m) * (fm + eps)
                }
            }
        }
    }

    /// The paper's continuous extension (eq. 3): linear interpolation of the
    /// integer values. For `x` outside `[0, m]` the nearest endpoint value
    /// is extended linearly using the boundary slope of zero (clamped).
    pub fn interpolate(&self, x: f64) -> f64 {
        if x < 0.0 {
            return self.eval(0);
        }
        let lo = x.floor();
        let hi = lo + 1.0;
        let frac = x - lo;
        if frac == 0.0 {
            return self.eval(lo as u32);
        }
        let f_lo = self.eval(lo as u32);
        let f_hi = self.eval(hi as u32);
        (1.0 - frac) * f_lo + frac * f_hi
    }

    /// Verify convexity and non-negativity of the integer restriction over
    /// `0..=m`, allowing an infinite prefix (infeasible low states in the
    /// restricted model). Returns `Err` with a human-readable reason.
    pub fn check_convex(&self, m: u32) -> Result<(), String> {
        let vals: Vec<f64> = (0..=m).map(|x| self.eval(x)).collect();
        // Infinite values must form a prefix.
        let first_finite = vals.iter().position(|v| v.is_finite());
        let Some(first_finite) = first_finite else {
            return Err("cost is infinite at every state".into());
        };
        for (x, v) in vals.iter().enumerate().skip(first_finite) {
            if !v.is_finite() {
                return Err(format!(
                    "infinite cost at state {x} after finite state {first_finite}",
                ));
            }
            if *v < -1e-12 {
                return Err(format!("negative cost {v} at state {x}"));
            }
        }
        let fin = &vals[first_finite..];
        for w in fin.windows(3) {
            let (a, b, c) = (w[0], w[1], w[2]);
            let tol = 1e-9 * (1.0 + a.abs().max(b.abs()).max(c.abs()));
            if (b - a) > (c - b) + tol {
                return Err(format!(
                    "not convex: slopes {} then {} (values {a}, {b}, {c})",
                    b - a,
                    c - b,
                ));
            }
        }
        Ok(())
    }

    /// Smallest integer minimizer over `0..=m` (the paper's `x_t^{min-}`).
    pub fn argmin_low(&self, m: u32) -> u32 {
        let mut best = 0u32;
        let mut best_v = f64::INFINITY;
        for x in 0..=m {
            let v = self.eval(x);
            if v < best_v {
                best_v = v;
                best = x;
            }
        }
        best
    }

    /// Greatest integer minimizer over `0..=m` (the paper's `x_t^{min+}`).
    pub fn argmin_high(&self, m: u32) -> u32 {
        let mut best = 0u32;
        let mut best_v = f64::INFINITY;
        for x in 0..=m {
            let v = self.eval(x);
            if v <= best_v {
                best_v = v;
                best = x;
            }
        }
        best
    }
}

fn interpolate_table(v: &[f64], x: f64) -> f64 {
    debug_assert!(!v.is_empty());
    let last = (v.len() - 1) as f64;
    let x = x.clamp(0.0, last);
    let lo = x.floor() as usize;
    let frac = x - lo as f64;
    if frac == 0.0 {
        v[lo]
    } else {
        (1.0 - frac) * v[lo] + frac * v[lo + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_matches_phi_functions() {
        let phi0 = Cost::phi0(0.5);
        let phi1 = Cost::phi1(0.5);
        assert_eq!(phi0.eval(0), 0.0);
        assert_eq!(phi0.eval(3), 1.5);
        assert_eq!(phi1.eval(1), 0.0);
        assert_eq!(phi1.eval(0), 0.5);
        assert_eq!(phi1.eval(4), 1.5);
    }

    #[test]
    fn quadratic_eval_and_convexity() {
        let q = Cost::quadratic(2.0, 3.0, 1.0);
        assert_eq!(q.eval(3), 1.0);
        assert_eq!(q.eval(0), 19.0);
        q.check_convex(10).unwrap();
    }

    #[test]
    fn table_interpolation_matches_eq3() {
        let t = Cost::table(vec![4.0, 1.0, 0.0, 5.0]);
        assert_eq!(t.eval(2), 0.0);
        // eq. 3 at x = 1.25: 0.75*f(1) + 0.25*f(2)
        assert!((t.interpolate(1.25) - 0.75).abs() < 1e-12);
        // analytic == interpolation for tables
        assert_eq!(t.eval_analytic(1.25), t.interpolate(1.25));
    }

    #[test]
    fn load_infeasible_below_lambda() {
        let f = Cost::load(
            1.0,
            Unit::AbsAffine {
                scale: 0.1,
                c0: 1.0,
                c1: 2.0,
            },
        );
        assert!(f.eval(0).is_infinite());
        // x = 1: 1 * 0.1*|1-2| = 0.1
        assert!((f.eval(1) - 0.1).abs() < 1e-12);
        // x = 2: 2 * 0.1*|1-1| = 0
        assert!((f.eval(2) - 0.0).abs() < 1e-12);
        f.check_convex(8).unwrap();
    }

    #[test]
    fn restricted_model_theorem5_identity() {
        // Proof of Theorem 5: with f(z) = eps|1-2z| and two servers,
        // lambda = 0.5 gives cost eps*|x^L - 1| = eps*|x^G| and lambda = 1
        // gives eps*|x^L - 2| = eps*|1 - x^G| where x^L = x^G + 1.
        let eps = 0.25;
        let unit = Unit::AbsAffine {
            scale: eps,
            c0: 1.0,
            c1: 2.0,
        };
        let l0 = Cost::load(0.5, unit.clone());
        let l1 = Cost::load(1.0, unit);
        let phi0 = Cost::phi0(eps);
        let phi1 = Cost::phi1(eps);
        for xg in 0u32..=1 {
            let xl = xg + 1;
            assert!((l0.eval(xl) - phi0.eval(xg)).abs() < 1e-12, "l0 at {xl}");
            assert!((l1.eval(xl) - phi1.eval(xg)).abs() < 1e-12, "l1 at {xl}");
        }
    }

    #[test]
    fn server_cost_is_convex_and_nonneg() {
        let c = Cost::Server {
            lambda: 3.7,
            params: ServerParams::default(),
            overload: 50.0,
        };
        c.check_convex(32).unwrap();
        assert!(c.eval(0) > 0.0);
    }

    #[test]
    fn padded_cost_matches_section_2_2() {
        let inner = Cost::quadratic(1.0, 2.0, 0.0);
        let padded = Cost::Padded {
            m_orig: 3,
            eps: 0.5,
            inner: Box::new(inner.clone()),
        };
        for x in 0..=3 {
            assert_eq!(padded.eval(x), inner.eval(x));
        }
        // above m: f(3) + (x - 3) * (f(3) + eps) = 1 + (x - 3) * 1.5
        assert_eq!(padded.eval(4), 1.0 + 1.5);
        assert_eq!(padded.eval(6), 1.0 + 3.0 * 1.5);
        padded.check_convex(8).unwrap();
    }

    #[test]
    fn scaled_cost() {
        let c = Cost::phi1(1.0).scaled(0.25);
        assert_eq!(c.eval(0), 0.25);
        assert_eq!(c.eval(1), 0.0);
    }

    #[test]
    fn argmin_low_high() {
        let t = Cost::table(vec![3.0, 1.0, 1.0, 1.0, 2.0]);
        assert_eq!(t.argmin_low(4), 1);
        assert_eq!(t.argmin_high(4), 3);
    }

    #[test]
    fn convexity_rejects_concave() {
        let t = Cost::table(vec![0.0, 2.0, 3.0]);
        assert!(t.check_convex(2).is_err());
    }

    #[test]
    fn convexity_rejects_negative() {
        let t = Cost::table(vec![0.0, -1.0, 0.0]);
        assert!(t.check_convex(2).is_err());
    }

    #[test]
    fn convexity_rejects_infinite_interior() {
        let t = Cost::table(vec![0.0, f64::INFINITY, 0.0]);
        assert!(t.check_convex(2).is_err());
    }

    #[test]
    fn convexity_allows_infinite_prefix() {
        let t = Cost::table(vec![f64::INFINITY, f64::INFINITY, 1.0, 2.0]);
        t.check_convex(3).unwrap();
    }

    #[test]
    fn interpolate_at_integers_is_exact() {
        let q = Cost::quadratic(1.0, 1.5, 0.0);
        for x in 0..5u32 {
            assert_eq!(q.interpolate(x as f64), q.eval(x));
        }
        // Between integers, interpolation of a strictly convex function lies
        // above the analytic value.
        assert!(q.interpolate(1.5) > q.eval_analytic(1.5));
    }

    #[test]
    fn serde_round_trip() {
        let c = Cost::Padded {
            m_orig: 3,
            eps: 0.5,
            inner: Box::new(Cost::quadratic(1.0, 2.0, 0.0)),
        };
        let s = serde_json::to_string(&c).unwrap();
        let back: Cost = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }
}
