//! # rsdc-core — the discrete data-center right-sizing problem model
//!
//! Core types for the reproduction of Albers & Quedenfeld, *Optimal
//! Algorithms for Right-Sizing Data Centers* (SPAA 2018, extended version
//! arXiv:1807.05112v2).
//!
//! The problem: a data center has `m` homogeneous servers; at each time slot
//! `t = 1..=T` a non-negative convex function `f_t` prices running `x_t`
//! active servers, and powering a server up costs `beta`. Find the integral
//! schedule `X = (x_1, ..., x_T)` minimizing
//!
//! ```text
//! sum_t f_t(x_t) + beta * sum_t (x_t - x_{t-1})^+ ,   x_0 = x_{T+1} = 0.
//! ```
//!
//! This crate contains the *model* only: cost functions ([`Cost`]),
//! instances ([`Instance`], [`RestrictedInstance`]), schedules
//! ([`Schedule`], [`FracSchedule`]) and cost evaluators. Algorithms live in
//! `rsdc-offline` (optimal offline solvers) and `rsdc-online` (competitive
//! online algorithms); adversarial lower-bound constructions live in
//! `rsdc-adversary`.
//!
//! ## Example
//!
//! ```
//! use rsdc_core::prelude::*;
//!
//! // Three slots, up to 4 servers, power-up cost 2.
//! let inst = Instance::new(4, 2.0, vec![
//!     Cost::quadratic(1.0, 3.0, 0.0), // wants ~3 servers
//!     Cost::quadratic(1.0, 1.0, 0.0), // wants ~1 server
//!     Cost::quadratic(1.0, 4.0, 0.0), // wants ~4 servers
//! ]).unwrap();
//!
//! let xs = Schedule(vec![3, 2, 4]);
//! assert!(xs.is_feasible(&inst));
//! let total = rsdc_core::schedule::cost(&inst, &xs);
//! assert!(total > 0.0);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod cost;
pub mod error;
pub mod instance;
pub mod schedule;

pub use analysis::{
    breakdown, phases, stats as schedule_stats, CostBreakdown, Direction, ScheduleStats,
};
pub use cost::{Cost, ServerParams, Unit};
pub use error::Error;
pub use instance::{Instance, RestrictedInstance};
pub use schedule::{FracMode, FracSchedule, Schedule};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::cost::{Cost, ServerParams, Unit};
    pub use crate::error::Error;
    pub use crate::instance::{Instance, RestrictedInstance};
    pub use crate::schedule::{
        cost, frac_cost, frac_operating_cost, frac_switching_cost_up, frac_symmetric_cost,
        operating_cost, switching_cost_up, symmetric_cost, FracMode, FracSchedule, Schedule,
    };
}
