//! Response-time estimation via the M/M/c queue (Erlang C).
//!
//! The operating-cost functions price delay through a convex surrogate
//! (`rho/(1 - rho + eps)`); the simulator can report the *queueing-theory*
//! response time for the realized schedule, so experiments can check that
//! optimizing the surrogate actually controls the real metric.
//!
//! Model: each slot is an M/M/c system with `c = serving` servers, arrival
//! rate `lambda` (load units per slot) and per-server service rate `mu = 1`
//! (one load unit per slot). For `lambda >= c` the queue is unstable and
//! the response time is reported as `f64::INFINITY`.

use crate::metrics::Metrics;

/// Erlang-C probability that an arriving job must wait, for an M/M/c queue
/// with offered load `a = lambda/mu` and `c` servers. Computed with the
/// standard stable recurrence on the Erlang-B values.
pub fn erlang_c(c: u32, a: f64) -> f64 {
    assert!(a >= 0.0, "offered load must be non-negative");
    if c == 0 {
        return 1.0;
    }
    if a == 0.0 {
        return 0.0;
    }
    if a >= c as f64 {
        return 1.0; // unstable: everyone waits
    }
    // Erlang-B recurrence: B(0) = 1; B(k) = a*B(k-1) / (k + a*B(k-1)).
    let mut b = 1.0f64;
    for k in 1..=c {
        b = a * b / (k as f64 + a * b);
    }
    let rho = a / c as f64;
    // Erlang-C from Erlang-B.
    b / (1.0 - rho + rho * b)
}

/// Mean response time (sojourn) of an M/M/c queue with `mu = 1`:
/// `W = C(c, a) / (c - a) + 1`. `INFINITY` when unstable or `c = 0` with
/// positive load; `1.0` (pure service time) when idle capacity abounds.
pub fn mm_c_response_time(c: u32, lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return if c == 0 { 0.0 } else { 1.0 };
    }
    if c == 0 || lambda >= c as f64 {
        return f64::INFINITY;
    }
    let pc = erlang_c(c, lambda);
    pc / (c as f64 - lambda) + 1.0
}

/// Latency summary over a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Load-weighted mean response time over stable slots.
    pub mean_response: f64,
    /// Worst stable-slot response time.
    pub worst_response: f64,
    /// Fraction of offered load arriving in unstable (overloaded) slots.
    pub unstable_load_fraction: f64,
}

/// Compute the latency summary for a run's per-slot records.
pub fn latency_summary(metrics: &Metrics) -> LatencySummary {
    let mut weighted = 0.0;
    let mut stable_load = 0.0;
    let mut unstable_load = 0.0;
    let mut worst = 0.0f64;
    for r in metrics.records() {
        if r.load <= 0.0 {
            continue;
        }
        let w = mm_c_response_time(r.serving, r.load);
        if w.is_finite() {
            weighted += w * r.load;
            stable_load += r.load;
            worst = worst.max(w);
        } else {
            unstable_load += r.load;
        }
    }
    let total = stable_load + unstable_load;
    LatencySummary {
        mean_response: if stable_load > 0.0 {
            // The weighted mean is mathematically <= worst; guard against
            // the one-ulp rounding the division can introduce.
            (weighted / stable_load).min(worst)
        } else {
            0.0
        },
        worst_response: worst,
        unstable_load_fraction: if total > 0.0 {
            unstable_load / total
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::server::ServerConfig;

    #[test]
    fn erlang_c_known_values() {
        // Single server: C(1, a) = a (the M/M/1 waiting probability = rho).
        for a in [0.1, 0.5, 0.9] {
            assert!((erlang_c(1, a) - a).abs() < 1e-12, "a={a}");
        }
        // Deep under-load: almost nobody waits.
        assert!(erlang_c(100, 1.0) < 1e-10);
        // Saturation: everyone waits.
        assert_eq!(erlang_c(4, 4.0), 1.0);
        assert_eq!(erlang_c(0, 1.0), 1.0);
        assert_eq!(erlang_c(4, 0.0), 0.0);
    }

    #[test]
    fn erlang_c_monotone_in_load() {
        let mut prev = 0.0;
        for i in 1..10 {
            let a = i as f64 * 0.4;
            let c = erlang_c(4, a);
            assert!(c >= prev - 1e-12, "a={a}: {c} < {prev}");
            prev = c;
        }
    }

    #[test]
    fn response_time_limits() {
        // M/M/1: W = 1/(1 - rho) for mu = 1.
        let w = mm_c_response_time(1, 0.5);
        assert!((w - 2.0).abs() < 1e-9, "W = {w}");
        assert_eq!(mm_c_response_time(2, 2.5), f64::INFINITY);
        assert_eq!(mm_c_response_time(0, 1.0), f64::INFINITY);
        assert_eq!(mm_c_response_time(4, 0.0), 1.0);
        assert_eq!(mm_c_response_time(0, 0.0), 0.0);
    }

    #[test]
    fn more_servers_reduce_latency() {
        let lambda = 3.0;
        let mut prev = f64::INFINITY;
        for c in 4..10 {
            let w = mm_c_response_time(c, lambda);
            assert!(w <= prev + 1e-12, "c={c}");
            prev = w;
        }
    }

    #[test]
    fn summary_over_simulated_run() {
        let mut cluster = Cluster::new(
            4,
            ServerConfig {
                wake_slots: 0,
                ..Default::default()
            },
        );
        let metrics = cluster.run(&[4, 4, 1, 4], &[2.0, 3.0, 3.0, 0.0]);
        let s = latency_summary(&metrics);
        // Slot 3 is overloaded (1 server, load 3): its load is unstable.
        assert!(s.unstable_load_fraction > 0.0);
        assert!((s.unstable_load_fraction - 3.0 / 8.0).abs() < 1e-9);
        assert!(s.mean_response >= 1.0);
        assert!(s.worst_response >= s.mean_response);
    }

    #[test]
    fn summary_of_idle_run() {
        let mut cluster = Cluster::new(2, ServerConfig::default());
        let metrics = cluster.run(&[0, 0], &[0.0, 0.0]);
        let s = latency_summary(&metrics);
        assert_eq!(s.mean_response, 0.0);
        assert_eq!(s.unstable_load_fraction, 0.0);
    }
}
