//! # rsdc-sim — data-center simulator substrate
//!
//! Grounds the abstract optimization problem in a physical model:
//!
//! * [`server`] — per-server sleep/wake state machine with boot latency and
//!   wake energy (the phenomena `beta` prices);
//! * [`cluster`] — a fleet driven by per-slot target counts, with load
//!   dispatch and power accounting;
//! * [`metrics`] — energy, drop-rate and utilisation aggregation;
//! * [`runner`] — run online policies or replay offline schedules over
//!   workload traces (experiment E11's engine).

#![warn(missing_docs)]

pub mod cluster;
pub mod latency;
pub mod metrics;
pub mod runner;
pub mod server;

pub use cluster::Cluster;
pub use latency::{latency_summary, mm_c_response_time, LatencySummary};
pub use metrics::{Metrics, SlotRecord};
pub use runner::{
    simulate_best_static, simulate_offline_optimum, simulate_online, simulate_schedule, SimConfig,
    SimReport,
};
pub use server::{Server, ServerConfig, ServerState, SlotRole};
