//! Individual server model: sleep/active states with wake latency.
//!
//! The optimization problem abstracts a server into "active or asleep with
//! a power-up cost `beta`". The simulator grounds that abstraction: a
//! waking server burns peak power for `wake_slots` slots *without serving
//! traffic*, which is exactly the phenomenon `beta` prices in the paper's
//! model (energy plus migration delays).

use serde::{Deserialize, Serialize};

/// Physical configuration of one server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Power draw when idle-active (per slot).
    pub power_idle: f64,
    /// Power draw at full utilisation (per slot).
    pub power_peak: f64,
    /// Power draw while asleep.
    pub power_sleep: f64,
    /// Slots needed to transition sleep -> active.
    pub wake_slots: u32,
    /// Extra one-off energy burned by a wake-up (state save/restore etc.).
    pub wake_energy: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            power_idle: 1.0,
            power_peak: 2.0,
            power_sleep: 0.05,
            wake_slots: 1,
            wake_energy: 2.0,
        }
    }
}

/// Server lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServerState {
    /// Powered down.
    Sleeping,
    /// Booting; serves nothing for the stored number of remaining slots.
    Waking {
        /// Slots until the server becomes active.
        remaining: u32,
    },
    /// Serving traffic.
    Active,
}

/// One simulated server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Server {
    /// Current lifecycle state.
    pub state: ServerState,
    config: ServerConfig,
}

impl Server {
    /// A sleeping server with the given configuration.
    pub fn new(config: ServerConfig) -> Self {
        Self {
            state: ServerState::Sleeping,
            config,
        }
    }

    /// Begin powering up (no-op unless sleeping). Returns the one-off wake
    /// energy if a wake actually started.
    pub fn wake(&mut self) -> f64 {
        if self.state == ServerState::Sleeping {
            self.state = if self.config.wake_slots == 0 {
                ServerState::Active
            } else {
                ServerState::Waking {
                    remaining: self.config.wake_slots,
                }
            };
            self.config.wake_energy
        } else {
            0.0
        }
    }

    /// Power down immediately (transitions from any state).
    pub fn sleep(&mut self) {
        self.state = ServerState::Sleeping;
    }

    /// Advance one slot: progress boot timers. Returns what the server did
    /// *during* this slot (a server finishing its boot this slot reports
    /// [`SlotRole::Booting`] and starts serving next slot).
    pub fn tick(&mut self) -> SlotRole {
        match self.state {
            ServerState::Sleeping => SlotRole::Sleeping,
            ServerState::Waking { remaining } => {
                if remaining <= 1 {
                    self.state = ServerState::Active;
                } else {
                    self.state = ServerState::Waking {
                        remaining: remaining - 1,
                    };
                }
                SlotRole::Booting // boot slot: burns power, serves nothing
            }
            ServerState::Active => SlotRole::Serving,
        }
    }

    /// Power drawn during a slot in which the server played `role` with
    /// assigned utilisation `rho in [0, 1]` (ignored unless serving).
    pub fn power_for(&self, role: SlotRole, rho: f64) -> f64 {
        match role {
            SlotRole::Sleeping => self.config.power_sleep,
            SlotRole::Booting => self.config.power_peak,
            SlotRole::Serving => {
                let rho = rho.clamp(0.0, 1.0);
                self.config.power_idle + (self.config.power_peak - self.config.power_idle) * rho
            }
        }
    }
}

/// What a server did during one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotRole {
    /// Asleep the whole slot.
    Sleeping,
    /// Booting: burns peak power, serves nothing.
    Booting,
    /// Active and serving traffic.
    Serving,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_cycle() {
        let mut s = Server::new(ServerConfig {
            wake_slots: 2,
            ..Default::default()
        });
        assert_eq!(s.state, ServerState::Sleeping);
        let e = s.wake();
        assert_eq!(e, 2.0);
        assert_eq!(s.state, ServerState::Waking { remaining: 2 });
        assert_eq!(s.tick(), SlotRole::Booting); // boot slot 1
        assert_eq!(s.tick(), SlotRole::Booting); // boot slot 2 -> active at end
        assert_eq!(s.tick(), SlotRole::Serving);
    }

    #[test]
    fn wake_is_idempotent() {
        let mut s = Server::new(ServerConfig::default());
        assert!(s.wake() > 0.0);
        assert_eq!(s.wake(), 0.0, "second wake is a no-op");
    }

    #[test]
    fn instant_wake_when_zero_latency() {
        let mut s = Server::new(ServerConfig {
            wake_slots: 0,
            ..Default::default()
        });
        s.wake();
        assert_eq!(s.state, ServerState::Active);
        assert_eq!(s.tick(), SlotRole::Serving);
    }

    #[test]
    fn power_draw_by_role() {
        let cfg = ServerConfig::default();
        let s = Server::new(cfg);
        assert_eq!(s.power_for(SlotRole::Sleeping, 0.5), cfg.power_sleep);
        assert_eq!(s.power_for(SlotRole::Booting, 0.5), cfg.power_peak);
        assert_eq!(s.power_for(SlotRole::Serving, 0.0), cfg.power_idle);
        assert_eq!(s.power_for(SlotRole::Serving, 1.0), cfg.power_peak);
        assert_eq!(s.power_for(SlotRole::Serving, 0.5), 1.5);
    }

    #[test]
    fn sleep_from_any_state() {
        let mut s = Server::new(ServerConfig::default());
        s.wake();
        s.sleep();
        assert_eq!(s.state, ServerState::Sleeping);
    }
}
