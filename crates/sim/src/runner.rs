//! Drive right-sizing policies through the simulator.
//!
//! The loop per slot `t`: derive the convex cost `f_t` from the observed
//! load (the same modelling as [`rsdc_workloads::builder::CostModel`]),
//! ask the policy for `x_t`, apply it to the cluster, account power/SLA.
//! Offline schedules (e.g. the DP optimum) can be replayed through the same
//! cluster for apples-to-apples comparisons.

use crate::cluster::Cluster;
use crate::metrics::Metrics;
use crate::server::ServerConfig;
use rsdc_core::prelude::*;
use rsdc_online::traits::OnlineAlgorithm;
use rsdc_workloads::builder::CostModel;
use rsdc_workloads::traces::Trace;

/// Simulation configuration: fleet, physical server model and the cost
/// model shown to the optimizer.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Fleet size.
    pub m: u32,
    /// Physical server parameters.
    pub server: ServerConfig,
    /// Cost model used to derive `f_t` for the policy.
    pub cost_model: CostModel,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            m: 16,
            server: ServerConfig::default(),
            cost_model: CostModel::default(),
        }
    }
}

/// Result of simulating one policy on one trace.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Name of the policy.
    pub policy: String,
    /// The schedule the policy produced.
    pub schedule: Schedule,
    /// Simulator metrics (energy, drops, wakes).
    pub metrics: Metrics,
    /// Abstract model cost of the schedule (eq. 1 with the cost model).
    pub model_cost: f64,
}

/// Simulate an online policy on a trace.
pub fn simulate_online<A: OnlineAlgorithm + ?Sized>(
    cfg: &SimConfig,
    trace: &Trace,
    policy: &mut A,
) -> SimReport {
    let inst = cfg.cost_model.instance(cfg.m, trace);
    let mut cluster = Cluster::new(cfg.m, cfg.server);
    let mut metrics = Metrics::default();
    let mut xs = Vec::with_capacity(trace.len());
    for (t, &load) in trace.loads.iter().enumerate() {
        let x = policy.step(inst.cost_fn(t + 1)).min(cfg.m);
        metrics.push(cluster.step(x, load));
        xs.push(x);
    }
    let schedule = Schedule(xs);
    let model_cost = cost(&inst, &schedule);
    SimReport {
        policy: policy.name(),
        schedule,
        metrics,
        model_cost,
    }
}

/// Replay a precomputed schedule (offline optimum, static baseline, ...).
pub fn simulate_schedule(
    cfg: &SimConfig,
    trace: &Trace,
    name: impl Into<String>,
    xs: &Schedule,
) -> SimReport {
    assert_eq!(xs.len(), trace.len());
    let inst = cfg.cost_model.instance(cfg.m, trace);
    let mut cluster = Cluster::new(cfg.m, cfg.server);
    let metrics = cluster.run(&xs.0, &trace.loads);
    SimReport {
        policy: name.into(),
        schedule: xs.clone(),
        metrics,
        model_cost: cost(&inst, xs),
    }
}

/// Simulate the offline optimum (binary-search solver) on a trace.
pub fn simulate_offline_optimum(cfg: &SimConfig, trace: &Trace) -> SimReport {
    let inst = cfg.cost_model.instance(cfg.m, trace);
    let sol = rsdc_offline::binsearch::solve(&inst);
    simulate_schedule(cfg, trace, "OfflineOptimal", &sol.schedule)
}

/// Simulate the best static provisioning level.
pub fn simulate_best_static(cfg: &SimConfig, trace: &Trace) -> SimReport {
    let (x, _) = cfg.cost_model.best_static_cost(cfg.m, trace);
    let xs = Schedule(vec![x; trace.len()]);
    simulate_schedule(cfg, trace, format!("Static({x})"), &xs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsdc_online::lcp::Lcp;
    use rsdc_workloads::traces::Diurnal;

    fn trace() -> Trace {
        Diurnal {
            period: 24,
            base: 2.0,
            peak: 10.0,
            noise: 0.05,
        }
        .generate(96, 13)
    }

    fn cfg() -> SimConfig {
        SimConfig {
            m: 14,
            ..Default::default()
        }
    }

    #[test]
    fn lcp_tracks_load_in_simulation() {
        let cfg = cfg();
        let tr = trace();
        let mut lcp = Lcp::new(cfg.m, cfg.cost_model.beta);
        let report = simulate_online(&cfg, &tr, &mut lcp);
        assert_eq!(report.schedule.len(), tr.len());
        // LCP should commit meaningful capacity on average.
        assert!(report.metrics.mean_committed() > 1.0);
        // And keep the drop rate modest on a smooth diurnal trace.
        assert!(
            report.metrics.drop_rate() < 0.2,
            "drop rate {}",
            report.metrics.drop_rate()
        );
    }

    #[test]
    fn offline_optimum_has_lowest_model_cost() {
        let cfg = cfg();
        let tr = trace();
        let opt = simulate_offline_optimum(&cfg, &tr);
        let mut lcp = Lcp::new(cfg.m, cfg.cost_model.beta);
        let online = simulate_online(&cfg, &tr, &mut lcp);
        let stat = simulate_best_static(&cfg, &tr);
        assert!(opt.model_cost <= online.model_cost + 1e-9);
        assert!(opt.model_cost <= stat.model_cost + 1e-9);
        // Theorem 2 in the simulator: LCP within 3x of optimal model cost.
        assert!(online.model_cost <= 3.0 * opt.model_cost + 1e-9);
    }

    #[test]
    fn right_sizing_saves_energy_vs_static() {
        let cfg = cfg();
        let tr = trace();
        let opt = simulate_offline_optimum(&cfg, &tr);
        let stat = simulate_best_static(&cfg, &tr);
        assert!(
            opt.metrics.total_energy() < stat.metrics.total_energy(),
            "dynamic {} vs static {}",
            opt.metrics.total_energy(),
            stat.metrics.total_energy()
        );
    }

    #[test]
    fn replay_matches_length_and_cost() {
        let cfg = cfg();
        let tr = trace();
        let xs = Schedule(vec![3; tr.len()]);
        let rep = simulate_schedule(&cfg, &tr, "const3", &xs);
        assert_eq!(rep.policy, "const3");
        assert_eq!(rep.metrics.slots(), tr.len());
        let inst = cfg.cost_model.instance(cfg.m, &tr);
        assert!((rep.model_cost - cost(&inst, &xs)).abs() < 1e-12);
    }
}
