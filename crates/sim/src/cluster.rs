//! Cluster of servers driven by a target active count per slot.

use crate::metrics::{Metrics, SlotRecord};
use crate::server::{Server, ServerConfig, ServerState, SlotRole};
use serde::{Deserialize, Serialize};

/// A homogeneous cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    servers: Vec<Server>,
    config: ServerConfig,
}

impl Cluster {
    /// A cluster of `m` sleeping servers.
    pub fn new(m: u32, config: ServerConfig) -> Self {
        Self {
            servers: (0..m).map(|_| Server::new(config)).collect(),
            config,
        }
    }

    /// Fleet size.
    pub fn size(&self) -> u32 {
        self.servers.len() as u32
    }

    /// Number of servers currently serving.
    pub fn active_count(&self) -> u32 {
        self.servers
            .iter()
            .filter(|s| s.state == ServerState::Active)
            .count() as u32
    }

    /// Number of servers awake or waking (the optimizer's `x_t`).
    pub fn committed_count(&self) -> u32 {
        self.servers
            .iter()
            .filter(|s| s.state != ServerState::Sleeping)
            .count() as u32
    }

    /// Run one slot: set the target committed count, advance boot timers,
    /// spread `load` over the serving servers and account power/SLA.
    pub fn step(&mut self, target: u32, load: f64) -> SlotRecord {
        let target = target.min(self.size());
        let mut wake_energy = 0.0;
        let mut woken = 0u32;
        let mut slept = 0u32;

        // Power up or down to reach the target committed count. Sleeping
        // the most-recently-woken first keeps the policy simple.
        let committed = self.committed_count();
        if committed < target {
            let mut need = target - committed;
            for s in &mut self.servers {
                if need == 0 {
                    break;
                }
                if s.state == ServerState::Sleeping {
                    wake_energy += s.wake();
                    woken += 1;
                    need -= 1;
                }
            }
        } else if committed > target {
            let mut excess = committed - target;
            for s in self.servers.iter_mut().rev() {
                if excess == 0 {
                    break;
                }
                if s.state != ServerState::Sleeping {
                    s.sleep();
                    slept += 1;
                    excess -= 1;
                }
            }
        }

        // Advance all servers one slot, recording what each did.
        let roles: Vec<SlotRole> = self.servers.iter_mut().map(|s| s.tick()).collect();
        let serving = roles.iter().filter(|&&r| r == SlotRole::Serving).count() as u32;

        // Dispatch load evenly; capacity of one server is 1 load unit.
        let capacity = serving as f64;
        let served = load.min(capacity);
        let dropped = (load - capacity).max(0.0);
        let rho = if serving > 0 { served / capacity } else { 0.0 };

        let mut power = 0.0;
        for (s, &role) in self.servers.iter().zip(&roles) {
            power += s.power_for(role, rho);
        }

        SlotRecord {
            target,
            committed: self.committed_count(),
            serving,
            load,
            served,
            dropped,
            utilisation: rho,
            power,
            wake_energy,
            woken,
            slept,
        }
    }

    /// Run a whole schedule of targets against a load trace.
    pub fn run(&mut self, targets: &[u32], loads: &[f64]) -> Metrics {
        assert_eq!(targets.len(), loads.len());
        let mut metrics = Metrics::default();
        for (&x, &l) in targets.iter().zip(loads) {
            metrics.push(self.step(x, l));
        }
        metrics
    }

    /// The server configuration.
    pub fn config(&self) -> ServerConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ServerConfig {
        ServerConfig {
            power_idle: 1.0,
            power_peak: 2.0,
            power_sleep: 0.0,
            wake_slots: 1,
            wake_energy: 2.0,
        }
    }

    #[test]
    fn servers_boot_before_serving() {
        let mut c = Cluster::new(4, cfg());
        let r1 = c.step(2, 1.0);
        // Slot 1: both targeted servers are booting, nothing serves.
        assert_eq!(r1.committed, 2);
        assert_eq!(r1.serving, 0);
        assert_eq!(r1.dropped, 1.0);
        assert_eq!(r1.woken, 2);
        assert_eq!(r1.wake_energy, 4.0);
        // Slot 2: both serve.
        let r2 = c.step(2, 1.0);
        assert_eq!(r2.serving, 2);
        assert_eq!(r2.dropped, 0.0);
        assert!((r2.utilisation - 0.5).abs() < 1e-12);
    }

    #[test]
    fn power_accounting() {
        let mut c = Cluster::new(2, cfg());
        let r1 = c.step(1, 0.0);
        // One waking at peak power, one asleep at 0.
        assert!((r1.power - 2.0).abs() < 1e-12);
        let r2 = c.step(1, 0.5);
        // One active at rho = 0.5: 1 + 0.5 = 1.5.
        assert!((r2.power - 1.5).abs() < 1e-12);
    }

    #[test]
    fn scaling_down_is_instant() {
        let mut c = Cluster::new(4, cfg());
        c.step(4, 0.0);
        c.step(4, 0.0);
        assert_eq!(c.active_count(), 4);
        let r = c.step(1, 0.0);
        assert_eq!(r.committed, 1);
        assert_eq!(r.slept, 3);
    }

    #[test]
    fn target_clamped_to_fleet() {
        let mut c = Cluster::new(2, cfg());
        let r = c.step(10, 0.0);
        assert_eq!(r.target, 2);
        assert_eq!(r.committed, 2);
    }

    #[test]
    fn run_aggregates_metrics() {
        let mut c = Cluster::new(3, cfg());
        let m = c.run(&[2, 2, 0, 1], &[1.0, 1.5, 0.0, 0.5]);
        assert_eq!(m.slots(), 4);
        assert!(m.total_energy() > 0.0);
        assert!(m.total_dropped() >= 1.0, "boot slot drops its load");
    }
}
