//! Per-slot records and aggregated simulation metrics.

use serde::{Deserialize, Serialize};

/// Everything that happened in one simulated slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotRecord {
    /// Target committed servers requested by the policy.
    pub target: u32,
    /// Committed (awake or waking) servers after applying the target.
    pub committed: u32,
    /// Servers actually serving this slot.
    pub serving: u32,
    /// Offered load.
    pub load: f64,
    /// Load served.
    pub served: f64,
    /// Load dropped (capacity shortfall).
    pub dropped: f64,
    /// Mean utilisation of serving servers.
    pub utilisation: f64,
    /// Total power drawn this slot (all states).
    pub power: f64,
    /// One-off wake energy spent this slot.
    pub wake_energy: f64,
    /// Servers that began waking this slot.
    pub woken: u32,
    /// Servers put to sleep this slot.
    pub slept: u32,
}

/// Aggregated metrics over a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Metrics {
    records: Vec<SlotRecord>,
}

impl Metrics {
    /// Append one slot.
    pub fn push(&mut self, r: SlotRecord) {
        self.records.push(r);
    }

    /// Number of simulated slots.
    pub fn slots(&self) -> usize {
        self.records.len()
    }

    /// Fold another accumulator into this one (slot records append in
    /// `other`'s order). Every aggregate here is order-independent, so
    /// merging per-shard metrics yields exact fleet totals — the engine
    /// uses this to carry shard aggregates across a ring rebalance.
    pub fn merge(&mut self, other: &Metrics) {
        self.records.extend_from_slice(&other.records);
    }

    /// Raw per-slot records.
    pub fn records(&self) -> &[SlotRecord] {
        &self.records
    }

    /// Total energy: power plus wake energy.
    pub fn total_energy(&self) -> f64 {
        self.records.iter().map(|r| r.power + r.wake_energy).sum()
    }

    /// Total dropped load.
    pub fn total_dropped(&self) -> f64 {
        self.records.iter().map(|r| r.dropped).sum()
    }

    /// Total offered load.
    pub fn total_load(&self) -> f64 {
        self.records.iter().map(|r| r.load).sum()
    }

    /// Fraction of load dropped (0 when no load was offered).
    pub fn drop_rate(&self) -> f64 {
        let l = self.total_load();
        if l == 0.0 {
            0.0
        } else {
            self.total_dropped() / l
        }
    }

    /// Total wake events.
    pub fn total_wakes(&self) -> u32 {
        self.records.iter().map(|r| r.woken).sum()
    }

    /// Mean utilisation over slots with at least one serving server.
    pub fn mean_utilisation(&self) -> f64 {
        let xs: Vec<f64> = self
            .records
            .iter()
            .filter(|r| r.serving > 0)
            .map(|r| r.utilisation)
            .collect();
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }

    /// Mean committed servers.
    pub fn mean_committed(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.committed as f64).sum::<f64>() / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(power: f64, load: f64, dropped: f64, woken: u32) -> SlotRecord {
        SlotRecord {
            target: 1,
            committed: 1,
            serving: 1,
            load,
            served: load - dropped,
            dropped,
            utilisation: 0.5,
            power,
            wake_energy: woken as f64 * 2.0,
            woken,
            slept: 0,
        }
    }

    #[test]
    fn aggregation() {
        let mut m = Metrics::default();
        m.push(rec(1.5, 2.0, 0.5, 1));
        m.push(rec(2.0, 1.0, 0.0, 0));
        assert_eq!(m.slots(), 2);
        assert!((m.total_energy() - (1.5 + 2.0 + 2.0)).abs() < 1e-12);
        assert!((m.total_dropped() - 0.5).abs() < 1e-12);
        assert!((m.drop_rate() - 0.5 / 3.0).abs() < 1e-12);
        assert_eq!(m.total_wakes(), 1);
        assert!((m.mean_utilisation() - 0.5).abs() < 1e-12);
        assert!((m.mean_committed() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics() {
        let m = Metrics::default();
        assert_eq!(m.slots(), 0);
        assert_eq!(m.drop_rate(), 0.0);
        assert_eq!(m.mean_utilisation(), 0.0);
        assert_eq!(m.mean_committed(), 0.0);
    }
}
