//! The deterministic lower-bound adversary for the discrete setting
//! (Theorem 4): no deterministic online algorithm beats 3.
//!
//! Construction: one server (`m = 1`), `beta = 2` (so a single state change
//! costs `beta/2 = 1` under the symmetric convention), cost functions
//! `phi_0(x) = eps*|x|` and `phi_1(x) = eps*|1 - x|` with `eps -> 0` and
//! horizon `T >= 1/eps^2`. The adversary always charges the algorithm: it
//! sends `phi_1` whenever the algorithm sits at 0 and `phi_0` whenever it
//! sits at 1.
//!
//! The offline comparator of the proof is `min(T eps / 2 + 2, S + 2)` where
//! `S` is the number of state changes of the algorithm; we additionally
//! compute the exact offline optimum by DP.

use rsdc_core::prelude::*;
use rsdc_online::traits::OnlineAlgorithm;

/// Outcome of playing an adversary against an online algorithm.
#[derive(Debug, Clone)]
pub struct Duel {
    /// The instance the adversary constructed.
    pub instance: Instance,
    /// The schedule the algorithm produced on it.
    pub schedule: Schedule,
}

impl Duel {
    /// Algorithm cost, exact offline optimum, and their ratio.
    pub fn ratio(&self) -> (f64, f64, f64) {
        rsdc_online::traits::competitive_ratio(&self.instance, &self.schedule)
    }
}

/// Parameters of the Theorem 4 construction.
#[derive(Debug, Clone, Copy)]
pub struct DiscreteAdversary {
    /// Slope of the `phi` functions; the bound tightens as `eps -> 0`.
    pub eps: f64,
    /// Horizon; the proof uses `T >= 1/eps^2`.
    pub t_len: usize,
}

impl DiscreteAdversary {
    /// Adversary with the proof's canonical horizon `T = ceil(1/eps^2)`.
    pub fn with_canonical_horizon(eps: f64) -> Self {
        Self {
            eps,
            t_len: (1.0 / (eps * eps)).ceil() as usize,
        }
    }

    /// Play against a deterministic online algorithm. The adversary inspects
    /// the algorithm's committed state after each step and chooses the next
    /// function to always charge it.
    pub fn run<A: OnlineAlgorithm + ?Sized>(&self, algo: &mut A) -> Duel {
        let beta = 2.0;
        let mut inst = Instance::empty(1, beta).expect("valid parameters");
        let mut xs = Vec::with_capacity(self.t_len);
        let mut state = 0u32;
        for _ in 0..self.t_len {
            let f = if state == 0 {
                Cost::phi1(self.eps)
            } else {
                Cost::phi0(self.eps)
            };
            inst.push(f.clone());
            state = algo.step(&f);
            assert!(state <= 1, "adversary instance has m = 1");
            xs.push(state);
        }
        Duel {
            instance: inst,
            schedule: Schedule(xs),
        }
    }

    /// The proof's upper bound on the offline cost: `min(T eps/2 + 2,
    /// S + 2)` where `S` counts the algorithm's state changes (switching
    /// cost at `beta/2 = 1` per change).
    pub fn proof_offline_bound(&self, duel: &Duel) -> f64 {
        let t = duel.schedule.len() as f64;
        let mut s = 0.0;
        let mut prev = 0u32;
        for &x in &duel.schedule.0 {
            if x != prev {
                s += 1.0;
            }
            prev = x;
        }
        (t * self.eps / 2.0 + 2.0).min(s + 2.0)
    }

    /// The asymptotic lower bound on any deterministic algorithm's ratio for
    /// these parameters, `3 - O(eps) - O(1/(T eps))` (from the two cases of
    /// the Theorem 4 proof).
    pub fn theoretical_ratio_floor(&self) -> f64 {
        let te = self.t_len as f64 * self.eps;
        3.0 - self.eps - (2.0 * (1.0 - self.eps) + 4.0) / (te / 2.0 + 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsdc_online::lcp::Lcp;

    /// A bad algorithm that flips state every step regardless of cost.
    struct Flipper(u32);
    impl OnlineAlgorithm for Flipper {
        fn step(&mut self, _f: &Cost) -> u32 {
            self.0 = 1 - self.0;
            self.0
        }
        fn name(&self) -> String {
            "flipper".into()
        }
    }

    /// An algorithm that never budges.
    struct Sleeper;
    impl OnlineAlgorithm for Sleeper {
        fn step(&mut self, _f: &Cost) -> u32 {
            0
        }
        fn name(&self) -> String {
            "sleeper".into()
        }
    }

    #[test]
    fn adversary_always_charges() {
        let adv = DiscreteAdversary {
            eps: 0.1,
            t_len: 50,
        };
        let mut lcp = Lcp::new(1, 2.0);
        let duel = adv.run(&mut lcp);
        // Every slot the algorithm pays eps (it is always at the wrong
        // state when the function arrives) unless it moved during the slot.
        let op = operating_cost(&duel.instance, &duel.schedule);
        let moves = duel
            .schedule
            .0
            .iter()
            .scan(0u32, |p, &x| {
                let moved = x != *p;
                *p = x;
                Some(moved as usize)
            })
            .sum::<usize>();
        let expected = 0.1 * (50 - moves) as f64;
        assert!(
            (op - expected).abs() < 1e-9,
            "operating {op} vs expected {expected}"
        );
    }

    #[test]
    fn lcp_ratio_approaches_three() {
        // eps = 0.02, T = 1/eps^2 = 2500: ratio must be close to 3.
        let adv = DiscreteAdversary::with_canonical_horizon(0.02);
        let mut lcp = Lcp::new(1, 2.0);
        let duel = adv.run(&mut lcp);
        let (_, _, ratio) = duel.ratio();
        assert!(ratio <= 3.0 + 1e-9, "Theorem 2: ratio {ratio} <= 3");
        assert!(
            ratio >= adv.theoretical_ratio_floor() - 1e-9,
            "ratio {ratio} below floor {}",
            adv.theoretical_ratio_floor()
        );
        assert!(ratio > 2.7, "should be close to 3, got {ratio}");
    }

    #[test]
    fn sleeper_pays_operating_forever() {
        let adv = DiscreteAdversary {
            eps: 0.1,
            t_len: 400,
        };
        let duel = adv.run(&mut Sleeper);
        let (alg, opt, ratio) = duel.ratio();
        // Sleeper pays 400 * 0.1 = 40; OPT parks at 1 paying ~2.
        assert!((alg - 40.0).abs() < 1e-9);
        assert!(opt <= 2.0 + 1e-9);
        assert!(ratio >= 3.0, "lazy-forever is worse than 3: {ratio}");
    }

    #[test]
    fn flipper_pays_switching_forever() {
        let adv = DiscreteAdversary {
            eps: 0.1,
            t_len: 400,
        };
        let duel = adv.run(&mut Flipper(0));
        let (alg, _, ratio) = duel.ratio();
        // Flipper switches every step: cost ~= 400 (beta/2 = 1 per flip).
        assert!(alg >= 399.0);
        assert!(ratio >= 3.0, "flip-forever is worse than 3: {ratio}");
    }

    #[test]
    fn proof_bound_dominates_exact_optimum() {
        let adv = DiscreteAdversary {
            eps: 0.05,
            t_len: 800,
        };
        let mut lcp = Lcp::new(1, 2.0);
        let duel = adv.run(&mut lcp);
        let (_, opt, _) = duel.ratio();
        let bound = adv.proof_offline_bound(&duel);
        assert!(
            opt <= bound + 1e-9,
            "exact OPT {opt} must not exceed the proof's bound {bound}"
        );
    }

    #[test]
    fn ratio_exceeds_theoretical_floor_across_eps() {
        // Finite-T ratios are not monotone in eps (boundary effects), but
        // each must respect the Theorem 4 finite-parameter floor, and the
        // smallest eps must be close to 3.
        let mut last = 0.0;
        for eps in [0.1, 0.05, 0.02] {
            let adv = DiscreteAdversary::with_canonical_horizon(eps);
            let mut lcp = Lcp::new(1, 2.0);
            let duel = adv.run(&mut lcp);
            let (_, _, ratio) = duel.ratio();
            assert!(ratio <= 3.0 + 1e-9, "Theorem 2 cap: {ratio}");
            assert!(
                ratio >= adv.theoretical_ratio_floor() - 1e-9,
                "eps={eps}: ratio {ratio} below floor {}",
                adv.theoretical_ratio_floor()
            );
            last = ratio;
        }
        assert!(last > 2.8, "eps = 0.02 should be close to 3, got {last}");
    }
}
