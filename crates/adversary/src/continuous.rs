//! The continuous-setting lower bound (Theorem 6): no deterministic online
//! algorithm for the continuous problem beats 2.
//!
//! The proof machinery, all implemented here:
//!
//! * the reference algorithm **B** (Section 5.2.1): on `phi_0 / phi_1`
//!   functions with `beta = 2`, move `eps/2` toward the minimizer, clamped
//!   to `[0, 1]`;
//! * the adversary of Lemma 23: send `phi_1` while `a_t <= b_t` and
//!   `a_t < 1`, otherwise `phi_0` — any algorithm `A` then costs at least
//!   as much as `B`;
//! * Lemma 21's accounting, showing `C(B) >= (2 - eps/2) * C(OPT)` in each
//!   of its three cases (absorbed at 0, absorbed at 1, oscillating).

use rsdc_core::prelude::*;
use rsdc_online::traits::FractionalAlgorithm;

/// The reference algorithm `B`: `b_{t+1} = max(b_t - eps/2, 0)` on `phi_0`,
/// `min(b_t + eps/2, 1)` on `phi_1`. Only defined for the two adversary
/// functions; any other input panics (the construction never sends others).
#[derive(Debug, Clone)]
pub struct AlgorithmB {
    eps: f64,
    state: f64,
}

impl AlgorithmB {
    /// New instance with step size `eps/2`.
    pub fn new(eps: f64) -> Self {
        Self { eps, state: 0.0 }
    }

    /// Current state `b_t in [0, 1]`.
    pub fn state(&self) -> f64 {
        self.state
    }
}

impl FractionalAlgorithm for AlgorithmB {
    fn step(&mut self, f: &Cost) -> f64 {
        match f {
            Cost::Abs { center, .. } if *center == 0.0 => {
                self.state = (self.state - self.eps / 2.0).max(0.0);
            }
            Cost::Abs { center, .. } if *center == 1.0 => {
                self.state = (self.state + self.eps / 2.0).min(1.0);
            }
            other => panic!("AlgorithmB only understands phi_0/phi_1, got {other:?}"),
        }
        self.state
    }

    fn name(&self) -> String {
        "B".into()
    }
}

/// Outcome of the continuous adversary: the constructed instance plus the
/// fractional schedules of the algorithm under test and of `B`.
#[derive(Debug, Clone)]
pub struct ContinuousDuel {
    /// Constructed instance over `[0, 1]` with `beta = 2`.
    pub instance: Instance,
    /// Schedule of the algorithm under test.
    pub schedule: FracSchedule,
    /// Schedule of the reference algorithm `B` on the same sequence.
    pub schedule_b: FracSchedule,
}

impl ContinuousDuel {
    /// Cost of the tested algorithm (analytic continuous evaluation,
    /// Section 5 symmetric convention).
    pub fn algorithm_cost(&self) -> f64 {
        frac_symmetric_cost(&self.instance, &self.schedule, FracMode::Analytic)
    }

    /// Cost of `B`.
    pub fn b_cost(&self) -> f64 {
        frac_symmetric_cost(&self.instance, &self.schedule_b, FracMode::Analytic)
    }

    /// Upper bound on the continuous offline optimum: the better of the two
    /// static schedules (always 0 / always 1, with the final shutdown),
    /// which is what the Lemma 21 accounting charges OPT.
    pub fn static_opt_bound(&self) -> f64 {
        let t_len = self.instance.horizon();
        let stay0 = FracSchedule(vec![0.0; t_len]);
        let stay1 = FracSchedule(vec![1.0; t_len]);
        let c0 = frac_symmetric_cost(&self.instance, &stay0, FracMode::Analytic);
        let c1 = frac_symmetric_cost(&self.instance, &stay1, FracMode::Analytic);
        c0.min(c1)
    }

    /// Exact continuous offline optimum. The functions are piecewise linear
    /// with breakpoints at `{0, 1}`, so the continuous optimum over `[0, 1]`
    /// is attained on the grid `{0, 1}` ... but B's states matter only
    /// through the *costs*; for ratio reporting we solve the continuous
    /// problem on a fine grid (resolution `1/k`) which lower-bounds nothing
    /// and upper-bounds OPT within `O(1/k)`.
    pub fn grid_opt(&self, k: u32) -> f64 {
        // States i/k for i in 0..=k; movement cost per grid step = beta/k.
        let costs: Vec<Cost> = self
            .instance
            .cost_fns()
            .iter()
            .map(|f| {
                let vals: Vec<f64> = (0..=k)
                    .map(|i| f.eval_analytic(i as f64 / k as f64))
                    .collect();
                Cost::table(vals)
            })
            .collect();
        let fine =
            Instance::new(k, self.instance.beta() / k as f64, costs).expect("valid grid instance");
        rsdc_offline::dp::solve_cost_only(&fine)
    }
}

/// The Lemma 23 adversary. Plays `t_len` rounds against a fractional
/// algorithm, tracking `B` internally.
#[derive(Debug, Clone, Copy)]
pub struct ContinuousAdversary {
    /// Slope of the `phi` functions (the proof sends `eps -> 0`).
    pub eps: f64,
    /// Number of rounds.
    pub t_len: usize,
}

impl ContinuousAdversary {
    /// Play against `algo`.
    pub fn run<A: FractionalAlgorithm + ?Sized>(&self, algo: &mut A) -> ContinuousDuel {
        let mut inst = Instance::empty(1, 2.0).expect("valid parameters");
        let mut b = AlgorithmB::new(self.eps);
        let mut xs = Vec::with_capacity(self.t_len);
        let mut bs = Vec::with_capacity(self.t_len);
        let mut a_state = 0.0f64;
        for _ in 0..self.t_len {
            // Lemma 23: phi_1 while a_t <= b_t and a_t < 1; phi_0 if
            // a_t > b_t or a_t = 1. The comparisons carry a small tolerance
            // because numerical algorithms (ternary-search minimizers)
            // approach the boundary without hitting it exactly.
            const TOL: f64 = 1e-9;
            let f = if a_state > b.state() + TOL || a_state >= 1.0 - TOL {
                Cost::phi0(self.eps)
            } else {
                Cost::phi1(self.eps)
            };
            inst.push(f.clone());
            a_state = algo.step(&f);
            bs.push(b.step(&f));
            xs.push(a_state);
        }
        ContinuousDuel {
            instance: inst,
            schedule: FracSchedule(xs),
            schedule_b: FracSchedule(bs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsdc_online::fractional::{EvalMode, HalfStep, MemorylessBalance};

    #[test]
    fn algorithm_b_steps_by_half_eps() {
        let mut b = AlgorithmB::new(0.2);
        assert_eq!(b.step(&Cost::phi1(0.2)), 0.1);
        assert_eq!(b.step(&Cost::phi1(0.2)), 0.2);
        assert_eq!(b.step(&Cost::phi0(0.2)), 0.1);
        // Clamps at 0.
        b.step(&Cost::phi0(0.2));
        assert_eq!(b.step(&Cost::phi0(0.2)), 0.0);
    }

    #[test]
    fn halfstep_equals_b_under_adversary() {
        // The paper: B is the Bansal et al. algorithm on these functions;
        // our HalfStep must coincide with it along the entire duel.
        let adv = ContinuousAdversary {
            eps: 0.125,
            t_len: 500,
        };
        let mut hs = HalfStep::new(1, 2.0, EvalMode::Analytic);
        let duel = adv.run(&mut hs);
        for (t, (&a, &b)) in duel.schedule.0.iter().zip(&duel.schedule_b.0).enumerate() {
            assert!((a - b).abs() < 1e-9, "diverged at t={t}: {a} vs {b}");
        }
    }

    #[test]
    fn b_ratio_approaches_two() {
        // Lemma 21: C(B) >= (2 - eps/2) * OPT. Against itself the adversary
        // oscillates B around the midpoint (case 3) or absorbs (cases 1/2).
        let eps = 0.0625; // power of two for exact arithmetic
        let adv = ContinuousAdversary { eps, t_len: 4000 };
        let mut hs = HalfStep::new(1, 2.0, EvalMode::Analytic);
        let duel = adv.run(&mut hs);
        let c_b = duel.b_cost();
        let opt = duel.grid_opt(64);
        let ratio = c_b / opt;
        assert!(
            ratio >= 2.0 - eps,
            "Lemma 21: ratio {ratio} >= 2 - eps/2 = {}",
            2.0 - eps / 2.0
        );
        // And B really is about 2-competitive here, not wildly worse.
        assert!(ratio <= 2.3, "B should be near-2-competitive, got {ratio}");
    }

    #[test]
    fn any_algorithm_costs_at_least_b() {
        // Lemma 23 (spirit): the adversary makes every tested algorithm pay
        // at least as much as B. We check it for MemorylessBalance.
        let adv = ContinuousAdversary {
            eps: 0.125,
            t_len: 2000,
        };
        let mut mb = MemorylessBalance::new(1, 2.0, EvalMode::Analytic);
        let duel = adv.run(&mut mb);
        assert!(
            duel.algorithm_cost() >= duel.b_cost() - 1e-6,
            "C(A) = {} must be >= C(B) = {}",
            duel.algorithm_cost(),
            duel.b_cost()
        );
    }

    #[test]
    fn static_bound_dominates_grid_opt() {
        let adv = ContinuousAdversary {
            eps: 0.25,
            t_len: 600,
        };
        let mut hs = HalfStep::new(1, 2.0, EvalMode::Analytic);
        let duel = adv.run(&mut hs);
        assert!(duel.grid_opt(32) <= duel.static_opt_bound() + 1e-9);
    }
}
