//! Lower bounds for the restricted (Lin et al.) model — Theorems 5, 7
//! and 9: the general-model constructions carry over to eq. (2) instances.
//!
//! The reductions, exactly as in the proofs:
//!
//! * **Discrete** (Theorem 5): two servers, `f(z) = eps*|1 - 2z|`,
//!   `beta = 2`. The general-model function `phi_0` maps to load
//!   `lambda = 1/2` and `phi_1` to `lambda = 1`; states shift by one
//!   (`x^L_t = x^G_t + 1`), so per-slot operating costs coincide:
//!   `x^L f(l_0/x^L) = eps|x^G|` and `x^L f(l_1/x^L) = eps|1 - x^G|`.
//! * **Continuous** (Theorem 7): one server, `f(z) = eps*|1 - k z|` with
//!   `k -> inf`; `phi_0` maps to `lambda = 0`, `phi_1` to `lambda = 1/k`.
//!
//! [`to_restricted_discrete`] and [`to_restricted_continuous`] transform a
//! `phi`-sequence instance into the corresponding restricted instance;
//! tests verify the cost identities the proofs claim.

use rsdc_core::prelude::*;

/// Classify a general-model adversary function as `phi_0` or `phi_1`.
/// Returns `None` for any other shape.
pub fn classify_phi(f: &Cost) -> Option<(bool, f64)> {
    match f {
        Cost::Abs { slope, center } if *center == 0.0 => Some((false, *slope)),
        Cost::Abs { slope, center } if *center == 1.0 => Some((true, *slope)),
        _ => None,
    }
}

/// Theorem 5 reduction: map a `phi`-sequence over `m = 1` to a restricted
/// instance over `m = 2` with `f(z) = eps*|1 - 2z|`. General state `x`
/// corresponds to restricted state `x + 1`.
///
/// Panics if the instance contains non-`phi` functions or mixed slopes.
pub fn to_restricted_discrete(inst: &Instance) -> RestrictedInstance {
    let mut eps = None;
    let lambdas = inst
        .cost_fns()
        .iter()
        .map(|f| {
            let (is_phi1, slope) =
                classify_phi(f).expect("restricted reduction needs phi functions");
            match eps {
                None => eps = Some(slope),
                Some(e) => assert!(
                    (e - slope).abs() < 1e-12,
                    "mixed slopes {e} vs {slope} not supported"
                ),
            }
            if is_phi1 {
                1.0
            } else {
                0.5
            }
        })
        .collect();
    let eps = eps.unwrap_or(1.0);
    RestrictedInstance::new(
        2,
        inst.beta(),
        Unit::AbsAffine {
            scale: eps,
            c0: 1.0,
            c1: 2.0,
        },
        lambdas,
    )
    .expect("valid restricted instance")
}

/// Map a general-model schedule (`x^G in {0, 1}`) to the corresponding
/// restricted schedule (`x^L = x^G + 1`).
pub fn lift_schedule(xs: &Schedule) -> Schedule {
    Schedule(xs.0.iter().map(|&x| x + 1).collect())
}

/// Theorem 7 reduction: map a `phi`-sequence to a continuous restricted
/// instance with `f(z) = eps*|1 - k z|`; `phi_0 -> lambda = 0`,
/// `phi_1 -> lambda = 1/k`. States are unchanged.
pub fn to_restricted_continuous(inst: &Instance, k: f64) -> RestrictedInstance {
    let mut eps = None;
    let lambdas = inst
        .cost_fns()
        .iter()
        .map(|f| {
            let (is_phi1, slope) =
                classify_phi(f).expect("restricted reduction needs phi functions");
            match eps {
                None => eps = Some(slope),
                Some(e) => assert!((e - slope).abs() < 1e-12),
            }
            if is_phi1 {
                1.0 / k
            } else {
                0.0
            }
        })
        .collect();
    let eps = eps.unwrap_or(1.0);
    RestrictedInstance::new(
        1,
        inst.beta(),
        Unit::AbsAffine {
            scale: eps,
            c0: 1.0,
            c1: k,
        },
        lambdas,
    )
    .expect("valid restricted instance")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrete::DiscreteAdversary;
    use rsdc_online::lcp::Lcp;

    fn phi_sequence(flags: &[bool], eps: f64) -> Instance {
        let costs = flags
            .iter()
            .map(|&p1| if p1 { Cost::phi1(eps) } else { Cost::phi0(eps) })
            .collect();
        Instance::new(1, 2.0, costs).unwrap()
    }

    #[test]
    fn discrete_reduction_preserves_operating_cost() {
        let eps = 0.25;
        let g = phi_sequence(&[true, false, true, true, false], eps);
        let l = to_restricted_discrete(&g).to_general();
        for xg in 0..=1u32 {
            let xl = xg + 1;
            for t in 1..=g.horizon() {
                let a = g.cost_fn(t).eval(xg);
                let b = l.cost_fn(t).eval(xl);
                assert!((a - b).abs() < 1e-12, "t={t}, xg={xg}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn discrete_reduction_preserves_total_cost_up_to_entry_fee() {
        // Shifting a whole schedule up by one changes switching cost by
        // exactly one extra power-up at the start (beta) and leaves
        // operating cost identical (previous test). For closed schedules
        // the proofs absorb this O(1) into the limit.
        let eps = 0.25;
        let g = phi_sequence(&[true, false, true, false, false, true], eps);
        let l = to_restricted_discrete(&g).to_general();
        let xs_g = Schedule(vec![1, 0, 1, 0, 0, 1]);
        let xs_l = lift_schedule(&xs_g);
        let cg = cost(&g, &xs_g);
        let cl = cost(&l, &xs_l);
        assert!(
            (cl - (cg + l.beta())).abs() < 1e-9,
            "restricted cost {cl} = general {cg} + one power-up {}",
            l.beta()
        );
    }

    #[test]
    fn restricted_feasibility_forces_one_server() {
        let eps = 0.25;
        let g = phi_sequence(&[true, false], eps);
        let l = to_restricted_discrete(&g).to_general();
        // State 0 is infeasible at every slot (lambda >= 0.5 > 0).
        for t in 1..=l.horizon() {
            assert!(l.cost_fn(t).eval(0).is_infinite());
            assert!(l.cost_fn(t).eval(1).is_finite());
        }
    }

    #[test]
    fn lower_bound_carries_to_restricted_model() {
        // Run the Theorem 4 adversary against LCP on the general model,
        // map the instance across the reduction, and verify LCP's ratio on
        // the restricted instance is also close to 3.
        let adv = DiscreteAdversary {
            eps: 0.02,
            t_len: 2500,
        };
        let mut lcp_g = Lcp::new(1, 2.0);
        let duel = adv.run(&mut lcp_g);
        let l = to_restricted_discrete(&duel.instance).to_general();

        let mut lcp_l = Lcp::new(2, 2.0);
        let xs_l = rsdc_online::traits::run(&mut lcp_l, &l);
        let (_, _, ratio) = rsdc_online::traits::competitive_ratio(&l, &xs_l);
        assert!(ratio <= 3.0 + 1e-9, "Theorem 2 still applies: {ratio}");
        // The mapped instance shifts LCP's dynamics slightly (state 0 is
        // infeasible, one extra entry power-up), so allow a bit more
        // finite-T slack than in the general model.
        assert!(
            ratio > 2.5,
            "Theorem 5: adversary survives the reduction, ratio {ratio}"
        );
    }

    #[test]
    fn continuous_reduction_matches_phi_costs() {
        let eps = 0.5;
        let g = phi_sequence(&[true, false, true], eps);
        let k = 64.0;
        let l = to_restricted_continuous(&g, k);
        let lg = l.to_general();
        // At fractional states x >= lambda the analytic costs coincide with
        // the phi functions.
        for &x in &[0.25f64, 0.5, 0.75, 1.0] {
            for t in 1..=g.horizon() {
                let a = g.cost_fn(t).eval_analytic(x);
                let b = lg.cost_fn(t).eval_analytic(x);
                assert!(
                    (a - b).abs() < 1e-9,
                    "t={t}, x={x}: phi {a} vs restricted {b}"
                );
            }
        }
    }

    #[test]
    fn classify_rejects_non_phi() {
        assert!(classify_phi(&Cost::quadratic(1.0, 0.0, 0.0)).is_none());
        assert!(classify_phi(&Cost::abs(1.0, 2.0)).is_none());
        assert_eq!(classify_phi(&Cost::phi0(0.3)), Some((false, 0.3)));
        assert_eq!(classify_phi(&Cost::phi1(0.3)), Some((true, 0.3)));
    }
}
