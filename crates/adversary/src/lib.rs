//! # rsdc-adversary — lower-bound constructions (Section 5)
//!
//! Interactive adversaries and reductions establishing the paper's lower
//! bounds:
//!
//! * [`discrete`] — Theorem 4: no deterministic online algorithm beats 3 in
//!   the discrete setting (so LCP is optimal);
//! * [`continuous`] — Theorem 6 / Lemmas 21–23: no deterministic online
//!   algorithm beats 2 in the continuous setting, via the reference
//!   algorithm `B`;
//! * [`randomized`] — Theorem 8 / Lemma 24: no randomized algorithm beats 2
//!   against an oblivious adversary (so the Section 4 algorithm is
//!   optimal);
//! * [`restricted`] — Theorems 5, 7, 9: all bounds survive in the
//!   restricted model of Lin et al. (eq. 2);
//! * [`dilation`] — Theorem 10: all bounds survive a finite prediction
//!   window.
//!
//! Each module exposes the construction as a reusable object so the
//! experiment harness can sweep `eps` and `T` and report convergence to the
//! theoretical constants.

#![warn(missing_docs)]

pub mod continuous;
pub mod dilation;
pub mod discrete;
pub mod randomized;
pub mod restricted;

pub use continuous::{AlgorithmB, ContinuousAdversary, ContinuousDuel};
pub use discrete::{DiscreteAdversary, Duel};
pub use randomized::{MarginalOracle, RandomizedAdversary};
