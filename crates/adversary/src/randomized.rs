//! Lower bound for randomized algorithms in the discrete setting
//! (Theorem 8): no randomized online algorithm beats 2 against an oblivious
//! adversary.
//!
//! The construction converts a randomized algorithm's *marginal*
//! probability of being in state 1 into a deterministic fractional schedule
//! `\bar X^A` (Lemma 24 shows `E[C(X^A)] >= C(\bar X^A)`), then plays the
//! continuous adversary of Section 5.2.1 against that schedule.
//!
//! To drive the construction the adversary needs the algorithm's marginals,
//! which an oblivious adversary may compute offline: the
//! [`MarginalOracle`] trait exposes them. For the paper's own randomized
//! algorithm (Section 4) the marginal is exactly the fractional schedule
//! being rounded (Lemma 18), so the oracle is the fractional algorithm
//! itself.

use crate::continuous::{ContinuousAdversary, ContinuousDuel};
use rsdc_core::prelude::*;
use rsdc_online::traits::FractionalAlgorithm;

/// The per-step marginal `Pr[x_t = 1]` of a randomized algorithm on a
/// single-server instance.
pub trait MarginalOracle {
    /// Feed the next cost function; return the updated marginal.
    fn marginal_step(&mut self, f: &Cost) -> f64;

    /// Name for reports.
    fn name(&self) -> String;
}

/// Every fractional algorithm is a marginal oracle for the randomized
/// algorithm that rounds it (Lemma 18: `Pr[x_t = ceil*] = frac(\bar x_t)`,
/// which on `m = 1` equals `\bar x_t`).
impl<F: FractionalAlgorithm> MarginalOracle for F {
    fn marginal_step(&mut self, f: &Cost) -> f64 {
        self.step(f)
    }
    fn name(&self) -> String {
        FractionalAlgorithm::name(self)
    }
}

/// Wrapper turning a marginal oracle into a fractional algorithm so the
/// continuous adversary can drive it.
struct OracleAsFractional<'a, O: MarginalOracle + ?Sized>(&'a mut O);

impl<O: MarginalOracle + ?Sized> FractionalAlgorithm for OracleAsFractional<'_, O> {
    fn step(&mut self, f: &Cost) -> f64 {
        self.0.marginal_step(f)
    }
    fn name(&self) -> String {
        self.0.name()
    }
}

/// The Theorem 8 adversary: drive the marginals with the continuous
/// construction. The returned duel's `schedule` is the marginal schedule
/// `\bar X^A`; by Lemma 24 the randomized algorithm's expected cost is at
/// least `C(\bar X^A)` which is at least `C(\bar X^B)` (Lemma 23), which is
/// at least `(2 - delta) * OPT` (Lemma 22).
#[derive(Debug, Clone, Copy)]
pub struct RandomizedAdversary {
    /// Slope of the `phi` functions.
    pub eps: f64,
    /// Number of rounds.
    pub t_len: usize,
}

impl RandomizedAdversary {
    /// Play against the marginals of a randomized algorithm.
    pub fn run<O: MarginalOracle + ?Sized>(&self, oracle: &mut O) -> ContinuousDuel {
        let adv = ContinuousAdversary {
            eps: self.eps,
            t_len: self.t_len,
        };
        let mut wrapped = OracleAsFractional(oracle);
        adv.run(&mut wrapped)
    }
}

/// Monte-Carlo estimate of a randomized discrete algorithm's expected cost
/// on a fixed instance (used to verify Lemma 24 empirically).
pub fn expected_cost<A, B>(make_algo: B, inst: &Instance, trials: usize) -> f64
where
    A: rsdc_online::traits::OnlineAlgorithm,
    B: Fn(u64) -> A,
{
    let mut acc = 0.0;
    for s in 0..trials {
        let mut algo = make_algo(s as u64);
        let xs = rsdc_online::traits::run(&mut algo, inst);
        acc += cost(inst, &xs);
    }
    acc / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsdc_online::fractional::{EvalMode, HalfStep};
    use rsdc_online::randomized::RandomizedOnline;

    #[test]
    fn marginal_duel_ratio_approaches_two() {
        let eps = 0.0625;
        let adv = RandomizedAdversary { eps, t_len: 4000 };
        let mut frac = HalfStep::new(1, 2.0, EvalMode::Analytic);
        let duel = adv.run(&mut frac);
        let marginal_cost = duel.algorithm_cost();
        let opt = duel.grid_opt(64);
        let ratio = marginal_cost / opt;
        assert!(
            ratio >= 2.0 - eps,
            "marginal schedule ratio {ratio} must approach 2"
        );
    }

    #[test]
    fn lemma24_expected_cost_dominates_marginal_cost() {
        // Build the adversarial instance against HalfStep's marginals, then
        // Monte-Carlo the actual randomized algorithm on it.
        let eps = 0.125;
        let adv = RandomizedAdversary { eps, t_len: 300 };
        let mut frac = HalfStep::new(1, 2.0, EvalMode::Analytic);
        let duel = adv.run(&mut frac);

        let marginal_cost = frac_cost(&duel.instance, &duel.schedule, FracMode::Analytic);
        let exp = expected_cost(
            |seed| RandomizedOnline::new(HalfStep::new(1, 2.0, EvalMode::Analytic), 1, seed),
            &duel.instance,
            3000,
        );
        assert!(
            exp >= marginal_cost - 0.05 * (1.0 + marginal_cost),
            "Lemma 24: E[C] = {exp} must dominate C(marginals) = {marginal_cost}"
        );
    }

    #[test]
    fn randomized_expected_ratio_stays_near_two() {
        // Theorem 3 upper bound meets the Theorem 8 lower bound: on the
        // adversarial instance the randomized algorithm's expected ratio
        // should hover around 2 (finite-T/finite-eps slack allowed).
        let eps = 0.125;
        let adv = RandomizedAdversary { eps, t_len: 800 };
        let mut frac = HalfStep::new(1, 2.0, EvalMode::Analytic);
        let duel = adv.run(&mut frac);
        let exp = expected_cost(
            |seed| RandomizedOnline::new(HalfStep::new(1, 2.0, EvalMode::Analytic), 1, seed),
            &duel.instance,
            1000,
        );
        let opt = duel.grid_opt(32);
        let ratio = exp / opt;
        assert!(
            (1.5..=2.6).contains(&ratio),
            "expected ratio {ratio} should be near 2"
        );
    }
}
