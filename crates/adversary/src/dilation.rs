//! Sequence dilation for the prediction-window lower bounds (Section 5.4,
//! Theorem 10).
//!
//! Given a hard sequence `F = (f_1, ..., f_T)` and window length `w`, the
//! adversary replaces each `f_t` by `n*w` consecutive copies of
//! `f_t / (n*w)`. A window of length `w` then only ever reveals a vanishing
//! `1/n` fraction of a block early, so a `w`-lookahead algorithm gains at
//! most a `(1 - 1/n)` factor over the no-lookahead optimum — the lower
//! bound `c - delta` survives for any constant `w`.

use rsdc_core::prelude::*;

/// Dilate an instance: each slot becomes `n * w` slots with the cost scaled
/// by `1 / (n * w)`. `beta` and `m` are unchanged.
pub fn dilate(inst: &Instance, n: usize, w: usize) -> Instance {
    let reps = n.checked_mul(w).expect("n*w overflow");
    assert!(reps >= 1, "dilation factor must be at least 1");
    let factor = 1.0 / reps as f64;
    let mut costs = Vec::with_capacity(inst.horizon() * reps);
    for t in 1..=inst.horizon() {
        let scaled = inst.cost_fn(t).clone().scaled(factor);
        for _ in 0..reps {
            costs.push(scaled.clone());
        }
    }
    Instance::new(inst.m(), inst.beta(), costs).expect("valid dilated instance")
}

/// Compress a schedule for the dilated instance back to per-original-slot
/// aggregate operating decisions (the *last* state within each block); used
/// by tests comparing against the undilated problem.
pub fn compress_schedule(xs: &Schedule, n: usize, w: usize) -> Schedule {
    let reps = n * w;
    assert_eq!(xs.len() % reps, 0, "length must be a multiple of n*w");
    Schedule(
        xs.0.chunks(reps)
            .map(|chunk| *chunk.last().expect("non-empty chunk"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsdc_offline::dp;
    use rsdc_online::prediction::RecedingHorizon;
    use rsdc_online::traits::{competitive_ratio, run_lookahead};

    fn hard_instance(eps: f64, t_len: usize) -> Instance {
        // Alternating phi blocks (a fixed, algorithm-independent hard-ish
        // sequence; the interactive adversaries live in their own modules).
        let period = (2.0 / eps).ceil() as usize;
        let costs = (0..t_len)
            .map(|t| {
                if (t / period).is_multiple_of(2) {
                    Cost::phi1(eps)
                } else {
                    Cost::phi0(eps)
                }
            })
            .collect();
        Instance::new(1, 2.0, costs).unwrap()
    }

    #[test]
    fn dilation_preserves_block_sums() {
        let inst = hard_instance(0.25, 16);
        let d = dilate(&inst, 3, 2);
        assert_eq!(d.horizon(), 16 * 6);
        // Sum of a block's costs equals the original function.
        for x in 0..=1u32 {
            for t in 1..=inst.horizon() {
                let sum: f64 = (0..6).map(|u| d.cost_fn((t - 1) * 6 + u + 1).eval(x)).sum();
                assert!((sum - inst.cost_fn(t).eval(x)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dilation_does_not_change_offline_optimum_much() {
        // C^F(X*) >= C^{F'}(X*): the dilated problem can only be cheaper
        // (more flexibility), and holding a block-constant schedule
        // reproduces the original cost exactly.
        let inst = hard_instance(0.25, 12);
        let d = dilate(&inst, 2, 2);
        let c_orig = dp::solve_cost_only(&inst);
        let c_dilated = dp::solve_cost_only(&d);
        assert!(c_dilated <= c_orig + 1e-9);
        // And not absurdly cheaper: switching costs dominate this workload.
        assert!(c_dilated >= 0.5 * c_orig);
    }

    #[test]
    fn window_advantage_vanishes_with_n() {
        // A receding-horizon controller with window w on the dilated
        // sequence should approach its no-lookahead ratio as n grows.
        let eps = 0.5;
        let inst = hard_instance(eps, 8);
        let w = 2;

        let mut ratios = Vec::new();
        for n in [1usize, 4] {
            let d = dilate(&inst, n, w);
            let mut rh = RecedingHorizon::new(1, 2.0);
            let xs = run_lookahead(&mut rh, &d, w);
            let (_, _, ratio) = competitive_ratio(&d, &xs);
            ratios.push(ratio);
        }
        // With larger n the lookahead covers a smaller fraction of each
        // block, so the ratio must not improve (allow small noise).
        assert!(
            ratios[1] >= ratios[0] - 0.1,
            "dilation should erode lookahead: {ratios:?}"
        );
    }

    #[test]
    fn compress_inverts_block_constant_schedules() {
        let xs = Schedule(vec![1, 1, 1, 0, 0, 0]);
        let c = compress_schedule(&xs, 3, 1);
        assert_eq!(c, Schedule(vec![1, 0]));
    }
}
