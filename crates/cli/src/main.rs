//! `rsdc` binary entry point: parse, dispatch, print, exit.

use rsdc_cli::{dispatch, Args};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rsdc: {e}");
            eprintln!("try `rsdc help`");
            return ExitCode::from(2);
        }
    };
    match dispatch(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rsdc: {e}");
            ExitCode::FAILURE
        }
    }
}
