//! # rsdc-cli — the `rsdc` command-line tool
//!
//! A thin, testable CLI over the workspace:
//!
//! ```text
//! rsdc generate --kind diurnal --slots 336 --out day.json
//! rsdc solve    --trace day.json --beta 6
//! rsdc online   --trace day.json --algorithm lcp
//! rsdc simulate --trace day.json --policy opt
//! ```
//!
//! All logic lives in [`commands`] (string-in/string-out, unit-tested);
//! `main.rs` only wires stdin/stdout/exit codes.

#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};
pub use commands::{dispatch, CmdError, USAGE};
